#!/usr/bin/env python3
"""Regenerate the measured tables of EXPERIMENTS.md from bench_output.txt.

Parses Criterion's textual output ("group/function/param" followed by a
"time: [lo mid hi]" line) and rewrites everything below the
'<!-- measured tables below are generated -->' marker in EXPERIMENTS.md.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def parse(path: Path):
    """-> {(group, func, param): mid-time-string}"""
    out = {}
    lines = path.read_text().splitlines()
    current = None
    for line in lines:
        m = re.match(r"^([a-z0-9_]+)/([^/\s]+)(?:/(\S+))?\s*$", line.strip())
        if m and not line.startswith("Benchmarking"):
            g, f, p = m.group(1), m.group(2), m.group(3)
            if p is None:
                f, p = None, f
            current = (g, f, p)
            continue
        t = re.search(r"time:\s+\[\S+ \S+ (\S+ \S+) \S+ \S+\]", line)
        if t and current:
            out[current] = t.group(1)
            current = None
    return out


def parse_simple(path: Path):
    """More robust: scan pairs of id-line then time-line."""
    out = {}
    text = path.read_text()
    # ids may wrap onto the time line in criterion output; normalise
    for m in re.finditer(
        r"^([a-z0-9_]+)/(\S+?)\s*\n?\s*time:\s+\[\S+\s+\S+\s+(\S+)\s+(\S+)\s+\S+\s+\S+\]",
        text,
        re.M,
    ):
        group, rest, mid_v, mid_u = m.group(1), m.group(2), m.group(3), m.group(4)
        parts = rest.split("/")
        # last component is the parameter; anything before it is the
        # function id (which may itself contain slashes, e.g. temporal/4)
        key = (group, "/".join(parts[:-1]) or None, parts[-1])
        out[key] = f"{mid_v} {mid_u}"
    return out


def table(data, group, funcs, params, header, param_label):
    rows = [f"| {param_label} | " + " | ".join(h for _, h in funcs) + " |"]
    rows.append("|" + "---:|" * (len(funcs) + 1))
    for p in params:
        cells = [data.get((group, f, str(p)), "—") for f, _ in funcs]
        rows.append(f"| {p} | " + " | ".join(cells) + " |")
    return f"### {header}\n\n" + "\n".join(rows) + "\n"


def main():
    bench = ROOT / "bench_output.txt"
    data = parse_simple(bench)
    if not data:
        sys.exit("no measurements found in bench_output.txt")

    sections = []
    sections.append(table(
        data, "x1_strategies",
        [("replay_materialized", "replay (materialised)"),
         ("replay_views", "replay (views)"),
         ("temporal_rewrite", "temporal rewrite"),
         ("grouped_single_pass", "grouped single pass")],
        [8, 24, 48],
        "X1 — strategy comparison (median per full inference; workflow length n)",
        "n calls"))

    x2_params = sorted({int(p) for (g, f, p) in data if g == "x2_inference_vs_doc_size"})
    sections.append(table(
        data, "x2_inference_vs_doc_size",
        [("indexed", "inference (indexed)"), ("scan", "inference (scan)")],
        x2_params,
        "X2a — full inference vs document size (resources in d_n)",
        "resources"))
    x2b = sorted({int(p) for (g, f, p) in data if g == "x2_pattern_eval_vs_doc_size"})
    sections.append(table(
        data, "x2_pattern_eval_vs_doc_size",
        [(None, "single pattern evaluation")],
        x2b,
        "X2b — bare pattern evaluation vs document size (leaves)",
        "leaves"))

    sections.append(table(
        data, "x3_eager_vs_posthoc",
        [("execute_plain", "execute plain"),
         ("execute_eager", "execute eager"),
         ("execute_then_posthoc", "execute + posthoc")],
        [8, 32],
        "X3 — eager (intrusive) vs posthoc (non-invasive), total cost",
        "n calls"))

    sections.append(table(
        data, "x4_inheritance",
        [("off", "off"), ("pattern_rewrite", "pattern rewrite"),
         ("graph_propagation", "graph propagation")],
        [2, 8, 24],
        "X4 — inherited provenance, by corpus size (native docs)",
        "corpus"))

    x5_params = sorted({int(p) for (g, f, p) in data if g == "x5_export"})
    rows = ["| links | export | one-hop lookup | two-hop chain |", "|---:|---:|---:|---:|"]
    for p in x5_params:
        rows.append(
            f"| {p} | " + " | ".join([
                data.get(("x5_export", None, str(p)), "—"),
                data.get(("x5_sparql", "one_hop_lookup", str(p)), "—"),
                data.get(("x5_sparql", "two_hop_chain", str(p)), "—"),
            ]) + " |")
    sections.append("### X5 — PROV-O export + SPARQL\n\n" + "\n".join(rows) + "\n")

    sections.append(table(
        data, "x6_xml_diff",
        [("general_structural_diff", "general structural diff"),
         ("in_arena_marks", "in-arena marks")],
        [100, 1000, 5000],
        "X6 — Recorder XML diff (document with `leaves` items, +10% appended)",
        "leaves"))

    sections.append(table(
        data, "x7_xquery_optimisation",
        [("unfused_lazy", "unfused lazy"), ("unfused_eager", "unfused eager"),
         ("fused_lazy", "fused lazy"), ("fused_eager", "fused eager")],
        [8, 32, 128],
        "X7 — compiled-XQuery ablation (TextMediaUnit count)",
        "units"))

    sections.append(table(
        data, "x8_incremental",
        [("full_rematerialisation", "full rematerialisation"),
         ("last_call_delta", "last-call delta")],
        [8, 32, 96],
        "X8 — incremental vs full materialisation (history length)",
        "n calls"))

    x9_params = sorted({int(p) for (g, f, p) in data if g == "x9_storage"})
    sections.append(table(
        data, "x9_storage",
        [("build_compact", "build compact"),
         ("deps_edge_list", "deps (edge list)"),
         ("deps_compact", "deps (compact)")],
        x9_params,
        "X9 — compact provenance storage (by link count)",
        "links"))

    sections.append(table(
        data, "x10_threads",
        [("grouped_sequential", "grouped (seq)"),
         ("percall_uncached", "per-call uncached"),
         ("temporal/1", "temporal ×1"),
         ("temporal/2", "temporal ×2"),
         ("temporal/4", "temporal ×4"),
         ("temporal/8", "temporal ×8"),
         ("temporal/auto", "temporal auto")],
        [48],
        "X10 — executor thread sweep + pattern-cache ablation (48-call workload)",
        "n calls"))

    exp = ROOT / "EXPERIMENTS.md"
    text = exp.read_text()
    marker = "<!-- measured tables below are generated by scripts/fill_experiments.py -->"
    head = text.split(marker)[0]
    exp.write_text(head + marker + "\n\n" + "\n".join(sections))
    print(f"wrote {len(sections)} measured tables ({len(data)} data points)")


if __name__ == "__main__":
    main()
