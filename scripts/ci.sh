#!/usr/bin/env bash
# Tier-1 gate plus lint, exactly as ROADMAP.md defines it. Run from anywhere;
# works fully offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
