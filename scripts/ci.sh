#!/usr/bin/env bash
# Tier-1 gate plus lint, exactly as ROADMAP.md defines it. Run from anywhere;
# works fully offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> weblab --metrics smoke run (paper example pipeline)"
metrics_dir="$(mktemp -d)"
trap 'rm -rf "$metrics_dir"' EXIT
./target/release/weblab run data/sample_corpus.xml \
    Normaliser,LanguageExtractor,Translator -o "$metrics_dir/stamped.xml"
./target/release/weblab --metrics --metrics-out "$metrics_dir/metrics.json" \
    infer "$metrics_dir/stamped.xml" > /dev/null
python3 - "$metrics_dir/metrics.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for section in ("counters", "gauges", "histograms"):
    assert section in report, f"missing section {section!r}"

counters = report["counters"]
# the pipeline above must have exercised the engine's hot paths
for key in (
    "xpath.pattern.evals",
    "prov.cache.misses",
    "prov.engine.links.emitted",
):
    assert counters.get(key, 0) > 0, f"counter {key!r} did not tick"
# conservation through the pattern cache (DESIGN.md § 7)
assert counters["prov.cache.misses"] == counters["xpath.pattern.evals"], \
    "every cache miss is exactly one pattern evaluation"
# no dangling in-flight work after a clean run
for name, value in report["gauges"].items():
    assert value == 0, f"gauge {name!r} leaked: {value}"
print(f"ci: metrics report ok ({len(counters)} counters)")
PY

echo "ci: all gates passed"
