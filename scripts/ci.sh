#!/usr/bin/env bash
# Tier-1 gate plus lint, exactly as ROADMAP.md defines it. Run from anywhere;
# works fully offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> weblab --metrics smoke run (paper example pipeline)"
metrics_dir="$(mktemp -d)"
trap 'rm -rf "$metrics_dir"' EXIT
./target/release/weblab run data/sample_corpus.xml \
    Normaliser,LanguageExtractor,Translator -o "$metrics_dir/stamped.xml"
./target/release/weblab --metrics --metrics-out "$metrics_dir/metrics.json" \
    infer "$metrics_dir/stamped.xml" > /dev/null
python3 - "$metrics_dir/metrics.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for section in ("counters", "gauges", "histograms"):
    assert section in report, f"missing section {section!r}"

counters = report["counters"]
# the pipeline above must have exercised the engine's hot paths
for key in (
    "xpath.pattern.evals",
    "prov.cache.misses",
    "prov.engine.links.emitted",
):
    assert counters.get(key, 0) > 0, f"counter {key!r} did not tick"
# conservation through the pattern cache (DESIGN.md § 7)
assert counters["prov.cache.misses"] == counters["xpath.pattern.evals"], \
    "every cache miss is exactly one pattern evaluation"
# no dangling in-flight work after a clean run
for name, value in report["gauges"].items():
    assert value == 0, f"gauge {name!r} leaked: {value}"
print(f"ci: metrics report ok ({len(counters)} counters)")
PY

echo "==> fault-tolerance smoke run (flaky service under --retries 2)"
./target/release/weblab --metrics --metrics-out "$metrics_dir/fault.json" \
    run data/sample_corpus.xml Normaliser,flaky:2,LanguageExtractor \
    --retries 2 -o "$metrics_dir/retried.xml" \
    || { echo "ci: flaky run under --retries 2 must exit 0" >&2; exit 1; }
python3 - "$metrics_dir/fault.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

counters = report["counters"]
# the two injected faults were rolled back and retried, then succeeded
assert counters.get("workflow.rollbacks", 0) >= 1, \
    f"workflow.rollbacks did not tick: {counters.get('workflow.rollbacks')}"
assert counters.get("workflow.retries", 0) >= 1, "workflow.retries did not tick"
assert counters.get("workflow.errors", 0) >= 2, "each failed attempt must count"
assert counters.get("workflow.skips", 0) == 0, "nothing was skipped in this run"
assert counters.get("workflow.service.Flaky.attempts", 0) == 3, \
    "the flaky step takes exactly three attempts"
# rolled-back attempts never reach the trace: one recorded call per step
assert counters.get("workflow.calls", 0) == 3, "exactly three calls recorded"
for name, value in report["gauges"].items():
    assert value == 0, f"gauge {name!r} leaked: {value}"
print("ci: fault-tolerance metrics ok "
      f"(rollbacks={counters['workflow.rollbacks']}, retries={counters['workflow.retries']})")
PY

echo "==> live provenance smoke run (--live --link-store)"
./target/release/weblab --metrics --metrics-out "$metrics_dir/live.json" \
    run data/sample_corpus.xml Normaliser,LanguageExtractor,Translator \
    --live --link-store "$metrics_dir/run.links" -o "$metrics_dir/live.xml"
python3 - "$metrics_dir/live.json" "$metrics_dir/run.links" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

# the live maintainer folded every committed call as a delta
assert counters.get("live.deltas", 0) >= 1, \
    f"live.deltas did not tick: {counters.get('live.deltas')}"
assert counters.get("live.links", 0) >= 1, "live run derived no links"
# O(delta) guarantee: the incremental channel map means zero full rebuilds
assert counters.get("prov.trace.channel_map.builds", 0) == 0, \
    "live run rebuilt the channel map from the whole trace"

# the persisted link store is intact: footer agrees with the body
with open(sys.argv[2]) as f:
    lines = [l.rstrip("\n") for l in f]
n_links = sum(1 for l in lines if l.startswith("link:"))
assert lines[-1] == f"# end links={n_links}", \
    f"link store footer mismatch: {lines[-1]!r} vs {n_links} links"
assert n_links == counters["live.links"], \
    "persisted link count disagrees with the live.links counter"
print(f"ci: live provenance ok (deltas={counters['live.deltas']}, links={n_links})")
PY

echo "ci: all gates passed"
