#!/usr/bin/env bash
# Tier-1 gate plus lint, exactly as ROADMAP.md defines it. Run from anywhere;
# works fully offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> weblab --metrics smoke run (paper example pipeline)"
metrics_dir="$(mktemp -d)"
trap 'rm -rf "$metrics_dir"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
./target/release/weblab run data/sample_corpus.xml \
    Normaliser,LanguageExtractor,Translator -o "$metrics_dir/stamped.xml"
./target/release/weblab --metrics --metrics-out "$metrics_dir/metrics.json" \
    infer "$metrics_dir/stamped.xml" > /dev/null
python3 - "$metrics_dir/metrics.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for section in ("counters", "gauges", "histograms"):
    assert section in report, f"missing section {section!r}"

counters = report["counters"]
# the pipeline above must have exercised the engine's hot paths
for key in (
    "xpath.pattern.evals",
    "prov.cache.misses",
    "prov.engine.links.emitted",
):
    assert counters.get(key, 0) > 0, f"counter {key!r} did not tick"
# conservation through the pattern cache (DESIGN.md § 7)
assert counters["prov.cache.misses"] == counters["xpath.pattern.evals"], \
    "every cache miss is exactly one pattern evaluation"
# no dangling in-flight work after a clean run
for name, value in report["gauges"].items():
    assert value == 0, f"gauge {name!r} leaked: {value}"
print(f"ci: metrics report ok ({len(counters)} counters)")
PY

echo "==> fault-tolerance smoke run (flaky service under --retries 2)"
./target/release/weblab --metrics --metrics-out "$metrics_dir/fault.json" \
    run data/sample_corpus.xml Normaliser,flaky:2,LanguageExtractor \
    --retries 2 -o "$metrics_dir/retried.xml" \
    || { echo "ci: flaky run under --retries 2 must exit 0" >&2; exit 1; }
python3 - "$metrics_dir/fault.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

counters = report["counters"]
# the two injected faults were rolled back and retried, then succeeded
assert counters.get("workflow.rollbacks", 0) >= 1, \
    f"workflow.rollbacks did not tick: {counters.get('workflow.rollbacks')}"
assert counters.get("workflow.retries", 0) >= 1, "workflow.retries did not tick"
assert counters.get("workflow.errors", 0) >= 2, "each failed attempt must count"
assert counters.get("workflow.skips", 0) == 0, "nothing was skipped in this run"
assert counters.get("workflow.service.Flaky.attempts", 0) == 3, \
    "the flaky step takes exactly three attempts"
# rolled-back attempts never reach the trace: one recorded call per step
assert counters.get("workflow.calls", 0) == 3, "exactly three calls recorded"
for name, value in report["gauges"].items():
    assert value == 0, f"gauge {name!r} leaked: {value}"
print("ci: fault-tolerance metrics ok "
      f"(rollbacks={counters['workflow.rollbacks']}, retries={counters['workflow.retries']})")
PY

echo "==> live provenance smoke run (--live --link-store)"
./target/release/weblab --metrics --metrics-out "$metrics_dir/live.json" \
    run data/sample_corpus.xml Normaliser,LanguageExtractor,Translator \
    --live --link-store "$metrics_dir/run.links" -o "$metrics_dir/live.xml"
python3 - "$metrics_dir/live.json" "$metrics_dir/run.links" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

# the live maintainer folded every committed call as a delta
assert counters.get("live.deltas", 0) >= 1, \
    f"live.deltas did not tick: {counters.get('live.deltas')}"
assert counters.get("live.links", 0) >= 1, "live run derived no links"
# O(delta) guarantee: the incremental channel map means zero full rebuilds
assert counters.get("prov.trace.channel_map.builds", 0) == 0, \
    "live run rebuilt the channel map from the whole trace"

# the persisted link store is intact: footer agrees with the body
with open(sys.argv[2]) as f:
    lines = [l.rstrip("\n") for l in f]
n_links = sum(1 for l in lines if l.startswith("link:"))
assert lines[-1] == f"# end links={n_links}", \
    f"link store footer mismatch: {lines[-1]!r} vs {n_links} links"
assert n_links == counters["live.links"], \
    "persisted link count disagrees with the live.links counter"
print(f"ci: live provenance ok (deltas={counters['live.deltas']}, links={n_links})")
PY

echo "==> serve smoke (line-delimited JSON protocol on an ephemeral port)"
./target/release/weblab --metrics-out "$metrics_dir/serve.json" \
    serve --port 0 --workers 2 --max-rows 5 --max-batch 16 \
    --max-conns 64 --idle-timeout 60000 \
    > "$metrics_dir/serve.out" 2> "$metrics_dir/serve.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$metrics_dir/serve.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on //p' "$metrics_dir/serve.out")"
[ -n "$addr" ] || { echo "ci: serve never printed its address" >&2; exit 1; }
python3 - "$addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", encoding="utf-8", newline="\n")

def rpc(req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    resp = json.loads(f.readline())
    # every response — success or error — carries the v2 protocol stamp
    assert resp.get("v") == 2, resp
    return resp

xml = ('<Resource wl:id="weblab://doc/ci">'
       '<NativeContent wl:id="weblab://src/0" wl:s="Source" wl:t="0">'
       'the text is in the language for peace</NativeContent></Resource>')
r = rpc({"op": "ingest", "exec": "ci", "xml": xml, "live": True,
         "pipeline": ["Normaliser", "LanguageExtractor"]})
assert r.get("ok"), r
assert r["result"]["calls"] == 2, r
assert r["result"]["links"] >= 1, r

r = rpc({"op": "why", "exec": "ci", "uri": "weblab://src/0"})
assert r.get("ok") and r.get("epoch", 0) >= 1, r
assert "weblab://src/0" in r["result"]["resources"], r

derived = ("PREFIX prov: <http://www.w3.org/ns/prov#> "
           "SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . } LIMIT 5")
r = rpc({"op": "sparql", "exec": "ci", "query": derived})
assert r.get("ok") and len(r["result"]) >= 1, r
# the identical text again: answered from the per-epoch plan cache
r = rpc({"op": "sparql", "exec": "ci", "query": derived})
assert r.get("ok") and len(r["result"]) >= 1, r

# a full scan blows the --max-rows 5 cap with the stable result-limit code
r = rpc({"op": "sparql", "exec": "ci",
         "query": "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }"})
assert r.get("ok") is False and r.get("code") == "result-limit", r

r = rpc({"op": "status"})
assert r.get("ok"), r
assert any(e["id"] == "ci" and e["live"] for e in r["result"]["executions"]), r

# batch: three sub-requests answered at one pinned epoch, responses
# byte-equivalent to serial answers
r = rpc({"op": "batch", "exec": "ci", "requests": [
    {"op": "why", "uri": "weblab://src/0"},
    {"op": "impacted-by", "uri": "weblab://src/0"},
    {"op": "sparql", "query": derived}]})
assert r.get("ok") and len(r["result"]) == 3, r
assert all(s["ok"] and s["epoch"] == r["epoch"] for s in r["result"]), \
    "torn batch: sub-responses span epochs"

# 17 sub-requests blow the --max-batch 16 cap with the stable code
r = rpc({"op": "batch", "exec": "ci",
         "requests": [{"op": "why", "uri": "weblab://src/0"}] * 17})
assert r.get("ok") is False and r.get("code") == "batch-limit", r

# v2 ranked analytics: the seed leads at score 1.000000, hop 0
r = rpc({"op": "rank", "exec": "ci", "uris": ["weblab://src/0"],
         "direction": "up", "limit": 3, "budget": 4, "decay": 0.5})
assert r.get("ok") and r.get("epoch", 0) >= 1, r
assert r["result"][0] == {"uri": "weblab://src/0", "score": "1.000000", "hop": 0}, r

r = rpc({"op": "summary", "exec": "ci", "uri": "weblab://src/0"})
assert r.get("ok"), r
assert r["result"]["resources"] >= 1 and r["result"]["services"], r
assert "blast" in r["result"], r

# six seeds produce six ranked rows, blowing the --max-rows 5 cap with
# the same stable code sparql uses
r = rpc({"op": "rank", "exec": "ci",
         "uris": [f"weblab://none/{i}" for i in range(6)]})
assert r.get("ok") is False and r.get("code") == "result-limit", r

r = rpc({"op": "nonsense"})
assert r.get("ok") is False and r.get("code") == "protocol", r

r = rpc({"op": "shutdown"})
assert r.get("ok") and r["result"]["stopping"], r
sock.close()
print("ci: serve protocol round-trip ok")
PY
wait "$serve_pid" || { echo "ci: serve did not shut down cleanly" >&2; exit 1; }
serve_pid=""
python3 - "$metrics_dir/serve.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
counters = report["counters"]

# one request per protocol line above, exactly four of them probe errors
# (the unknown op, the over-cap sparql scan, the over-cap batch, the
# over-cap rank)
assert counters.get("serve.requests", 0) >= 13, counters.get("serve.requests")
assert counters.get("serve.errors", 0) == 4, counters.get("serve.errors")
assert "serve.request_ns" in report["histograms"], "request latency not recorded"
# exactly one batch dispatched (the over-cap one is rejected before the
# counters tick), carrying three sub-requests; nothing was shed
assert counters.get("serve.batch.requests", 0) == 1, counters.get("serve.batch.requests")
assert counters.get("serve.batch.subs", 0) == 3, counters.get("serve.batch.subs")
assert counters.get("serve.shed", 0) == 0, counters.get("serve.shed")
assert report["gauges"].get("serve.queue.depth", 0) == 0, "queue depth leaked"
# the reachability index was built (incrementally, from live deltas) and
# every served query answered from it: zero edge-list traversals
assert counters.get("prov.index.builds", 0) >= 1, "index never built"
assert counters.get("prov.index.traversals", 0) == 0, \
    "served queries must not re-walk the provenance edge list"
# the repeated sparql text was answered from the per-epoch plan cache
assert counters.get("rdf.plan.cache.hits", 0) >= 1, \
    f"plan cache never hit: {counters.get('rdf.plan.cache.hits')}"
assert counters.get("rdf.plan.builds", 0) >= 1, "no sparql plan was ever built"
# the ranked analytics probes above went through the instrumented layer
# (the ok rank, the summary, and the over-cap rank all tick it)
assert counters.get("prov.rank.queries", 0) >= 2, counters.get("prov.rank.queries")
assert "prov.rank.score_ns" in report["histograms"], "rank latency not recorded"
print("ci: serve metrics ok "
      f"(requests={counters['serve.requests']}, builds={counters['prov.index.builds']}, "
      f"plan_cache_hits={counters['rdf.plan.cache.hits']}, "
      f"rank_queries={counters['prov.rank.queries']})")
PY

echo "==> serve load-smoke (pipelined batches against a 2-worker server)"
./target/release/weblab --metrics-out "$metrics_dir/load.json" \
    serve --port 0 --workers 2 --max-batch 8 \
    > "$metrics_dir/load.out" 2> "$metrics_dir/load.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$metrics_dir/load.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on //p' "$metrics_dir/load.out")"
[ -n "$addr" ] || { echo "ci: load-smoke serve never printed its address" >&2; exit 1; }
python3 - "$addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
f = sock.makefile("rw", encoding="utf-8", newline="\n")

xml = ('<Resource wl:id="weblab://doc/load">'
       '<NativeContent wl:id="weblab://src/0" wl:s="Source" wl:t="0">'
       'pipelined load smoke text</NativeContent></Resource>')
f.write(json.dumps({"op": "ingest", "exec": "load", "xml": xml,
                    "pipeline": ["Normaliser"]}) + "\n")
f.flush()
assert json.loads(f.readline()).get("ok"), "load-smoke ingest failed"

# 300 pipelined requests in one write — every fifth a batch of 4 — then
# 300 responses, strictly in order, every id echoed, nothing shed
reqs = []
for i in range(300):
    if i % 5 == 0:
        reqs.append({"id": i, "op": "batch", "exec": "load",
                     "requests": [{"op": "why", "uri": "weblab://src/0"}] * 4})
    else:
        reqs.append({"id": i, "op": "why", "exec": "load",
                     "uri": "weblab://src/0"})
f.write("".join(json.dumps(r) + "\n" for r in reqs))
f.flush()
for i in range(300):
    r = json.loads(f.readline())
    assert r.get("id") == i, f"response out of order: expected id {i}, got {r}"
    assert r.get("ok"), r
    if i % 5 == 0:
        assert len(r["result"]) == 4, r
        assert all(s["epoch"] == r["epoch"] for s in r["result"]), "torn batch"

r_ = {"op": "shutdown"}
f.write(json.dumps(r_) + "\n")
f.flush()
assert json.loads(f.readline()).get("ok"), "shutdown failed"
sock.close()
print("ci: load-smoke ok (300 pipelined requests, 60 of them batches)")
PY
wait "$serve_pid" || { echo "ci: load-smoke serve did not shut down cleanly" >&2; exit 1; }
serve_pid=""
python3 - "$metrics_dir/load.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
counters = report["counters"]

# 1 ingest + 300 pipelined + 1 shutdown, all dispatched, none shed
assert counters.get("serve.requests", 0) == 302, counters.get("serve.requests")
assert counters.get("serve.errors", 0) == 0, counters.get("serve.errors")
assert counters.get("serve.batch.requests", 0) >= 1, "no batch was dispatched"
assert counters.get("serve.batch.requests", 0) == 60, counters.get("serve.batch.requests")
assert counters.get("serve.batch.subs", 0) == 240, counters.get("serve.batch.subs")
assert counters.get("serve.shed", 0) == 0, "load-smoke must not shed"
assert report["gauges"].get("serve.queue.depth", 0) == 0, "queue depth leaked"
print("ci: load-smoke metrics ok "
      f"(requests={counters['serve.requests']}, batches={counters['serve.batch.requests']})")
PY

echo "==> store cold-restart smoke (--store survives a daemon restart)"
store_dir="$metrics_dir/store"
./target/release/weblab --metrics-out "$metrics_dir/store1.json" \
    serve --port 0 --workers 2 --store "$store_dir" --max-resident 4 \
    --compact-every 200 \
    > "$metrics_dir/store1.out" 2> "$metrics_dir/store1.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$metrics_dir/store1.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on //p' "$metrics_dir/store1.out")"
[ -n "$addr" ] || { echo "ci: store smoke serve never printed its address" >&2; exit 1; }
python3 - "$addr" "$metrics_dir/store_replies.txt" <<'PY'
import json, socket, sys, time

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", encoding="utf-8", newline="\n")

def send(req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    return f.readline()

xml = ('<Resource wl:id="weblab://doc/cold">'
       '<NativeContent wl:id="weblab://src/0" wl:s="Source" wl:t="0">'
       'the text is in the language for peace</NativeContent></Resource>')
r = json.loads(send({"op": "ingest", "exec": "cold", "xml": xml,
                     "pipeline": ["Normaliser", "LanguageExtractor"]}))
assert r.get("ok") and r["result"]["links"] >= 1, r

# the exact query lines the restarted daemon will re-answer below
derived = ("PREFIX prov: <http://www.w3.org/ns/prov#> "
           "SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . }")
queries = [
    {"op": "why", "exec": "cold", "uri": "weblab://src/0"},
    {"op": "lineage", "exec": "cold", "uri": "weblab://src/0", "depth": 3},
    {"op": "impacted-by", "exec": "cold", "uri": "weblab://src/0"},
    {"op": "sparql", "exec": "cold", "query": derived},
    {"op": "batch", "exec": "cold", "requests": [
        {"op": "why", "uri": "weblab://src/0"},
        {"op": "sparql", "query": derived}]},
]
replies = []
for q in queries:
    line = send(q)
    assert json.loads(line).get("ok"), line
    replies.append(line)
with open(sys.argv[2], "w") as out:
    out.writelines(replies)

# give the background compactor (--compact-every 200) time to seal the
# write-through delta into a segment before shutdown
time.sleep(1.5)
r = json.loads(send({"op": "shutdown"}))
assert r.get("ok") and r["result"]["stopping"], r
sock.close()
print(f"ci: store smoke run 1 ok ({len(replies)} reply lines saved)")
PY
wait "$serve_pid" || { echo "ci: store smoke serve did not shut down cleanly" >&2; exit 1; }
serve_pid=""
python3 - "$metrics_dir/store1.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

# the execution was written through to disk and compacted in place
assert counters.get("store.delta_appends", 0) >= 1, counters.get("store.delta_appends")
assert counters.get("store.snapshots", 0) >= 1, counters.get("store.snapshots")
assert counters.get("store.segments", 0) >= 1, \
    f"compactor sealed no segment: {counters.get('store.segments')}"
assert counters.get("store.compactions", 0) >= 1, counters.get("store.compactions")
# everything stayed resident: serving never touched the disk path
assert counters.get("store.cold_loads", 0) == 0, counters.get("store.cold_loads")
print("ci: store write-through metrics ok "
      f"(segments={counters['store.segments']}, snapshots={counters['store.snapshots']})")
PY
./target/release/weblab --metrics-out "$metrics_dir/store2.json" \
    serve --port 0 --workers 2 --store "$store_dir" --max-resident 4 \
    > "$metrics_dir/store2.out" 2> "$metrics_dir/store2.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$metrics_dir/store2.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on //p' "$metrics_dir/store2.out")"
[ -n "$addr" ] || { echo "ci: restarted serve never printed its address" >&2; exit 1; }
python3 - "$addr" "$metrics_dir/store_replies.txt" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", encoding="utf-8", newline="\n")

def send(req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    return f.readline()

derived = ("PREFIX prov: <http://www.w3.org/ns/prov#> "
           "SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . }")
queries = [
    {"op": "why", "exec": "cold", "uri": "weblab://src/0"},
    {"op": "lineage", "exec": "cold", "uri": "weblab://src/0", "depth": 3},
    {"op": "impacted-by", "exec": "cold", "uri": "weblab://src/0"},
    {"op": "sparql", "exec": "cold", "query": derived},
    {"op": "batch", "exec": "cold", "requests": [
        {"op": "why", "uri": "weblab://src/0"},
        {"op": "sparql", "query": derived}]},
]
with open(sys.argv[2]) as saved:
    expected = saved.readlines()
assert len(expected) == len(queries)
for q, want in zip(queries, expected):
    got = send(q)
    assert got == want, \
        f"restart changed served bytes for {q['op']}:\n  was {want!r}\n  now {got!r}"

r = json.loads(send({"op": "status"}))
assert r.get("ok"), r
execs = {e["id"]: e for e in r["result"]["executions"]}
assert "cold" in execs and execs["cold"]["resident"], execs
r = json.loads(send({"op": "shutdown"}))
assert r.get("ok") and r["result"]["stopping"], r
sock.close()
print(f"ci: cold-restart replies byte-identical ({len(expected)} lines)")
PY
wait "$serve_pid" || { echo "ci: restarted serve did not shut down cleanly" >&2; exit 1; }
serve_pid=""
python3 - "$metrics_dir/store2.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

# the first query after restart pulled the execution off disk
assert counters.get("store.cold_loads", 0) >= 1, \
    f"restart never cold-loaded: {counters.get('store.cold_loads')}"
assert counters.get("serve.errors", 0) == 0, counters.get("serve.errors")
print(f"ci: cold-restart metrics ok (cold_loads={counters['store.cold_loads']})")
PY

echo "==> X13 snapshot validation (BENCH_X13_sparql.json)"
python3 - BENCH_X13_sparql.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

assert snap["experiment"] == "X13", snap
assert snap["triples"] >= 1_000_000, f"X13 corpus too small: {snap['triples']}"
assert snap["solutions"] > 0, "X13 query produced no solutions"
assert snap["byte_identical"] is True, "planner diverged from the seed evaluator"
assert snap["speedup"] >= 10, f"planner speedup under 10x: {snap['speedup']}"
print(f"ci: X13 snapshot ok ({snap['triples']} triples, "
      f"{snap['speedup']}x over the seed evaluator)")
PY

echo "==> X14 snapshot validation (BENCH_X14_serve.json)"
python3 - BENCH_X14_serve.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

assert snap["experiment"] == "X14", snap
assert snap["conns"] >= 1000, f"X14 must drive ~a thousand connections: {snap['conns']}"
assert snap["batch_size"] >= 8, f"X14 batch size under 8: {snap['batch_size']}"
assert snap["sheds"] == 0, "X14 must run below the admission-control shed point"
for phase in ("unbatched", "batched"):
    p = snap[phase]
    for key in ("subs", "wall_ns", "subs_per_sec", "p50_ns", "p99_ns", "p999_ns"):
        assert key in p, f"{phase} snapshot missing {key!r}"
    assert p["p50_ns"] <= p["p99_ns"] <= p["p999_ns"], f"{phase} quantiles disordered: {p}"
assert snap["unbatched"]["subs"] == snap["batched"]["subs"], \
    "both phases must answer the same sub-request workload"
assert snap["speedup"] >= 2, f"batching speedup under 2x: {snap['speedup']}"
print(f"ci: X14 snapshot ok ({snap['conns']} conns, "
      f"{snap['speedup']}x batched vs unbatched at batch size {snap['batch_size']})")
PY

echo "==> X15 snapshot validation (BENCH_X15_store.json)"
python3 - BENCH_X15_store.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

assert snap["experiment"] == "X15", snap
assert snap["executions"] >= 8, f"X15 working set too small: {snap['executions']}"
assert snap["byte_identical"] is True, \
    "cold-loaded answers diverged from resident bytes"
for phase, keys in (("resident", ("queries", "p50_ns", "p99_ns")),
                    ("cold", ("loads", "p50_ns", "p99_ns", "over_resident")),
                    ("evict", ("count", "wall_ns", "per_sec")),
                    ("restart", ("queries", "wall_ns", "compacted"))):
    for key in keys:
        assert key in snap[phase], f"{phase} snapshot missing {key!r}"
assert snap["cold"]["loads"] >= snap["executions"], \
    "every execution must be cold-loaded at least once"
assert snap["cold"]["over_resident"] >= 1, \
    f"a cold load cannot be cheaper than a resident lookup: {snap['cold']}"
assert snap["evict"]["count"] >= snap["executions"], snap["evict"]
counters = snap["counters"]
assert counters["cold_loads"] >= snap["cold"]["loads"], counters
assert counters["segments"] >= 1, "compaction sealed no segments"
assert counters["evictions"] == snap["evict"]["count"], counters
print(f"ci: X15 snapshot ok ({snap['executions']} executions, cold loads "
      f"{snap['cold']['over_resident']}x resident p50, byte-identical)")
PY

echo "==> store lock probe (second daemon on the same --store must fail)"
lock_dir="$metrics_dir/lockstore"
./target/release/weblab serve --port 0 --workers 1 --store "$lock_dir" \
    > "$metrics_dir/lock1.out" 2> "$metrics_dir/lock1.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$metrics_dir/lock1.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on //p' "$metrics_dir/lock1.out")"
[ -n "$addr" ] || { echo "ci: lock probe daemon never printed its address" >&2; exit 1; }
if ./target/release/weblab serve --port 0 --workers 1 --store "$lock_dir" \
    > "$metrics_dir/lock2.out" 2> "$metrics_dir/lock2.err"; then
    echo "ci: a second daemon on a locked store must fail" >&2; exit 1
fi
grep -q 'error\[store-locked\]' "$metrics_dir/lock2.err" \
    || { echo "ci: locked store must fail with the stable store-locked code" >&2;
         cat "$metrics_dir/lock2.err" >&2; exit 1; }
python3 - "$addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", encoding="utf-8", newline="\n")
f.write(json.dumps({"op": "shutdown"}) + "\n")
f.flush()
assert json.loads(f.readline()).get("ok"), "shutdown failed"
sock.close()
PY
wait "$serve_pid" || { echo "ci: lock probe daemon did not shut down cleanly" >&2; exit 1; }
serve_pid=""
echo "ci: store lock probe ok (second daemon refused with store-locked)"

echo "==> replay smoke (incremental recomputation matches a full re-run)"
replay_dir="$metrics_dir/replay"
mkdir -p "$replay_dir"
./target/release/weblab run data/sample_corpus.xml \
    Normaliser,LanguageExtractor,Translator,Tokeniser \
    --checkpoint "$replay_dir/ck" -o "$replay_dir/prior.xml"
sed 's/the language of peace/the language of war/' data/sample_corpus.xml \
    > "$replay_dir/changed.xml"
./target/release/weblab replay "$replay_dir/changed.xml" \
    --from "$replay_dir/ck" --exec sample_corpus \
    --changed weblab://src/1 --proof exact \
    -o "$replay_dir/replayed.xml" 2> "$replay_dir/replay.err"
# the English source dirties 3 of the 4 pipeline services; the Translator
# call (French chain only) must be spliced forward, not re-executed
grep -q 'replayed 4 call(s): cone 5, reused 1, recomputed 3' "$replay_dir/replay.err" \
    || { echo "ci: replay cone/reuse summary unexpected" >&2;
         cat "$replay_dir/replay.err" >&2; exit 1; }
./target/release/weblab run "$replay_dir/changed.xml" \
    Normaliser,LanguageExtractor,Translator,Tokeniser -o "$replay_dir/full.xml"
cmp "$replay_dir/replayed.xml" "$replay_dir/full.xml" \
    || { echo "ci: replayed document is not byte-identical to the full re-run" >&2; exit 1; }
echo "ci: replay smoke ok (recomputed 3 of 4 services, byte-identical output)"

echo "==> X16 snapshot validation (BENCH_X16_replay.json)"
python3 - BENCH_X16_replay.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

assert snap["experiment"] == "X16", snap
assert snap["sources"] >= 16, f"X16 corpus too small: {snap['sources']}"
assert snap["byte_identical"] is True, "replay diverged from the full re-run"
pcts = {s["dirty_pct"]: s for s in snap["scenarios"]}
assert 10 in pcts and 50 in pcts, f"X16 must cover 10% and 50% cones: {sorted(pcts)}"
for s in snap["scenarios"]:
    for key in ("cone", "recomputed", "reused", "full_ns", "replay_ns", "speedup"):
        assert key in s, f"scenario missing {key!r}: {s}"
    assert s["recomputed"] + s["reused"] == snap["sources"], s
    assert s["recomputed"] <= max(1, -(-snap["sources"] * s["dirty_pct"] // 100)), s
assert pcts[10]["speedup"] >= 2, \
    f"X16 replay at a 10% cone under 2x: {pcts[10]['speedup']}"
print(f"ci: X16 snapshot ok ({snap['sources']} sources, "
      f"{pcts[10]['speedup']}x at 10% dirty, {pcts[50]['speedup']}x at 50%)")
PY

echo "==> X17 snapshot validation (BENCH_X17_rank.json)"
python3 - BENCH_X17_rank.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

assert snap["experiment"] == "X17", snap
assert snap["nodes"] >= 100_000, f"X17 graph too small: {snap['nodes']}"
assert snap["edges"] == snap["nodes"] - 1, snap
assert 0 < snap["budget"] < snap["nodes"], snap
for phase, keys in (("full", ("rounds", "impacted", "p50_ns")),
                    ("rank", ("rounds", "returned", "p50_ns"))):
    for key in keys:
        assert key in snap[phase], f"{phase} snapshot missing {key!r}"
# the sink's impact closure is the whole tree — the worst case rank bounds
assert snap["full"]["impacted"] == snap["nodes"] - 1, snap["full"]
assert snap["rank"]["returned"] == snap["limit"], snap["rank"]
assert snap["speedup"] >= 10, \
    f"budgeted rank must be >=10x cheaper than full materialisation: {snap['speedup']}"
counters = snap["counters"]
assert counters["queries"] == snap["rank"]["rounds"], counters
assert counters["visited"] == snap["budget"] * snap["rank"]["rounds"], \
    "the budget must bound the visit count exactly"
print(f"ci: X17 snapshot ok ({snap['nodes']} nodes, top-{snap['limit']} "
      f"under budget {snap['budget']} is {snap['speedup']}x cheaper than "
      f"materialising {snap['full']['impacted']} impacted resources)")
PY

echo "ci: all gates passed"
