//! Quickstart: declare a mapping rule, run a tiny workflow, inspect the
//! provenance graph.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use weblab::prov::{infer_provenance, EngineOptions, RuleSet};
use weblab::workflow::{CallContext, Orchestrator, Service, Workflow, WorkflowError};
use weblab::xml::Document;

/// A black-box service: reads the latest `Quote` resource and appends an
/// `Analysis` resource that references it through `@about`.
struct Analyst;

impl Service for Analyst {
    fn name(&self) -> &str {
        "Analyst"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        // the most recent quote not yet analysed
        let v = doc.view();
        let todo: Vec<(String, String)> = v
            .descendants(root)
            .filter(|&n| v.name(n) == Some("Quote"))
            .filter_map(|n| Some((v.uri(n)?.to_string(), v.text_content(n))))
            .filter(|(uri, _)| {
                !v.descendants(root)
                    .any(|a| v.name(a) == Some("Analysis") && v.attr(a, "about") == Some(uri))
            })
            .collect();
        for (uri, text) in todo {
            let a = doc.append_element(root, "Analysis")?;
            doc.set_attr(a, "about", uri)?;
            doc.set_attr(a, "verdict", if text.contains("peace") { "positive" } else { "neutral" })?;
            ctx.register(doc, a)?;
        }
        Ok(())
    }
}

fn main() {
    // 1. An initial WebLab document with two identified Quote resources.
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/quickstart", None)
        .unwrap();
    for (i, text) in ["talks about peace in Geneva", "markets closed mixed"]
        .iter()
        .enumerate()
    {
        let q = doc.append_element(root, "Quote").unwrap();
        doc.register_resource(
            q,
            format!("weblab://quote/{i}"),
            Some(weblab::xml::CallLabel::new("Source", 0)),
        )
        .unwrap();
        doc.append_text(q, *text).unwrap();
    }

    // 2. The provenance mapping for the Analyst service: every Analysis
    //    depends on the Quote its @about attribute points at.
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Analyst", "//Quote[$q := @id] => //Analysis[@about = $q]")
        .unwrap();

    // 3. Execute the (one-step) workflow. The orchestrator stamps labels
    //    and records the trace; the service stays a black box.
    let wf = Workflow::new().then(Analyst);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();

    // 4. Infer fine-grained provenance from the final document + trace.
    let graph = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());

    println!("{graph}");
    for link in &graph.links {
        println!(
            "analysis {} was derived from quote {}",
            link.from_uri, link.to_uri
        );
    }
    assert_eq!(graph.links.len(), 2);
    assert!(graph.is_acyclic());
}
