//! The media-mining use case that motivates the paper: a multilingual
//! corpus flows through normalisation, language identification,
//! translation, annotation and indexing; afterwards we reconstruct — from
//! the final document alone — which service call produced what from what.
//!
//! ```text
//! cargo run --example media_mining
//! ```

use weblab::prov::{infer_provenance, EngineOptions, InheritMode};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{
    self, EntityExtractor, Indexer, KeywordExtractor, LanguageExtractor, Normaliser,
    SentimentAnalyser, Summariser, Tokeniser, Translator,
};
use weblab::workflow::{Orchestrator, Workflow};

fn main() {
    // A corpus of four raw documents in mixed languages.
    let mut doc = generate_corpus(2013, 4, 45);
    println!(
        "corpus: {} native resources, {} nodes",
        doc.resource_nodes().len() - 1,
        doc.node_count()
    );

    let workflow = Workflow::new()
        .then(Normaliser)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(LanguageExtractor) // annotate the fresh translations too
        .then(Tokeniser)
        .then(EntityExtractor)
        .then(SentimentAnalyser)
        .then(KeywordExtractor)
        .then(Summariser)
        .then(Indexer);

    let outcome = Orchestrator::new().execute(&workflow, &mut doc).unwrap();
    println!(
        "executed {} service calls; document grew to {} nodes",
        outcome.trace.len(),
        doc.node_count()
    );

    // Infer provenance posthoc, with inherited links enabled.
    let rules = services::default_rules();
    let graph = infer_provenance(
        &doc,
        &outcome.trace,
        &rules,
        &EngineOptions {
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        },
    );

    println!(
        "\nprovenance graph: {} labelled resources, {} dependency links (DAG: {})",
        graph.sources.len(),
        graph.links.len(),
        graph.is_acyclic()
    );

    // Which calls used whose outputs? (the service-level lineage)
    println!("\nservice-call lineage:");
    for (user, used) in graph.call_dependencies() {
        println!("  {user}  <-uses-  {used}");
    }

    // Full upstream lineage of every summary.
    println!("\nsummary lineage (transitive):");
    let v = doc.view();
    for &node in doc.resource_nodes() {
        if v.name(node) == Some("Summary") {
            let uri = v.uri(node).unwrap();
            let deps = graph.transitive_dependencies(uri);
            println!("  {uri}");
            for d in deps {
                println!("    <- {d}");
            }
        }
    }
}
