//! Out-of-process recording: services that communicate through serialised
//! XML documents (the original platform's SOAP exchanges). The Recorder
//! diffs each response against the stored state, merges the new fragments
//! into the canonical arena, and provenance inference proceeds exactly as
//! in the in-process case — the model is agnostic to how services run.
//!
//! ```text
//! cargo run --example soap_exchange
//! ```

use std::sync::Arc;

use weblab::platform::{Mapper, Platform};
use weblab::workflow::services::{LanguageExtractor, Normaliser};
use weblab::workflow::{CallContext, Service};
use weblab::xml::{to_xml_string, CallLabel, Document};

fn main() {
    let platform = Platform::new(Mapper::native());
    platform
        .register_service(
            Arc::new(Normaliser),
            &["//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]"],
        )
        .unwrap();
    platform
        .register_service(
            Arc::new(LanguageExtractor),
            &["//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]"],
        )
        .unwrap();

    // initial document, ingested into the repository
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/soap", None).unwrap();
    let native = doc.append_element(root, "NativeContent").unwrap();
    doc.register_resource(native, "weblab://src/0", Some(CallLabel::new("Source", 0)))
        .unwrap();
    doc.append_text(native, "le service distant analyse le texte")
        .unwrap();
    platform.ingest("soap-1", doc.clone());

    // --- the "remote" side -------------------------------------------
    // Pretend each service runs in another process: it receives the
    // serialised document, extends its own copy, and returns new XML.
    let remote = |doc: &mut Document, service: &dyn Service, time: u64| -> String {
        let mut ctx = CallContext::new(service.name(), time);
        service.call(doc, &mut ctx).expect("remote call");
        to_xml_string(&doc.view())
    };

    let response1 = remote(&mut doc, &Normaliser, 1);
    println!(
        "response 1 ({} bytes) received from remote Normaliser",
        response1.len()
    );
    platform
        .recorder()
        .record_exchange("soap-1", "Normaliser", 1, &response1)
        .unwrap();

    let response2 = remote(&mut doc, &LanguageExtractor, 2);
    println!(
        "response 2 ({} bytes) received from remote LanguageExtractor",
        response2.len()
    );
    platform
        .recorder()
        .record_exchange("soap-1", "LanguageExtractor", 2, &response2)
        .unwrap();

    // --- provenance over the merged canonical document ----------------
    let graph = platform.execution("soap-1").graph().unwrap();
    println!("\n{graph}");
    assert!(!graph.links.is_empty());

    // and the append-only guarantee is enforced: a response that dropped
    // content is rejected
    let bad_response = r#"<Resource wl:id="weblab://doc/soap"/>"#;
    let err = platform
        .recorder()
        .record_exchange("soap-1", "Rogue", 3, bad_response)
        .unwrap_err();
    println!("rogue service rejected: {err}");
}
