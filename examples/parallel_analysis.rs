//! Parallel workflow executions — the Section 8 extension.
//!
//! Two analysis branches (entity extraction + sentiment, versus
//! translation) process the normalised corpus concurrently; an indexing
//! step joins them. The provenance engine uses the recorded control-flow
//! channels to keep sibling branches independent: nothing in branch 1 can
//! "depend on" branch 0's output, even though the call instants interleave
//! on the wall clock.
//!
//! ```text
//! cargo run --example parallel_analysis
//! ```

use std::sync::Arc;

use weblab::platform::{Mapper, Platform, WorkflowSpec};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{
    self, EntityExtractor, Indexer, LanguageExtractor, Normaliser, SentimentAnalyser, Translator,
};

fn main() {
    let platform = Platform::new(Mapper::native());
    let rules = services::default_rules();
    for svc in [
        Arc::new(Normaliser) as Arc<dyn weblab::workflow::Service>,
        Arc::new(LanguageExtractor),
        Arc::new(Translator::default()),
        Arc::new(EntityExtractor),
        Arc::new(SentimentAnalyser),
        Arc::new(Indexer),
    ] {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(svc, &refs).unwrap();
    }

    platform.ingest("exec-par", generate_corpus(99, 3, 40));

    //            ┌─ LanguageExtractor ─ EntityExtractor ─ Sentiment ─┐
    // Normaliser ┤                                                   ├ Indexer
    //            └─ LanguageExtractor ─ Translator ──────────────────┘
    let spec = WorkflowSpec::default()
        .then("Normaliser")
        .then_parallel(vec![
            WorkflowSpec::sequence(&[
                "LanguageExtractor",
                "EntityExtractor",
                "SentimentAnalyser",
            ]),
            WorkflowSpec::sequence(&["LanguageExtractor", "Translator"]),
        ])
        .then("Indexer");
    platform.execute_spec("exec-par", &spec).unwrap();

    let graph = platform.execution("exec-par").graph().unwrap();
    println!(
        "provenance: {} labelled resources, {} links (DAG: {})",
        graph.sources.len(),
        graph.links.len(),
        graph.is_acyclic()
    );

    // channel-tagged lineage at the call level
    println!("\nservice-call lineage:");
    for (user, used) in graph.call_dependencies() {
        println!("  {user}  <-uses-  {used}");
    }

    // demonstrate sibling isolation: the Translator (branch 1) never
    // depends on anything the entity/sentiment branch produced
    let cross_branch = graph.links.iter().any(|l| {
        l.from_uri.contains("Translator")
            && (l.to_uri.contains("EntityExtractor") || l.to_uri.contains("SentimentAnalyser"))
    });
    println!("\ncross-branch dependencies: {cross_branch} (must be false)");
    assert!(!cross_branch);

    // … while the post-join Indexer aggregates annotations from both
    let indexer_deps = graph
        .links
        .iter()
        .filter(|l| l.from_uri.contains("Indexer"))
        .count();
    println!("index entries draw on {indexer_deps} annotation(s) across both branches");
    assert!(indexer_deps > 0);
}
