//! `weblab serve` — the long-running provenance query service.
//!
//! A [`Server`] owns a `TcpListener` and a fixed pool of worker threads
//! (std only — no async runtime) speaking a **line-delimited JSON**
//! protocol: one request object per line in, one response object per line
//! out, many requests per connection. The entire dispatch is written
//! against [`ExecutionHandle`] — the serve layer never touches `Platform`
//! internals.
//!
//! Requests (`op` selects the operation; see DESIGN.md §10):
//!
//! ```text
//! {"op":"why","exec":"e","uri":"r8"}
//! {"op":"lineage","exec":"e","uri":"r8","depth":3}
//! {"op":"impacted-by","exec":"e","uri":"r3"}
//! {"op":"common-origins","exec":"e","a":"r8","b":"r6"}
//! {"op":"sparql","exec":"e","query":"PREFIX prov: <…> SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . }"}
//! {"op":"ingest","exec":"e","xml":"<Resource>…</Resource>","live":true,"pipeline":["Normaliser"]}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses: `{"ok":true,"epoch":N,"result":…}` on success (`epoch` is
//! the reachability-index epoch the answer was computed at — present for
//! query ops), `{"ok":false,"code":"…","error":"…"}` on failure with the
//! stable [`WebLabError::code`] strings. `sparql` responses are capped at
//! [`Server::max_rows`] solution rows (default [`DEFAULT_MAX_ROWS`],
//! `--max-rows` on the CLI); a query over the cap fails with the stable
//! code `result-limit` instead of serialising an unbounded response.
//!
//! Queries answer from the execution's published [`EpochSnapshot`]
//! (immutable graph + index behind an `Arc` swap), so they run lock-free
//! and concurrently with live ingestion: a response is consistent with the
//! graph *as of its epoch* even while later calls keep publishing newer
//! epochs. The serve counters (`serve.requests`, `serve.errors`,
//! `serve.request_ns`) land in the same observability registry as the
//! engine's, so `--metrics-out` reports cover the daemon too.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use weblab_obs::{Counter, Histogram, Span};
use weblab_platform::{ExecutionHandle, Platform, ProvQuery, QueryAnswer};
use weblab_prov::EpochSnapshot;
use weblab_xml::parse_document;

use crate::error::WebLabError;
use crate::json::Json;

/// Requests handled (including failed ones).
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Requests answered with `ok:false`.
static SERVE_ERRORS: Counter = Counter::new("serve.errors");
/// Wall time of one request (parse + dispatch + render), in nanoseconds.
static SERVE_REQUEST_NS: Histogram = Histogram::new("serve.request_ns");

/// Default cap on `sparql` result rows ([`Server::max_rows`]).
pub const DEFAULT_MAX_ROWS: usize = 10_000;

/// The provenance query daemon.
pub struct Server {
    platform: Arc<Platform>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    max_rows: usize,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// platform is shared: executions started outside the server are
    /// queryable, and `ingest` requests are visible to the embedding
    /// process.
    pub fn bind(platform: Arc<Platform>, addr: &str) -> std::io::Result<Server> {
        Ok(Server {
            platform,
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
            max_rows: DEFAULT_MAX_ROWS,
        })
    }

    /// Cap `sparql` responses at `max_rows` solution rows (`--max-rows`;
    /// default [`DEFAULT_MAX_ROWS`]). A query producing more answers
    /// `ok:false` with the stable code `result-limit` instead of
    /// serialising an unbounded response.
    pub fn max_rows(mut self, max_rows: usize) -> Server {
        self.max_rows = max_rows;
        self
    }

    /// The bound address — what clients connect to (and what the CLI
    /// prints as `listening on …` for port scraping).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request arrives, dispatching connections
    /// to a pool of `workers` threads. Blocks the calling thread.
    pub fn run(self, workers: usize) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::new();
        for _ in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let platform = Arc::clone(&self.platform);
            let shutdown = Arc::clone(&self.shutdown);
            let max_rows = self.max_rows;
            pool.push(thread::spawn(move || loop {
                let next = rx.lock().expect("worker queue lock poisoned").recv();
                let Ok(stream) = next else { break };
                if serve_connection(&platform, stream, &shutdown, max_rows) {
                    // shutdown was requested on this connection: the
                    // acceptor may be blocked in accept(2) — nudge it with
                    // a throwaway self-connection so it re-checks the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                let _ = tx.send(stream);
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serve one connection to completion; returns whether this connection
/// requested shutdown.
fn serve_connection(
    platform: &Platform,
    stream: TcpStream,
    shutdown: &AtomicBool,
    max_rows: usize,
) -> bool {
    let Ok(mut writer) = stream.try_clone() else {
        return false;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = handle_line_with(platform, &line, max_rows);
        let written = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if written.is_err() {
            break;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            return true;
        }
    }
    false
}

/// Handle one protocol line with the default `sparql` row cap
/// ([`DEFAULT_MAX_ROWS`]). Public so tests (and embedders) can drive the
/// protocol in-process, bypassing TCP framing.
pub fn handle_line(platform: &Platform, line: &str) -> (String, bool) {
    handle_line_with(platform, line, DEFAULT_MAX_ROWS)
}

/// [`handle_line`] with an explicit `sparql` row cap — what the worker
/// threads of a [`Server`] configured via [`Server::max_rows`] call.
pub fn handle_line_with(platform: &Platform, line: &str, max_rows: usize) -> (String, bool) {
    SERVE_REQUESTS.inc();
    let span = Span::start(&SERVE_REQUEST_NS);
    let outcome = dispatch(platform, line, max_rows);
    drop(span);
    match outcome {
        Ok(Dispatched {
            epoch,
            result,
            shutdown,
        }) => {
            let mut pairs = vec![("ok", Json::Bool(true))];
            if let Some(e) = epoch {
                pairs.push(("epoch", Json::num(e)));
            }
            pairs.push(("result", result));
            (Json::obj(pairs).to_string(), shutdown)
        }
        Err(e) => {
            SERVE_ERRORS.inc();
            let body = Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("code", Json::str(e.code())),
                ("error", Json::str(e.to_string())),
            ]);
            (body.to_string(), false)
        }
    }
}

struct Dispatched {
    epoch: Option<u64>,
    result: Json,
    shutdown: bool,
}

fn dispatch(platform: &Platform, line: &str, max_rows: usize) -> Result<Dispatched, WebLabError> {
    let request = Json::parse(line).map_err(|e| WebLabError::Protocol(e.to_string()))?;
    let op = str_field(&request, "op")?;
    match op {
        "why" | "lineage" | "impacted-by" | "common-origins" | "sparql" => {
            let exec = platform.execution(str_field(&request, "exec")?);
            let query = parse_query(op, &request)?;
            let (epoch, answer) = exec.query_at(&query)?;
            if let QueryAnswer::Solutions(solutions) = &answer {
                if solutions.len() > max_rows {
                    return Err(WebLabError::ResultLimit {
                        rows: solutions.len(),
                        max: max_rows,
                    });
                }
            }
            Ok(Dispatched {
                epoch: Some(epoch),
                result: render_answer(&answer),
                shutdown: false,
            })
        }
        "ingest" => {
            let exec = platform.execution(str_field(&request, "exec")?);
            let doc = parse_document(str_field(&request, "xml")?)?;
            exec.ingest(doc);
            if request.get("live").and_then(Json::as_bool).unwrap_or(false) {
                exec.enable_live();
            }
            if let Some(pipeline) = request.get("pipeline") {
                let steps = string_array(pipeline, "pipeline")?;
                let refs: Vec<&str> = steps.iter().map(String::as_str).collect();
                exec.execute(&refs)?;
            }
            let snap = exec.snapshot()?;
            Ok(Dispatched {
                epoch: Some(snap.epoch),
                result: Json::obj(vec![
                    ("execution", Json::str(exec.id())),
                    ("calls", Json::num(snap.calls as u64)),
                    ("links", Json::num(snap.graph.links.len() as u64)),
                    ("resources", Json::num(snap.graph.sources.len() as u64)),
                ]),
                shutdown: false,
            })
        }
        "status" => {
            let executions: Vec<Json> = platform
                .executions()
                .into_iter()
                .map(|id| {
                    let handle = platform.execution(id);
                    Json::obj(vec![
                        ("id", Json::str(handle.id())),
                        ("live", Json::Bool(handle.live_enabled())),
                    ])
                })
                .collect();
            Ok(Dispatched {
                epoch: None,
                result: Json::obj(vec![("executions", Json::Arr(executions))]),
                shutdown: false,
            })
        }
        "shutdown" => Ok(Dispatched {
            epoch: None,
            result: Json::obj(vec![("stopping", Json::Bool(true))]),
            shutdown: true,
        }),
        other => Err(WebLabError::Protocol(format!("unknown op {other:?}"))),
    }
}

/// Build the [`ProvQuery`] for a query op from its request fields.
fn parse_query(op: &str, request: &Json) -> Result<ProvQuery, WebLabError> {
    Ok(match op {
        "why" => ProvQuery::Why {
            uri: str_field(request, "uri")?.to_string(),
        },
        "lineage" => ProvQuery::Lineage {
            uri: str_field(request, "uri")?.to_string(),
            depth: match request.get("depth") {
                None => 1,
                Some(d) => d.as_u64().ok_or_else(|| {
                    WebLabError::Protocol("field \"depth\" must be a non-negative integer".into())
                })? as usize,
            },
        },
        "impacted-by" => ProvQuery::ImpactedBy {
            uri: str_field(request, "uri")?.to_string(),
        },
        "common-origins" => ProvQuery::CommonOrigins {
            a: str_field(request, "a")?.to_string(),
            b: str_field(request, "b")?.to_string(),
        },
        "sparql" => ProvQuery::Sparql {
            query: str_field(request, "query")?.to_string(),
        },
        other => return Err(WebLabError::Protocol(format!("unknown op {other:?}"))),
    })
}

/// Render a [`QueryAnswer`] as protocol JSON. Deterministic: the same
/// answer always renders to the same bytes — what the serve differential
/// test compares against batch answers rendered through this same
/// function.
pub fn render_answer(answer: &QueryAnswer) -> Json {
    match answer {
        QueryAnswer::Why(w) => Json::obj(vec![
            ("root", Json::str(w.root.as_str())),
            (
                "resources",
                Json::Arr(w.resources.iter().map(|r| Json::str(r.as_str())).collect()),
            ),
            (
                "links",
                Json::Arr(
                    w.links
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("from", Json::str(l.from_uri.as_str())),
                                ("to", Json::str(l.to_uri.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "calls",
                Json::Arr(w.calls.iter().map(|c| Json::str(c.to_string())).collect()),
            ),
        ]),
        QueryAnswer::Lineage(rows) => Json::Arr(
            rows.iter()
                .map(|(uri, depth)| {
                    Json::Arr(vec![Json::str(uri.as_str()), Json::num(*depth as u64)])
                })
                .collect(),
        ),
        QueryAnswer::ImpactedBy(uris) | QueryAnswer::CommonOrigins(uris) => {
            Json::Arr(uris.iter().map(|u| Json::str(u.as_str())).collect())
        }
        QueryAnswer::Solutions(solutions) => Json::Arr(
            solutions
                .iter()
                .map(|sol| {
                    Json::Obj(
                        sol.iter()
                            .map(|(var, term)| (var.clone(), Json::str(term.to_string())))
                            .collect(),
                    )
                })
                .collect(),
        ),
    }
}

/// Render the full success response for an answer at an epoch — exactly
/// the bytes [`handle_line`] writes, exposed so differential tests can
/// compare a served response to a locally computed one byte-for-byte.
pub fn render_response(epoch: u64, answer: &QueryAnswer) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("epoch", Json::num(epoch)),
        ("result", render_answer(answer)),
    ])
    .to_string()
}

/// The batch reference answer for a query on a snapshot's graph, rendered
/// as a response line. Differential tests call this with a snapshot whose
/// epoch matches a served response and assert byte equality.
pub fn reference_response(snap: &EpochSnapshot, query: &ProvQuery) -> Result<String, WebLabError> {
    let answer = query
        .answer_on_graph(&snap.graph)
        .map_err(weblab_platform::PlatformError::from)?;
    Ok(render_response(snap.epoch, &answer))
}

fn str_field<'j>(request: &'j Json, key: &str) -> Result<&'j str, WebLabError> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WebLabError::Protocol(format!("missing string field {key:?}")))
}

fn string_array(value: &Json, key: &str) -> Result<Vec<String>, WebLabError> {
    value
        .as_array()
        .ok_or_else(|| WebLabError::Protocol(format!("field {key:?} must be an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(String::from)
                .ok_or_else(|| WebLabError::Protocol(format!("field {key:?} must hold strings")))
        })
        .collect()
}

// Keep the doc link alive: ExecutionHandle is the only platform surface
// this module dispatches through.
#[allow(unused)]
fn _assert_handle_only(h: &ExecutionHandle<'_>) {
    let _ = h;
}
