//! `weblab serve` — the long-running provenance query service.
//!
//! A [`Server`] owns a `TcpListener` and serves a **line-delimited JSON**
//! protocol: one request object per line in, one response object per line
//! out, many requests per connection, requests freely pipelined. The
//! transport is a single-threaded, std-only **event loop** over
//! non-blocking sockets (no async runtime, no `libc`): every tick it
//! accepts ready connections, drains readable sockets into per-connection
//! read buffers, frames complete lines, and hands admitted requests to a
//! fixed pool of dispatch workers; completions stream back over a channel
//! that doubles as the loop's wake-up (a completion-channel-woken
//! incremental reader — the std-only stand-in for `poll(2)` readiness).
//! The entire dispatch is written against [`ExecutionHandle`] — the serve
//! layer never touches `Platform` internals.
//!
//! Requests (`op` selects the operation; see DESIGN.md §10 and §12):
//!
//! ```text
//! {"op":"why","exec":"e","uri":"r8"}
//! {"op":"lineage","exec":"e","uri":"r8","depth":3}
//! {"op":"impacted-by","exec":"e","uri":"r3"}
//! {"op":"common-origins","exec":"e","a":"r8","b":"r6"}
//! {"op":"sparql","exec":"e","query":"PREFIX prov: <…> SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . }"}
//! {"op":"rank","exec":"e","uri":"r3","direction":"up","limit":10,"budget":4096,"decay":0.5,"weights":{"Translator":0.25}}
//! {"op":"summary","exec":"e","uri":"r3"}
//! {"op":"batch","exec":"e","requests":[{"op":"why","uri":"r8"},{"op":"impacted-by","uri":"r3"}]}
//! {"op":"ingest","exec":"e","xml":"<Resource>…</Resource>","live":true,"pipeline":["Normaliser"]}
//! {"op":"replay","exec":"e","as":"e2","xml":"<Resource>…</Resource>","changed":["r3"],"proof":"exact"}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses: `{"ok":true,"v":2,"epoch":N,"result":…}` on success
//! (`"v"` is the protocol version —
//! [`PROTOCOL_VERSION`](weblab_platform::PROTOCOL_VERSION), stamped on
//! every response so clients can detect the v2 answer shapes; `epoch` is
//! the reachability-index epoch the answer was computed at — present for
//! ops that touched a snapshot), `{"ok":false,"v":2,"code":"…","error":"…"}`
//! on failure with the stable [`WebLabError::code`] strings. Any request
//! may carry an `"id"` member; it is echoed back verbatim as the first
//! member of the response, so pipelining clients can match responses
//! under overload. `sparql` responses are capped at [`Server::max_rows`]
//! solution rows (stable code `result-limit`); `rank` and `summary`
//! result lists are capped by the same limit and code.
//!
//! ## The `batch` op
//!
//! `batch` carries up to [`Server::max_batch`] query sub-requests
//! (`why`/`lineage`/`impacted-by`/`common-origins`/`sparql`/`rank`/
//! `summary`) in one round-trip and answers **all of them against a single pinned epoch
//! snapshot**: the response is `{"ok":true,"epoch":E,"result":[…]}` where
//! every element is a full response object — successes byte-identical to
//! the same sub-request issued on its own at epoch `E`, failures carrying
//! their own stable code plus the batch's epoch. A batch is never torn
//! across two epochs, even while live ingestion publishes newer ones
//! mid-flight.
//!
//! ## Admission control and backpressure
//!
//! The transport enforces hard bounds with stable error codes:
//!
//! * **connection cap** ([`Server::max_conns`]) — excess connections get
//!   one `overloaded` error line and are closed (`serve.conn.rejected`);
//! * **queue-depth shedding** ([`Server::queue_depth`]) — a request
//!   arriving while that many admitted requests are queued or in flight
//!   is answered `overloaded` immediately, in FIFO position, without
//!   dispatch (`serve.shed`). Every received request gets exactly one
//!   response — shed, failed, or answered;
//! * **line length** ([`Server::max_line`]) — an over-long line is
//!   answered `line-limit`; a partial line that overflows the buffer
//!   without a newline gets the same error and the connection is closed
//!   (framing is lost), so a client streaming garbage can no longer pin
//!   a worker or grow memory without bound;
//! * **idle read timeout** ([`Server::idle_timeout`]) — a connection with
//!   no traffic and no pending work is answered `idle-timeout` and
//!   closed;
//! * **write backpressure** — a connection whose client stops reading
//!   accumulates a bounded write buffer; past the high-water mark the
//!   loop stops reading from that socket until the client drains.
//!
//! Queries answer from the execution's published [`EpochSnapshot`]
//! (immutable graph + index behind an `Arc` swap), so they run lock-free
//! and concurrently with live ingestion. The serve counters
//! (`serve.requests`, `serve.errors`, `serve.batch.{requests,subs}`,
//! `serve.shed`, `serve.conn.{accepted,rejected}`, the
//! `serve.queue.depth` gauge and the `serve.request_ns` histogram) land
//! in the same observability registry as the engine's, so
//! `--metrics-out` reports cover the daemon too.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use weblab_obs::{Counter, Gauge, Histogram, Span};
use weblab_platform::{
    ExecutionHandle, Platform, ProvQuery, QueryAnswer, QueryOpts, RankDirection, PROTOCOL_VERSION,
};
use weblab_prov::{format_micro, micro_from_f64};
use weblab_workflow::ProofMode;
use weblab_prov::EpochSnapshot;
use weblab_xml::parse_document;

use crate::error::WebLabError;
use crate::json::Json;

/// Requests dispatched (including failed ones; sheds are not dispatched).
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Dispatched requests answered with `ok:false`.
static SERVE_ERRORS: Counter = Counter::new("serve.errors");
/// Wall time of one dispatched request (parse + dispatch + render), ns.
static SERVE_REQUEST_NS: Histogram = Histogram::new("serve.request_ns");
/// `batch` requests dispatched.
static SERVE_BATCH_REQUESTS: Counter = Counter::new("serve.batch.requests");
/// Sub-requests carried by dispatched batches.
static SERVE_BATCH_SUBS: Counter = Counter::new("serve.batch.subs");
/// Requests shed by queue-depth admission control.
static SERVE_SHED: Counter = Counter::new("serve.shed");
/// Connections accepted into the event loop.
static SERVE_CONN_ACCEPTED: Counter = Counter::new("serve.conn.accepted");
/// Connections rejected at the connection cap.
static SERVE_CONN_REJECTED: Counter = Counter::new("serve.conn.rejected");
/// Admitted requests currently queued or in flight.
static SERVE_QUEUE_DEPTH: Gauge = Gauge::new("serve.queue.depth");

/// Default cap on `sparql` result rows ([`Server::max_rows`]).
pub const DEFAULT_MAX_ROWS: usize = 10_000;
/// Default cap on sub-requests per `batch` ([`Server::max_batch`]).
pub const DEFAULT_MAX_BATCH: usize = 256;
/// Default cap on concurrent connections ([`Server::max_conns`]).
pub const DEFAULT_MAX_CONNS: usize = 1024;
/// Default cap on one protocol line, in bytes ([`Server::max_line`]).
pub const DEFAULT_MAX_LINE: usize = 1 << 20;
/// Default admission-control queue depth ([`Server::queue_depth`]).
pub const DEFAULT_QUEUE_DEPTH: usize = 4096;
/// Default idle read timeout ([`Server::idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Stop reading from a connection whose unflushed responses exceed this.
const WRITE_HIGH_WATER: usize = 256 * 1024;
/// Most bytes drained from one socket per event-loop tick (fairness).
const READ_QUANTUM: usize = 256 * 1024;
/// Event-loop wake-up granularity when no completion arrives.
const TICK: Duration = Duration::from_micros(500);
/// How long a closing/draining connection may linger unflushed.
const CLOSE_GRACE: Duration = Duration::from_secs(5);

/// Per-request limits the dispatcher enforces.
#[derive(Clone, Copy, Debug)]
pub struct RequestLimits {
    /// Cap on `sparql` solution rows and `rank`/`summary` result lists
    /// (stable code `result-limit`).
    pub max_rows: usize,
    /// Cap on sub-requests per `batch` (stable code `batch-limit`).
    pub max_batch: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits {
            max_rows: DEFAULT_MAX_ROWS,
            max_batch: DEFAULT_MAX_BATCH,
        }
    }
}

/// The provenance query daemon.
pub struct Server {
    platform: Arc<Platform>,
    listener: TcpListener,
    limits: RequestLimits,
    max_conns: usize,
    max_line: usize,
    queue_depth: usize,
    idle_timeout: Option<Duration>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// platform is shared: executions started outside the server are
    /// queryable, and `ingest` requests are visible to the embedding
    /// process.
    pub fn bind(platform: Arc<Platform>, addr: &str) -> std::io::Result<Server> {
        Ok(Server {
            platform,
            listener: TcpListener::bind(addr)?,
            limits: RequestLimits::default(),
            max_conns: DEFAULT_MAX_CONNS,
            max_line: DEFAULT_MAX_LINE,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
        })
    }

    /// Cap `sparql` responses at `max_rows` solution rows, and `rank`/
    /// `summary` responses at `max_rows` result-list entries
    /// (`--max-rows`; default [`DEFAULT_MAX_ROWS`]). A query producing
    /// more answers `ok:false` with the stable code `result-limit`
    /// instead of serialising an unbounded response.
    pub fn max_rows(mut self, max_rows: usize) -> Server {
        self.limits.max_rows = max_rows;
        self
    }

    /// Cap `batch` requests at `max_batch` sub-requests (`--max-batch`;
    /// default [`DEFAULT_MAX_BATCH`]; stable code `batch-limit`).
    pub fn max_batch(mut self, max_batch: usize) -> Server {
        self.limits.max_batch = max_batch;
        self
    }

    /// Cap concurrent connections (`--max-conns`; default
    /// [`DEFAULT_MAX_CONNS`]). Excess connections receive one
    /// `overloaded` error line and are closed.
    pub fn max_conns(mut self, max_conns: usize) -> Server {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Cap one protocol line at `max_line` bytes (default
    /// [`DEFAULT_MAX_LINE`]; stable code `line-limit`).
    pub fn max_line(mut self, max_line: usize) -> Server {
        self.max_line = max_line.max(1);
        self
    }

    /// Shed requests arriving while `queue_depth` admitted requests are
    /// already queued or in flight (default [`DEFAULT_QUEUE_DEPTH`];
    /// stable code `overloaded`). Shed requests still get exactly one
    /// response, in FIFO position on their connection.
    pub fn queue_depth(mut self, queue_depth: usize) -> Server {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Close connections idle past `timeout` with an `idle-timeout` error
    /// line (`--idle-timeout`; default [`DEFAULT_IDLE_TIMEOUT`]; `None`
    /// disables the sweep).
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Server {
        self.idle_timeout = timeout;
        self
    }

    /// The bound address — what clients connect to (and what the CLI
    /// prints as `listening on …` for port scraping).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request completes, dispatching admitted
    /// requests to a pool of `workers` threads while a single event loop
    /// owns all socket I/O. Blocks the calling thread.
    pub fn run(self, workers: usize) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let mut pool = Vec::new();
        for _ in 0..workers.max(1) {
            let job_rx = Arc::clone(&job_rx);
            let done_tx = done_tx.clone();
            let platform = Arc::clone(&self.platform);
            let limits = self.limits;
            pool.push(thread::spawn(move || loop {
                let next = job_rx.lock().expect("worker queue lock poisoned").recv();
                let Ok(job) = next else { break };
                let (response, stop) = handle_line_limits(&platform, &job.line, &limits);
                let done = Done {
                    conn: job.conn,
                    response,
                    stop,
                };
                if done_tx.send(done).is_err() {
                    break;
                }
            }));
        }
        drop(done_tx);

        let mut lp = EventLoop {
            listener: &self.listener,
            conns: HashMap::new(),
            next_conn: 0,
            load: 0,
            max_conns: self.max_conns,
            max_line: self.max_line,
            queue_depth: self.queue_depth,
            idle_timeout: self.idle_timeout,
            job_tx,
            shutdown: false,
        };
        loop {
            let mut active = false;
            if !lp.shutdown {
                active |= lp.accept_ready();
                active |= lp.read_ready();
            }
            active |= lp.drain_completions(&done_rx);
            lp.pump_and_flush();
            lp.sweep_idle();
            lp.reap_closed();
            if lp.shutdown && lp.load == 0 && lp.all_flushed() {
                break;
            }
            if !active {
                // The completion channel is the loop's wake-up: a worker
                // finishing wakes it immediately; otherwise it re-scans
                // the sockets every TICK.
                match done_rx.recv_timeout(TICK) {
                    Ok(done) => lp.complete(done),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        drop(lp);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// One admitted request travelling to the dispatch workers.
struct Job {
    conn: u64,
    line: String,
}

/// One finished dispatch travelling back to the event loop.
struct Done {
    conn: u64,
    response: String,
    stop: bool,
}

/// An entry in a connection's FIFO of unanswered protocol lines.
enum Pending {
    /// An admitted request line waiting for its dispatch turn.
    Line(String),
    /// A response produced without dispatch (shed, line-limit, bad
    /// UTF-8), held in arrival position so per-connection FIFO order is
    /// preserved.
    Resolved(String),
}

/// Per-connection state of the event loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    flushed: usize,
    pending: VecDeque<Pending>,
    in_flight: bool,
    last_activity: Instant,
    /// Peer closed its side (or the socket errored): read no more.
    eof: bool,
    /// Close once the write buffer drains (or the grace period lapses).
    close_by: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            flushed: 0,
            pending: VecDeque::new(),
            in_flight: false,
            last_activity: Instant::now(),
            eof: false,
            close_by: None,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.flushed
    }

    fn push_response(&mut self, response: &str) {
        self.write_buf.extend_from_slice(response.as_bytes());
        self.write_buf.push(b'\n');
    }
}

/// The single-threaded owner of every socket.
struct EventLoop<'l> {
    listener: &'l TcpListener,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Admitted requests queued or in flight (mirrors `serve.queue.depth`).
    load: usize,
    max_conns: usize,
    max_line: usize,
    queue_depth: usize,
    idle_timeout: Option<Duration>,
    job_tx: mpsc::Sender<Job>,
    shutdown: bool,
}

impl EventLoop<'_> {
    /// Accept every ready connection; returns whether any arrived.
    fn accept_ready(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    any = true;
                    if self.conns.len() >= self.max_conns {
                        SERVE_CONN_REJECTED.inc();
                        reject_connection(stream, self.conns.len(), self.max_conns);
                    } else if stream.set_nonblocking(true).is_ok() {
                        // responses are single short lines: Nagle would
                        // add ~40ms of delayed-ACK latency per round trip
                        let _ = stream.set_nodelay(true);
                        SERVE_CONN_ACCEPTED.inc();
                        self.conns.insert(self.next_conn, Conn::new(stream));
                        self.next_conn += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock or transient: retry next tick
            }
        }
        any
    }

    /// Drain every readable socket into its buffer and frame complete
    /// lines; returns whether any bytes arrived.
    fn read_ready(&mut self) -> bool {
        let mut any = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let conn = self.conns.get_mut(&id).expect("conn ids are stable");
            if conn.eof || conn.close_by.is_some() || conn.unflushed() > WRITE_HIGH_WATER {
                continue; // closing or backpressured: stop reading
            }
            any |= read_some(conn);
            self.frame_lines(id);
        }
        any
    }

    /// Split `read_buf` into complete lines and admit/shed/reject each.
    fn frame_lines(&mut self, id: u64) {
        loop {
            let conn = self.conns.get_mut(&id).expect("conn ids are stable");
            let Some(nl) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                // no newline yet: a partial line may not overflow the cap
                if conn.read_buf.len() > self.max_line {
                    let e = WebLabError::LineLimit { max: self.max_line };
                    let resp = error_response(&e, None, None);
                    conn.pending.push_back(Pending::Resolved(resp));
                    conn.read_buf.clear();
                    // framing is lost mid-line: the connection must close
                    conn.close_by = Some(Instant::now() + CLOSE_GRACE);
                }
                return;
            };
            let mut line: Vec<u8> = conn.read_buf.drain(..=nl).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue; // blank keep-alive line: no response
            }
            if line.len() > self.max_line {
                let e = WebLabError::LineLimit { max: self.max_line };
                let resp = error_response(&e, None, None);
                conn.pending.push_back(Pending::Resolved(resp));
                continue; // framing intact: the connection survives
            }
            let Ok(text) = String::from_utf8(line) else {
                let e = WebLabError::Protocol("request line is not valid UTF-8".into());
                let resp = error_response(&e, None, None);
                conn.pending.push_back(Pending::Resolved(resp));
                continue;
            };
            if self.load >= self.queue_depth {
                // admission control: answer now, never dispatch — but in
                // FIFO position, and echoing the client's id if present
                SERVE_SHED.inc();
                let e = WebLabError::Overloaded {
                    depth: self.load,
                    cap: self.queue_depth,
                };
                let id_val = Json::parse(&text).ok().and_then(|r| r.get("id").cloned());
                let resp = error_response(&e, id_val.as_ref(), None);
                conn.pending.push_back(Pending::Resolved(resp));
                continue;
            }
            self.load += 1;
            SERVE_QUEUE_DEPTH.inc();
            conn.pending.push_back(Pending::Line(text));
        }
    }

    /// Pull finished dispatches off the completion channel.
    fn drain_completions(&mut self, done_rx: &mpsc::Receiver<Done>) -> bool {
        let mut any = false;
        while let Ok(done) = done_rx.try_recv() {
            any = true;
            self.complete(done);
        }
        any
    }

    fn complete(&mut self, done: Done) {
        // every dispatched job completes exactly once: the load ticket is
        // released here even if the connection died mid-flight
        self.load -= 1;
        SERVE_QUEUE_DEPTH.dec();
        if done.stop {
            self.shutdown = true;
        }
        if let Some(conn) = self.conns.get_mut(&done.conn) {
            conn.in_flight = false;
            conn.push_response(&done.response);
        }
    }

    /// Move ready responses into write buffers, dispatch next requests
    /// (serially per connection), and flush what the sockets accept.
    fn pump_and_flush(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let conn = self.conns.get_mut(&id).expect("conn ids are stable");
            while !conn.in_flight {
                match conn.pending.pop_front() {
                    Some(Pending::Resolved(resp)) => conn.push_response(&resp),
                    Some(Pending::Line(line)) => {
                        conn.in_flight = true;
                        if self.job_tx.send(Job { conn: id, line }).is_err() {
                            // workers are gone (shutdown drain): shed late
                            conn.in_flight = false;
                            self.load -= 1;
                            SERVE_QUEUE_DEPTH.dec();
                            let e = WebLabError::Overloaded {
                                depth: self.load,
                                cap: self.queue_depth,
                            };
                            conn.push_response(&error_response(&e, None, None));
                        }
                    }
                    None => break,
                }
            }
            flush_some(conn);
        }
    }

    /// Time out connections with no traffic and no pending work.
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        for conn in self.conns.values_mut() {
            if conn.close_by.is_none()
                && !conn.in_flight
                && conn.pending.is_empty()
                && now.duration_since(conn.last_activity) >= timeout
            {
                let millis = timeout.as_millis().min(u128::from(u64::MAX)) as u64;
                let e = WebLabError::IdleTimeout { millis };
                conn.push_response(&error_response(&e, None, None));
                flush_some(conn);
                conn.close_by = Some(now + CLOSE_GRACE);
            }
        }
    }

    /// Drop connections that finished closing (or lapsed their grace).
    fn reap_closed(&mut self) {
        let now = Instant::now();
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                let drained = c.pending.is_empty() && !c.in_flight && c.unflushed() == 0;
                let graceful = c.close_by.is_some_and(|by| drained || now >= by);
                let hung_up = c.eof && (drained || c.write_errored());
                graceful || hung_up
            })
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            let conn = self.conns.remove(&id).expect("conn ids are stable");
            // release tickets for admitted lines that will never dispatch
            // (the in-flight ticket, if any, is released on completion)
            let queued = conn
                .pending
                .iter()
                .filter(|p| matches!(p, Pending::Line(_)))
                .count();
            self.load -= queued;
            SERVE_QUEUE_DEPTH.add(-(queued as i64));
        }
    }

    fn all_flushed(&self) -> bool {
        self.conns.values().all(|c| c.unflushed() == 0)
    }
}

impl Conn {
    /// After `eof`, writes can no longer reach the peer once the socket
    /// errors; `flush_some` marks that by clearing the buffer.
    fn write_errored(&self) -> bool {
        self.unflushed() == 0
    }
}

/// Best-effort `overloaded` notice for a connection over the cap. The
/// freshly accepted socket is still blocking, the payload is one short
/// line, and the peer's receive window is empty, so this cannot stall the
/// event loop in practice.
fn reject_connection(mut stream: TcpStream, depth: usize, cap: usize) {
    let e = WebLabError::Overloaded { depth, cap };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(error_response(&e, None, None).as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Drain up to [`READ_QUANTUM`] ready bytes; returns whether any arrived.
fn read_some(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    let mut total = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                total += n;
                if total >= READ_QUANTUM {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                break;
            }
        }
    }
    total > 0
}

/// Write as much buffered response data as the socket accepts.
fn flush_some(conn: &mut Conn) {
    while conn.flushed < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.flushed..]) {
            Ok(0) => {
                conn.eof = true;
                conn.write_buf.clear();
                conn.flushed = 0;
                return;
            }
            Ok(n) => {
                conn.flushed += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // peer is gone: responses are undeliverable
                conn.eof = true;
                conn.write_buf.clear();
                conn.flushed = 0;
                return;
            }
        }
    }
    if conn.flushed == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.flushed = 0;
    } else if conn.flushed > 64 * 1024 {
        conn.write_buf.drain(..conn.flushed);
        conn.flushed = 0;
    }
}

/// Handle one protocol line with the default limits. Public so tests
/// (and embedders) can drive the protocol in-process, bypassing TCP
/// framing.
pub fn handle_line(platform: &Platform, line: &str) -> (String, bool) {
    handle_line_limits(platform, line, &RequestLimits::default())
}

/// [`handle_line`] with an explicit `sparql` row cap (other limits at
/// their defaults).
pub fn handle_line_with(platform: &Platform, line: &str, max_rows: usize) -> (String, bool) {
    let limits = RequestLimits {
        max_rows,
        ..RequestLimits::default()
    };
    handle_line_limits(platform, line, &limits)
}

/// [`handle_line`] with explicit [`RequestLimits`] — what the dispatch
/// workers of a [`Server`] call.
pub fn handle_line_limits(
    platform: &Platform,
    line: &str,
    limits: &RequestLimits,
) -> (String, bool) {
    SERVE_REQUESTS.inc();
    let span = Span::start(&SERVE_REQUEST_NS);
    let parsed = Json::parse(line).map_err(|e| WebLabError::Protocol(e.to_string()));
    let id = parsed.as_ref().ok().and_then(|r| r.get("id").cloned());
    let outcome = parsed.and_then(|request| dispatch(platform, &request, limits));
    drop(span);
    match outcome {
        Ok(d) => (
            success_json(d.epoch, d.result, id.as_ref()).to_string(),
            d.shutdown,
        ),
        Err(e) => {
            SERVE_ERRORS.inc();
            (error_response(&e, id.as_ref(), None), false)
        }
    }
}

struct Dispatched {
    epoch: Option<u64>,
    result: Json,
    shutdown: bool,
}

fn dispatch(
    platform: &Platform,
    request: &Json,
    limits: &RequestLimits,
) -> Result<Dispatched, WebLabError> {
    let op = str_field(request, "op")?;
    match op {
        "why" | "lineage" | "impacted-by" | "common-origins" | "sparql" | "rank" | "summary" => {
            let exec = platform.execution(str_field(request, "exec")?);
            let query = parse_query(op, request)?;
            let (epoch, answer) = exec.query_at(&query)?;
            check_row_cap(&answer, limits)?;
            Ok(Dispatched {
                epoch: Some(epoch),
                result: render_answer(&answer),
                shutdown: false,
            })
        }
        "batch" => dispatch_batch(platform, request, limits),
        "ingest" => {
            let exec = platform.execution(str_field(request, "exec")?);
            let doc = parse_document(str_field(request, "xml")?)?;
            exec.ingest(doc);
            if request.get("live").and_then(Json::as_bool).unwrap_or(false) {
                exec.enable_live();
            }
            if let Some(pipeline) = request.get("pipeline") {
                let steps = string_array(pipeline, "pipeline")?;
                let refs: Vec<&str> = steps.iter().map(String::as_str).collect();
                exec.execute(&refs)?;
            }
            let snap = exec.snapshot()?;
            Ok(Dispatched {
                epoch: Some(snap.epoch),
                result: Json::obj(vec![
                    ("execution", Json::str(exec.id())),
                    ("calls", Json::num(snap.calls as u64)),
                    ("links", Json::num(snap.graph.links.len() as u64)),
                    ("resources", Json::num(snap.graph.sources.len() as u64)),
                ]),
                shutdown: false,
            })
        }
        "replay" => {
            let exec = platform.execution(str_field(request, "exec")?);
            let new_id = str_field(request, "as")?;
            let doc = parse_document(str_field(request, "xml")?)?;
            let changed = string_array(
                request
                    .get("changed")
                    .ok_or_else(|| WebLabError::Protocol("replay requires \"changed\"".into()))?,
                "changed",
            )?;
            let proof = parse_proof_mode(request)?;
            let report = exec.replay(new_id, doc, &changed, proof)?;
            let grades: Vec<Json> = report
                .grades
                .iter()
                .map(|g| {
                    Json::obj(vec![
                        ("service", Json::str(g.service.as_str())),
                        ("time", Json::num(g.time)),
                        ("grade", Json::Num(g.grade)),
                        ("identical", Json::Bool(g.identical)),
                    ])
                })
                .collect();
            let snap = platform.execution(&report.execution).snapshot()?;
            Ok(Dispatched {
                epoch: Some(snap.epoch),
                result: Json::obj(vec![
                    ("execution", Json::str(report.execution.as_str())),
                    ("cone", Json::num(report.cone_size as u64)),
                    ("reused", Json::num(report.reused as u64)),
                    ("recomputed", Json::num(report.recomputed as u64)),
                    ("splices", Json::num(report.splices as u64)),
                    ("grades", Json::Arr(grades)),
                ]),
                shutdown: false,
            })
        }
        "status" => {
            let executions: Vec<Json> = platform
                .executions()
                .into_iter()
                .map(|id| {
                    let handle = platform.execution(id);
                    Json::obj(vec![
                        ("id", Json::str(handle.id())),
                        ("live", Json::Bool(handle.live_enabled())),
                        ("resident", Json::Bool(handle.is_resident())),
                    ])
                })
                .collect();
            Ok(Dispatched {
                epoch: None,
                result: Json::obj(vec![("executions", Json::Arr(executions))]),
                shutdown: false,
            })
        }
        "shutdown" => Ok(Dispatched {
            epoch: None,
            result: Json::obj(vec![("stopping", Json::Bool(true))]),
            shutdown: true,
        }),
        other => Err(WebLabError::Protocol(format!("unknown op {other:?}"))),
    }
}

/// Dispatch a `batch` request: pin **one** snapshot and answer every
/// sub-request on it, so the whole batch shares one atomic epoch.
fn dispatch_batch(
    platform: &Platform,
    request: &Json,
    limits: &RequestLimits,
) -> Result<Dispatched, WebLabError> {
    let subs = request
        .get("requests")
        .and_then(Json::as_array)
        .ok_or_else(|| {
            WebLabError::Protocol("batch requires an array field \"requests\"".into())
        })?;
    if subs.len() > limits.max_batch {
        return Err(WebLabError::BatchLimit {
            size: subs.len(),
            max: limits.max_batch,
        });
    }
    let exec_id = str_field(request, "exec")?;
    let exec = platform.execution(exec_id);
    let snap = exec.snapshot()?;
    SERVE_BATCH_REQUESTS.inc();
    SERVE_BATCH_SUBS.add(subs.len() as u64);
    let results: Vec<Json> = subs
        .iter()
        .map(|sub| {
            let id = sub.get("id");
            match batch_sub(&exec, &snap, sub, exec_id, limits) {
                Ok(result) => success_json(Some(snap.epoch), result, id),
                Err(e) => error_json(&e, id, Some(snap.epoch)),
            }
        })
        .collect();
    Ok(Dispatched {
        epoch: Some(snap.epoch),
        result: Json::Arr(results),
        shutdown: false,
    })
}

/// Answer one batch sub-request on the batch's pinned snapshot.
fn batch_sub(
    exec: &ExecutionHandle<'_>,
    snap: &Arc<EpochSnapshot>,
    sub: &Json,
    batch_exec: &str,
    limits: &RequestLimits,
) -> Result<Json, WebLabError> {
    let op = str_field(sub, "op")?;
    match op {
        "why" | "lineage" | "impacted-by" | "common-origins" | "sparql" | "rank" | "summary" => {
            if let Some(sub_exec) = sub.get("exec").and_then(Json::as_str) {
                if sub_exec != batch_exec {
                    return Err(WebLabError::Protocol(format!(
                        "sub-request exec {sub_exec:?} differs from the batch's {batch_exec:?}"
                    )));
                }
            }
            let query = parse_query(op, sub)?;
            let answer = exec.query_on(snap, &query)?;
            check_row_cap(&answer, limits)?;
            Ok(render_answer(&answer))
        }
        other => Err(WebLabError::Protocol(format!(
            "op {other:?} is not batchable (only query ops)"
        ))),
    }
}

fn check_row_cap(answer: &QueryAnswer, limits: &RequestLimits) -> Result<(), WebLabError> {
    let rows = match answer {
        QueryAnswer::Solutions(solutions) => solutions.len(),
        QueryAnswer::Ranked(entries) => entries.len(),
        // a summary's unbounded dimension is its cluster/service lists
        QueryAnswer::Summary(s) => s.services.len().max(s.clusters.len()),
        _ => return Ok(()),
    };
    if rows > limits.max_rows {
        return Err(WebLabError::ResultLimit {
            rows,
            max: limits.max_rows,
        });
    }
    Ok(())
}

/// Build the [`ProvQuery`] for a query op from its request fields.
fn parse_query(op: &str, request: &Json) -> Result<ProvQuery, WebLabError> {
    Ok(match op {
        "why" => ProvQuery::Why {
            uri: str_field(request, "uri")?.to_string(),
        },
        "lineage" => ProvQuery::Lineage {
            uri: str_field(request, "uri")?.to_string(),
            depth: match request.get("depth") {
                None => 1,
                Some(d) => d.as_u64().ok_or_else(|| {
                    WebLabError::Protocol("field \"depth\" must be a non-negative integer".into())
                })? as usize,
            },
        },
        "impacted-by" => ProvQuery::ImpactedBy {
            uri: str_field(request, "uri")?.to_string(),
        },
        "common-origins" => ProvQuery::CommonOrigins {
            a: str_field(request, "a")?.to_string(),
            b: str_field(request, "b")?.to_string(),
        },
        "sparql" => ProvQuery::Sparql {
            query: str_field(request, "query")?.to_string(),
        },
        "rank" => ProvQuery::Rank {
            uris: match request.get("uris") {
                Some(v) => string_array(v, "uris")?,
                None => vec![str_field(request, "uri")?.to_string()],
            },
            direction: match request.get("direction") {
                None => RankDirection::Up,
                Some(d) => d
                    .as_str()
                    .and_then(RankDirection::parse)
                    .ok_or_else(|| {
                        WebLabError::Protocol(
                            "field \"direction\" must be \"up\" or \"down\"".into(),
                        )
                    })?,
            },
            opts: parse_query_opts(request)?,
            weights: parse_weights(request)?,
        },
        "summary" => ProvQuery::Summary {
            uri: request.get("uri").and_then(Json::as_str).map(String::from),
        },
        other => return Err(WebLabError::Protocol(format!("unknown op {other:?}"))),
    })
}

/// Parse the shared v2 [`QueryOpts`] envelope (`limit`, `budget`,
/// `decay`) off a request — the same envelope the CLI flags feed.
fn parse_query_opts(request: &Json) -> Result<QueryOpts, WebLabError> {
    let mut opts = QueryOpts::default();
    for (key, slot) in [("limit", &mut opts.limit), ("budget", &mut opts.budget)] {
        if let Some(v) = request.get(key) {
            *slot = v.as_u64().ok_or_else(|| {
                WebLabError::Protocol(format!("field {key:?} must be a non-negative integer"))
            })? as usize;
        }
    }
    if let Some(v) = request.get("decay") {
        let micro = match v {
            Json::Num(n) => micro_from_f64(*n, 1.0),
            _ => None,
        };
        opts.decay_micro = micro.ok_or_else(|| {
            WebLabError::Protocol("field \"decay\" must be a number in [0, 1]".into())
        })? as u32;
    }
    Ok(opts)
}

/// Parse the optional `weights` object (`{"Service": 0.25, …}`) into
/// micro-unit per-service edge weights.
fn parse_weights(request: &Json) -> Result<Vec<(String, u32)>, WebLabError> {
    match request.get("weights") {
        None => Ok(Vec::new()),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(service, v)| {
                let micro = match v {
                    Json::Num(n) => micro_from_f64(*n, 1000.0),
                    _ => None,
                };
                micro
                    .map(|m| (service.clone(), m as u32))
                    .ok_or_else(|| {
                        WebLabError::Protocol(format!(
                            "weight of {service:?} must be a number in [0, 1000]"
                        ))
                    })
            })
            .collect(),
        Some(_) => Err(WebLabError::Protocol(
            "field \"weights\" must be an object of service → number".into(),
        )),
    }
}

/// A success response object:
/// `{"id"?,…,"ok":true,"v":2,"epoch"?,…,"result":…}`. The `id` member,
/// when the request carried one, always renders first; every response
/// carries the protocol version.
fn success_json(epoch: Option<u64>, result: Json, id: Option<&Json>) -> Json {
    let mut pairs = Vec::with_capacity(5);
    if let Some(id) = id {
        pairs.push(("id", id.clone()));
    }
    pairs.push(("ok", Json::Bool(true)));
    pairs.push(("v", Json::num(PROTOCOL_VERSION)));
    if let Some(e) = epoch {
        pairs.push(("epoch", Json::num(e)));
    }
    pairs.push(("result", result));
    Json::obj(pairs)
}

/// An error response object carrying the protocol version, the stable
/// code and, for batch sub-requests, the epoch the batch was answered at.
fn error_json(e: &WebLabError, id: Option<&Json>, epoch: Option<u64>) -> Json {
    let mut pairs = Vec::with_capacity(6);
    if let Some(id) = id {
        pairs.push(("id", id.clone()));
    }
    pairs.push(("ok", Json::Bool(false)));
    pairs.push(("v", Json::num(PROTOCOL_VERSION)));
    if let Some(ep) = epoch {
        pairs.push(("epoch", Json::num(ep)));
    }
    pairs.push(("code", Json::str(e.code())));
    pairs.push(("error", Json::str(e.to_string())));
    Json::obj(pairs)
}

/// [`error_json`] rendered to wire bytes — what the event loop emits for
/// transport-layer failures (sheds, line limits, idle timeouts).
fn error_response(e: &WebLabError, id: Option<&Json>, epoch: Option<u64>) -> String {
    error_json(e, id, epoch).to_string()
}

/// Render a [`QueryAnswer`] as protocol JSON. Deterministic: the same
/// answer always renders to the same bytes — what the serve differential
/// test compares against batch answers rendered through this same
/// function.
pub fn render_answer(answer: &QueryAnswer) -> Json {
    match answer {
        QueryAnswer::Why(w) => Json::obj(vec![
            ("root", Json::str(w.root.as_str())),
            (
                "resources",
                Json::Arr(w.resources.iter().map(|r| Json::str(r.as_str())).collect()),
            ),
            (
                "links",
                Json::Arr(
                    w.links
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("from", Json::str(l.from_uri.as_str())),
                                ("to", Json::str(l.to_uri.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "calls",
                Json::Arr(w.calls.iter().map(|c| Json::str(c.to_string())).collect()),
            ),
        ]),
        QueryAnswer::Lineage(rows) => Json::Arr(
            rows.iter()
                .map(|(uri, depth)| {
                    Json::Arr(vec![Json::str(uri.as_str()), Json::num(*depth as u64)])
                })
                .collect(),
        ),
        QueryAnswer::ImpactedBy(uris) | QueryAnswer::CommonOrigins(uris) => {
            Json::Arr(uris.iter().map(|u| Json::str(u.as_str())).collect())
        }
        QueryAnswer::Solutions(solutions) => Json::Arr(
            solutions
                .iter()
                .map(|sol| {
                    Json::Obj(
                        sol.iter()
                            .map(|(var, term)| (var.clone(), Json::str(term.to_string())))
                            .collect(),
                    )
                })
                .collect(),
        ),
        // scores render as fixed six-decimal micro-unit strings, so the
        // bytes are exact at every worker count
        QueryAnswer::Ranked(entries) => Json::Arr(
            entries
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("uri", Json::str(e.uri.as_str())),
                        ("score", Json::str(format_micro(e.score_micro))),
                        ("hop", Json::num(e.hop as u64)),
                    ])
                })
                .collect(),
        ),
        QueryAnswer::Summary(s) => {
            let services: Vec<Json> = s
                .services
                .iter()
                .map(|svc| {
                    Json::obj(vec![
                        ("service", Json::str(svc.service.as_str())),
                        ("resources", Json::num(svc.resources)),
                        ("influence", Json::num(svc.influence)),
                        ("origins", Json::num(svc.origins)),
                    ])
                })
                .collect();
            let clusters: Vec<Json> = s
                .clusters
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("root", Json::str(c.root.as_str())),
                        ("size", Json::num(c.size)),
                    ])
                })
                .collect();
            let mut pairs = vec![
                ("resources", Json::num(s.resources)),
                ("edges", Json::num(s.edges)),
                ("services", Json::Arr(services)),
                ("clusters", Json::Arr(clusters)),
            ];
            if let Some(b) = &s.blast {
                pairs.push((
                    "blast",
                    Json::obj(vec![
                        ("uri", Json::str(b.uri.as_str())),
                        ("impacted", Json::num(b.impacted)),
                        ("origins", Json::num(b.origins)),
                    ]),
                ));
            }
            Json::obj(pairs)
        }
    }
}

/// Render the full success response for an answer at an epoch — exactly
/// the bytes [`handle_line`] writes (and the bytes of one batch
/// sub-response), exposed so differential tests can compare a served
/// response to a locally computed one byte-for-byte.
pub fn render_response(epoch: u64, answer: &QueryAnswer) -> String {
    success_json(Some(epoch), render_answer(answer), None).to_string()
}

/// The batch reference answer for a query on a snapshot's graph, rendered
/// as a response line. Differential tests call this with a snapshot whose
/// epoch matches a served response and assert byte equality.
pub fn reference_response(snap: &EpochSnapshot, query: &ProvQuery) -> Result<String, WebLabError> {
    let answer = query
        .answer_on_graph(&snap.graph)
        .map_err(weblab_platform::PlatformError::from)?;
    Ok(render_response(snap.epoch, &answer))
}

/// The `replay` op's proof mode: `"trusted"` (default), `"exact"`, or
/// `"concordant"` with an optional `tolerance` (default 0.9).
fn parse_proof_mode(request: &Json) -> Result<ProofMode, WebLabError> {
    let mode = request.get("proof").and_then(Json::as_str).unwrap_or("trusted");
    match mode {
        "trusted" => Ok(ProofMode::Trusted),
        "exact" => Ok(ProofMode::Exact),
        "concordant" => {
            let tolerance = match request.get("tolerance") {
                None => 0.9,
                Some(Json::Num(n)) if (0.0..=1.0).contains(n) => *n,
                Some(_) => {
                    return Err(WebLabError::Protocol(
                        "field \"tolerance\" must be a number in [0, 1]".into(),
                    ))
                }
            };
            Ok(ProofMode::Concordant { tolerance })
        }
        other => Err(WebLabError::Protocol(format!(
            "unknown proof mode {other:?} (expected trusted, exact or concordant)"
        ))),
    }
}

fn str_field<'j>(request: &'j Json, key: &str) -> Result<&'j str, WebLabError> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WebLabError::Protocol(format!("missing string field {key:?}")))
}

fn string_array(value: &Json, key: &str) -> Result<Vec<String>, WebLabError> {
    value
        .as_array()
        .ok_or_else(|| WebLabError::Protocol(format!("field {key:?} must be an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(String::from)
                .ok_or_else(|| WebLabError::Protocol(format!("field {key:?} must hold strings")))
        })
        .collect()
}
