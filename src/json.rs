//! A minimal JSON value type for the serve protocol — no dependencies.
//!
//! The serve daemon speaks line-delimited JSON, and the workspace is
//! offline (no serde), so this module carries the few pieces the protocol
//! needs: a parser for client request lines and a **deterministic**
//! serialiser for responses. Objects preserve insertion order, so a given
//! [`Json`] value always serialises to the same bytes — the property the
//! serve differential tests pin ("served answer is byte-identical to the
//! batch answer rendered the same way").
//!
//! Intentional limits (requests are single lines of modest size): numbers
//! are `f64` (integers up to 2^53 round-trip exactly), and no
//! streaming/incremental parsing.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and serialised verbatim.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9007199254740992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON value (surrounding whitespace allowed;
    /// trailing garbage is an error). Nesting is capped at
    /// [`MAX_NESTING_DEPTH`]: the parser is recursive, so a hostile input
    /// of ten thousand `[`s must become a parse error, not a stack
    /// overflow — a hard requirement for the serve fuzz harness.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Protocol values are
/// shallow (a batch of requests is depth 3); 128 leaves generous headroom
/// while keeping the recursive parser far from the thread's stack limit.
pub const MAX_NESTING_DEPTH: usize = 128;

/// A JSON parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_NESTING_DEPTH {
        return Err(JsonError::at(*pos, "value nested too deeply"));
    }
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(JsonError::at(*pos, format!("unexpected byte {:?}", *c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected {word:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "non-UTF-8 number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("malformed number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        // surrogate pair: a second \uXXXX must follow
                        if (0xD800..0xDC00).contains(&hi) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                let c = 0x10000
                                    + ((hi as u32 - 0xD800) << 10)
                                    + (lo as u32 - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| JsonError::at(*pos, "bad surrogate pair"))?,
                                );
                            } else {
                                return Err(JsonError::at(*pos, "lone high surrogate"));
                            }
                        } else {
                            out.push(
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| JsonError::at(*pos, "bad \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "non-UTF-8 string content"))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, JsonError> {
    // *pos is at the 'u'; consume its 4 hex digits, leaving *pos at the last
    let hex = bytes
        .get(*pos + 1..*pos + 5)
        .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(hex).map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
    let v = u16::from_str_radix(text, 16).map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
    *pos += 4;
    Ok(v)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact, deterministic serialisation (no added whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9007199254740992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shaped_values() {
        let line = r#"{"op":"why","exec":"e-1","uri":"r8","depth":3,"live":true,"tags":["a","b"],"none":null}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("why"));
        assert_eq!(v.get("depth").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("live").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("tags").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("none"), Some(&Json::Null));
        // serialisation is byte-identical to the (compact, ordered) input
        assert_eq!(v.to_string(), line);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f — ünïcøde 🎉");
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // surrogate-pair escapes decode too
        assert_eq!(
            Json::parse(r#""🎉 é""#).unwrap(),
            Json::str("🎉 é")
        );
    }

    #[test]
    fn numbers_serialise_as_integers_when_integral() {
        assert_eq!(Json::num(0).to_string(), "0");
        assert_eq!(Json::num(42).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_offsets() {
        for bad in [
            "", "{", "[1,", r#"{"a"}"#, r#"{"a":}"#, "tru", "\"unterminated",
            r#"{"a":1} extra"#, "[1 2]", r#""\q""#, r#""\ud800""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        // within the cap: fine
        let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&shallow).is_ok());
        // past the cap: a parse error, even at depths that would blow the
        // stack without the guard
        for depth in [MAX_NESTING_DEPTH + 1, 100_000] {
            let arrays = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
            assert!(Json::parse(&arrays).is_err(), "accepted depth {depth}");
            let objects = format!("{}1{}", "{\"k\":".repeat(depth), "}".repeat(depth));
            assert!(Json::parse(&objects).is_err());
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#"{"result":{"links":[{"from":"a","to":"b"}],"n":2}}"#).unwrap();
        let links = v
            .get("result")
            .and_then(|r| r.get("links"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(links[0].get("from").and_then(Json::as_str), Some("a"));
    }
}
