//! `weblab` — command-line interface to the WebLab PROV reproduction.
//!
//! ```text
//! weblab run <input.xml> <service,service,…> [-o out.xml] [--retries N]
//!            [--on-failure abort|skip|retry] [--checkpoint DIR [--resume]]
//!            [--live [--link-store FILE]]
//!     Run built-in media-mining services over a WebLab document and write
//!     the stamped result (wl:id / wl:s / wl:t metadata included).
//!     `--retries N` grants each step N extra attempts (failed attempts are
//!     rolled back to the pre-call state; retries reuse the call instant).
//!     `--on-failure` sets the disposition once attempts are exhausted:
//!     abort the run (default), skip the step, or retry (implied by
//!     `--retries`). `--checkpoint DIR` persists document + trace + a
//!     checkpoint after every completed step; `--resume` restarts a crashed
//!     run from the last checkpoint in DIR instead of from <input.xml>.
//!     The `flaky` / `flaky:N` pseudo-service fails its first 2 / N calls
//!     and then succeeds — a fault-injection aid for exercising the flags.
//!     `--live` maintains the provenance graph *during* the run: every
//!     committed call is folded into a materialized link store as it
//!     completes (rolled-back attempts never reach it), so by the final
//!     call the full graph exists without a batch inference pass. A
//!     summary goes to stderr; `--link-store FILE` (implies `--live`)
//!     additionally writes the links atomically with an integrity footer.
//!
//! weblab replay <changed.xml> --from DIR [--exec ID] --changed URI[,URI…]
//!               [--proof trusted|exact|concordant] [--tolerance F]
//!               [-o out.xml] [catalog.txt]
//!     Provenance-guided incremental recomputation: re-run a prior
//!     execution (persisted by `weblab run --checkpoint DIR`) under a
//!     changed copy of its *input* document, re-executing only the
//!     services whose outputs fall inside the dirty cone of the
//!     `--changed` URIs (the `impacted-by` closure in the prior run's
//!     provenance graph) and splicing every other fragment forward from
//!     the prior result. The output is provably identical to a full
//!     re-run. `--proof exact` sandbox-re-executes every reused step and
//!     demands byte identity (fails loudly on nondeterministic services);
//!     `--proof concordant` grades similarity and accepts fragments at or
//!     above `--tolerance` (default 0.9), reporting per-fragment grades.
//!     `--exec ID` defaults to the changed file's stem, matching the id
//!     `weblab run` derives from its input path.
//!
//! weblab infer <stamped.xml> [catalog.txt] [--inherit] [--format table|turtle|provxml|dot] [--jobs N|auto]
//!     Reconstruct the execution trace from the document's labels, apply
//!     the mapping rules (built-in defaults, or a Service Catalog file) and
//!     print the provenance graph.
//!
//! weblab query <stamped.xml> <sparql> [catalog.txt] [--jobs N|auto]
//!     Materialise the PROV-O graph and answer a SPARQL SELECT query.
//!
//! weblab query <stamped.xml> rank <uri>… [--direction up|down] [--limit N]
//!              [--budget N] [--decay F] [--weight Service=F]
//!              [--catalog FILE] [--jobs N|auto]
//!     Ranked relevance by spreading activation: seeds start at score
//!     1.000000, each hop multiplies by `--decay` (default 0.5) and the
//!     per-service `--weight` (repeatable; default 1.0) of the service
//!     that produced the derived endpoint. `--budget N` caps the visited
//!     frontier to the N best-scored resources (0 = unbounded, the exact
//!     impacted-by / lineage closure); `--limit N` truncates the printed
//!     list. Scores are deterministic fixed-point values — identical to
//!     the serve protocol's `rank` op at any worker count.
//!
//! weblab query <stamped.xml> summary [uri] [--catalog FILE] [--jobs N|auto]
//!     Traversal-free aggregate analytics from the reachability index:
//!     per-service influence, common-origin clusters, and (with a uri)
//!     that resource's blast radius.
//!
//! weblab why <stamped.xml> <resource-uri> [catalog.txt] [--jobs N|auto]
//!     Why-provenance: the justifying subgraph of one resource.
//!
//! `--jobs` (or `-j`) sets the inference engine's worker-thread count
//! (`auto` = all available cores); the default is sequential. The output is
//! byte-identical at any setting.
//!
//! `--metrics` (any command) enables engine observability: pattern
//! evaluations, cache hits/misses, per-service timings and more are
//! collected during the run and printed as a table on stderr afterwards.
//! `--metrics-out FILE` (implies `--metrics`) additionally writes the
//! machine-readable JSON report to FILE.
//!
//! weblab services
//!     List the built-in services and their default mapping rules.
//!
//! weblab serve [--port N] [--workers N] [--max-rows N] [--max-batch N]
//!              [--max-conns N] [--idle-timeout MS]
//!              [--store DIR [--max-resident N] [--compact-every MS]]
//!              [catalog.txt]
//!     Start the long-running provenance query service: a TCP daemon
//!     speaking line-delimited JSON (`why`, `lineage`, `impacted-by`,
//!     `common-origins`, `sparql`, `rank`, `summary`, `batch`, `ingest`,
//!     `replay`, `status`, `shutdown` — see DESIGN.md §10, §12, §14 and
//!     §15; responses carry the protocol version `"v":2`). A non-blocking event
//!     loop owns all sockets and pipelined requests; `--workers N` sizes
//!     the dispatch pool (default 4). Queries answer from a published
//!     reachability-index snapshot, concurrently with live ingestion;
//!     `batch` answers all its sub-requests at one pinned epoch.
//!     `--port 0` (the default) binds an ephemeral port; the bound
//!     address is printed as `listening on …` on stdout. `--max-rows N`
//!     caps `sparql`, `rank` and `summary` result rows (default 10000;
//!     code `result-limit`),
//!     `--max-batch N` caps batch sub-requests (default 256; code
//!     `batch-limit`), `--max-conns N` caps concurrent connections
//!     (default 1024; code `overloaded`), `--idle-timeout MS` closes
//!     idle connections (default 300000; 0 disables; code
//!     `idle-timeout`). `--store DIR` attaches the disk-backed sharded
//!     provenance store: every execution is written through to DIR, at
//!     most `--max-resident N` executions (default 64) stay in memory,
//!     and evicted executions cold-load transparently — answers are
//!     byte-identical to the resident path, and a restarted daemon
//!     serves the previous daemon's executions. A background compactor
//!     seals delta files into segments every `--compact-every MS`
//!     (default 5000; 0 disables).
//! ```
//!
//! Catalog files use the Service Catalog text format (see
//! `weblab_platform::ServiceCatalog`): `[service] name | endpoint | sig`
//! headers followed by `rule: <mapping>` lines.
//!
//! Failures print as `error[{code}]: {message}` where the code is the
//! stable [`WebLabError::code`] string shared with the serve protocol.

use std::process::ExitCode;
use std::sync::Arc;

use weblab::error::WebLabError;
use weblab::platform::{
    persist, Mapper, Platform, PlatformError, ProvQuery, QueryAnswer, QueryOpts, RankDirection,
    ServiceCatalog,
};
use weblab::prov::{
    dirty_cone, format_micro, infer_provenance, micro_from_f64, EngineOptions, ExecutionTrace,
    InheritMode, Parallelism, ProvenanceGraph, ReachabilityIndex, RuleSet,
};
use weblab::rdf::{export_prov, to_turtle};
use weblab::serve::Server;
use weblab::workflow::services::{
    self, EntityExtractor, Flaky, Indexer, KeywordExtractor, LanguageExtractor, Normaliser,
    OcrExtractor, SentimentAnalyser, SpeechTranscriber, Summariser, Tokeniser, Translator,
};
use weblab::workflow::{
    AttemptStatus, FailurePolicy, FaultPolicy, Orchestrator, ProofMode, RetryPolicy, Service,
    Workflow,
};
use weblab::xml::{parse_document, to_xml_string_pretty, Document};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = match extract_metrics_flags(&mut args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.code());
            return ExitCode::from(2);
        }
    };
    if metrics.enabled {
        weblab::obs::enable();
    }
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("why") => cmd_why(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("services") => cmd_services(),
        _ => {
            eprintln!("usage: weblab <run|replay|infer|query|why|serve|services> …  (see --help in the binary's doc comment)");
            return ExitCode::from(2);
        }
    };
    let result = result.and_then(|()| report_metrics(&metrics));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.code());
            ExitCode::FAILURE
        }
    }
}

/// `--metrics` / `--metrics-out FILE` are global flags: they apply to every
/// command, so they are stripped from the argument list before dispatch.
struct MetricsFlags {
    enabled: bool,
    out: Option<String>,
}

fn extract_metrics_flags(args: &mut Vec<String>) -> Result<MetricsFlags, WebLabError> {
    let mut flags = MetricsFlags {
        enabled: false,
        out: None,
    };
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => flags.enabled = true,
            "--metrics-out" => {
                flags.out = Some(it.next().ok_or("missing value for --metrics-out")?);
                flags.enabled = true;
            }
            _ => kept.push(a),
        }
    }
    drop(it);
    *args = kept;
    Ok(flags)
}

/// After the command ran: human table to stderr (stdout belongs to the
/// command's own output), JSON to the requested file.
fn report_metrics(flags: &MetricsFlags) -> CliResult {
    if !flags.enabled {
        return Ok(());
    }
    let snap = weblab::obs::snapshot();
    eprintln!("--- metrics ---\n{}", snap.to_table());
    if let Some(path) = &flags.out {
        std::fs::write(path, snap.to_json())
            .map_err(|e| WebLabError::io(format!("writing metrics report {path}"), e))?;
    }
    Ok(())
}

type CliResult = Result<(), WebLabError>;

/// Print to stdout, treating a broken pipe (e.g. `weblab … | head`) as a
/// successful early exit rather than a panic.
fn emit(text: &str) -> CliResult {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|_| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
            std::process::exit(0);
        }
        Err(e) => Err(WebLabError::io("writing to stdout", e)),
    }
}

fn read_doc(path: &str) -> Result<Document, WebLabError> {
    let text = std::fs::read_to_string(path).map_err(|e| WebLabError::io(format!("reading {path}"), e))?;
    Ok(parse_document(&text)?)
}

fn service_by_name(name: &str) -> Option<Box<dyn Service>> {
    // fault-injection service: `flaky` fails twice then succeeds; `flaky:N`
    // fails N times
    if let Some(rest) = name.to_lowercase().strip_prefix("flaky") {
        let n = match rest.strip_prefix(':') {
            Some(v) => v.parse().ok()?,
            None if rest.is_empty() => 2,
            None => return None,
        };
        return Some(Box::new(Flaky::failing(n)));
    }
    Some(match name.to_lowercase().as_str() {
        "normaliser" | "normalizer" => Box::new(Normaliser),
        "languageextractor" | "language" => Box::new(LanguageExtractor),
        "translator" => Box::new(Translator::default()),
        "tokeniser" | "tokenizer" => Box::new(Tokeniser),
        "entityextractor" | "entities" => Box::new(EntityExtractor),
        "sentimentanalyser" | "sentiment" => Box::new(SentimentAnalyser),
        "keywordextractor" | "keywords" => Box::new(KeywordExtractor),
        "summariser" | "summarizer" => Box::new(Summariser),
        "indexer" => Box::new(Indexer),
        "ocrextractor" | "ocr" => Box::new(OcrExtractor),
        "speechtranscriber" | "speech" => Box::new(SpeechTranscriber),
        _ => return None,
    })
}

fn rules_from(path: Option<&str>) -> Result<RuleSet, WebLabError> {
    match path {
        None => Ok(services::default_rules()),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| WebLabError::io(format!("reading {p}"), e))?;
            let catalog = ServiceCatalog::from_text(&text).map_err(PlatformError::from)?;
            Ok(catalog.rule_set())
        }
    }
}

/// Parse a `--jobs` value: a worker-thread count, or `auto` for all cores.
fn parse_jobs(v: &str) -> Result<Parallelism, WebLabError> {
    if v.eq_ignore_ascii_case("auto") {
        Ok(Parallelism::Auto)
    } else {
        v.parse::<usize>()
            .map(Parallelism::Threads)
            .map_err(|_| format!("--jobs expects a thread count or \"auto\", got {v:?}").into())
    }
}

/// Split positional arguments from a trailing/interspersed `--jobs` flag
/// (commands whose other arguments are purely positional).
fn split_jobs(args: &[String]) -> Result<(Vec<String>, Parallelism), WebLabError> {
    let mut pos = Vec::new();
    let mut jobs = Parallelism::Sequential;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                jobs = parse_jobs(it.next().ok_or("missing value for --jobs")?)?
            }
            other => pos.push(other.to_string()),
        }
    }
    Ok((pos, jobs))
}

fn build_graph(
    doc: &Document,
    rules: &RuleSet,
    inherit: bool,
    jobs: Parallelism,
) -> ProvenanceGraph {
    let trace = ExecutionTrace::reconstruct_from(doc);
    infer_provenance(
        doc,
        &trace,
        rules,
        &EngineOptions {
            inherit: if inherit {
                InheritMode::PatternRewrite
            } else {
                InheritMode::Off
            },
            parallelism: jobs,
            ..Default::default()
        },
    )
}

fn cmd_run(args: &[String]) -> CliResult {
    let (mut input, mut pipeline, mut out) = (None, None, None);
    let mut retries: Option<u32> = None;
    let mut on_failure: Option<FailurePolicy> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut live = false;
    let mut link_store: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => out = Some(it.next().ok_or("missing value for -o")?.clone()),
            "--live" => live = true,
            "--link-store" => {
                link_store = Some(it.next().ok_or("missing value for --link-store")?.clone());
                live = true;
            }
            "--retries" => {
                let v = it.next().ok_or("missing value for --retries")?;
                retries = Some(
                    v.parse()
                        .map_err(|_| format!("--retries expects a count, got {v:?}"))?,
                );
            }
            "--on-failure" => {
                let v = it.next().ok_or("missing value for --on-failure")?;
                on_failure = Some(FailurePolicy::parse(v).ok_or_else(|| {
                    format!("--on-failure expects abort|skip|retry, got {v:?}")
                })?);
            }
            "--checkpoint" => {
                checkpoint_dir = Some(it.next().ok_or("missing value for --checkpoint")?.clone())
            }
            "--resume" => resume = true,
            other if input.is_none() => input = Some(other.to_string()),
            other if pipeline.is_none() => pipeline = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let input = input.ok_or(
        "usage: weblab run <input.xml> <service,…> [-o out.xml] [--retries N] \
         [--on-failure abort|skip|retry] [--checkpoint DIR [--resume]] \
         [--live [--link-store FILE]]",
    )?;
    let pipeline = pipeline.ok_or("missing service list")?;
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint DIR".into());
    }

    let mut wf = Workflow::new();
    for name in pipeline.split(',') {
        let svc =
            service_by_name(name.trim()).ok_or_else(|| format!("unknown service {name:?}"))?;
        wf = wf.then_boxed(svc);
    }
    let step_names = wf.step_names();

    // fault policy: --retries N grants N extra attempts per step and implies
    // the retry disposition unless --on-failure overrides it
    let mut fault = FaultPolicy::default();
    if let Some(n) = retries {
        fault.on_failure = FailurePolicy::Retry;
        fault.retry = RetryPolicy::with_max_attempts(n + 1);
    }
    if let Some(d) = on_failure {
        fault.on_failure = d;
    }
    let mut orch = Orchestrator::new().with_fault(fault);

    // checkpoint/resume: the execution id is derived from the input path
    let exec_id = std::path::Path::new(&input)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("execution")
        .to_string();
    let ckpt_dir = checkpoint_dir.as_ref().map(std::path::Path::new);

    let (mut doc, mut completed, mut start, prior_calls) = if resume {
        let dir = ckpt_dir.expect("checked above");
        match persist::load_checkpoint(dir, &exec_id)? {
            Some(ckpt) => {
                if ckpt.step_names != step_names {
                    return Err(format!(
                        "checkpoint in {} was written by a different workflow \
                         ({:?}, not {:?})",
                        dir.display(),
                        ckpt.step_names,
                        step_names
                    )
                    .into());
                }
                let (doc, trace) = persist::load_execution(dir, &exec_id)?;
                eprintln!(
                    "resuming after {} completed step(s) at t={}",
                    ckpt.completed_steps, ckpt.next_time
                );
                (doc, ckpt.completed_steps, ckpt.next_time, trace.calls)
            }
            None => {
                eprintln!("no checkpoint found in {}; starting fresh", dir.display());
                (read_doc(&input)?, 0, 0, Vec::new())
            }
        }
    } else {
        (read_doc(&input)?, 0, 0, Vec::new())
    };
    if start == 0 {
        start = weblab::workflow::next_time(&doc);
        completed = 0;
    }

    // live mode: a maintainer folds every committed call into its link
    // store from the orchestrator's call-completion hook. On a resumed run
    // it first catches up on the calls of the persisted trace, then opens a
    // fresh segment (the resumed outcome's call indices restart at 0).
    let maintainer = live.then(|| {
        let mut lp = weblab::prov::LiveProvenance::new(
            services::default_rules(),
            EngineOptions::default(),
        );
        lp.catch_up(
            &doc,
            &ExecutionTrace {
                calls: prior_calls.clone(),
            },
        );
        lp.new_segment();
        std::sync::Arc::new(std::sync::Mutex::new(lp))
    });
    if let Some(lp) = &maintainer {
        let hook = std::sync::Arc::clone(lp);
        orch = orch.with_call_hook(std::sync::Arc::new(move |doc, trace, idx| {
            hook.lock().expect("live maintainer lock poisoned").observe_call(doc, trace, idx);
        }));
    }

    // after every completed top-level step, persist document + trace + a
    // checkpoint (atomically); a crash resumes from the last completed step
    let ckpt_error = std::cell::RefCell::new(None::<persist::PersistError>);
    let outcome_result = orch.execute_resumable(
        &wf,
        &mut doc,
        start,
        completed,
        &mut |done, doc, outcome, next_time| {
            if let Some(dir) = ckpt_dir {
                let mut full = ExecutionTrace {
                    calls: prior_calls.clone(),
                };
                full.calls.extend(outcome.trace.calls.iter().cloned());
                let r = persist::save_execution(dir, &exec_id, doc, &full)
                    .and_then(|()| {
                        persist::save_checkpoint(
                            dir,
                            &exec_id,
                            &persist::Checkpoint {
                                completed_steps: done,
                                next_time,
                                step_names: step_names.clone(),
                            },
                        )
                    });
                if let Err(e) = r {
                    ckpt_error.borrow_mut().get_or_insert(e);
                }
            }
        },
    );
    let outcome = outcome_result?;
    if let Some(e) = ckpt_error.into_inner() {
        return Err(e.into());
    }
    if let Some(dir) = ckpt_dir {
        persist::clear_checkpoint(dir, &exec_id)?;
    }

    let (mut rolled_back, mut skipped) = (0usize, 0usize);
    for a in &outcome.attempts {
        match &a.status {
            AttemptStatus::RolledBack { error } => {
                rolled_back += 1;
                eprintln!(
                    "attempt {} of {} at t={} rolled back: {error}",
                    a.attempt, a.service, a.time
                );
            }
            AttemptStatus::Skipped => {
                skipped += 1;
                eprintln!("step {} at t={} skipped after final attempt", a.service, a.time);
            }
            AttemptStatus::Succeeded => {}
        }
    }
    eprintln!(
        "executed {} calls ({} attempt(s), {} rolled back, {} skipped); \
         document has {} nodes, {} resources",
        outcome.trace.len(),
        outcome.attempts.len(),
        rolled_back,
        skipped,
        doc.node_count(),
        doc.resource_nodes().len()
    );
    if let Some(lp) = &maintainer {
        let mut lp = lp.lock().expect("live maintainer lock poisoned");
        // absorb any sources registered after the last committed call
        lp.catch_up(&doc, &outcome.trace);
        eprintln!(
            "live provenance: {} call(s) folded, {} link(s), {} source(s)",
            lp.calls_folded(),
            lp.link_count(),
            lp.sources().len()
        );
        if let Some(path) = &link_store {
            persist::save_link_store(std::path::Path::new(path), &lp.links())?;
            eprintln!("link store written to {path}");
        }
    }
    let xml = to_xml_string_pretty(&doc.view());
    match out {
        Some(path) => std::fs::write(&path, xml)
            .map_err(|e| WebLabError::io(format!("writing {path}"), e))?,
        None => emit(&format!("{xml}\n"))?,
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> CliResult {
    let mut input = None;
    let mut catalog = None;
    let mut from: Option<String> = None;
    let mut exec: Option<String> = None;
    let mut changed: Vec<String> = Vec::new();
    let mut proof = "trusted".to_string();
    let mut tolerance: Option<f64> = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => out = Some(it.next().ok_or("missing value for -o")?.clone()),
            "--from" => from = Some(it.next().ok_or("missing value for --from")?.clone()),
            "--exec" => exec = Some(it.next().ok_or("missing value for --exec")?.clone()),
            "--changed" => changed.extend(
                it.next()
                    .ok_or("missing value for --changed")?
                    .split(',')
                    .map(str::to_string),
            ),
            "--proof" => proof = it.next().ok_or("missing value for --proof")?.clone(),
            "--tolerance" => {
                let v = it.next().ok_or("missing value for --tolerance")?;
                tolerance = Some(v.parse().map_err(|_| {
                    format!("--tolerance expects a number in [0, 1], got {v:?}")
                })?);
            }
            other if input.is_none() => input = Some(other.to_string()),
            other if catalog.is_none() => catalog = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let input = input.ok_or(
        "usage: weblab replay <changed.xml> --from DIR [--exec ID] --changed URI[,URI…] \
         [--proof trusted|exact|concordant] [--tolerance F] [-o out.xml] [catalog.txt]",
    )?;
    let from = from.ok_or("--from DIR is required (a weblab run --checkpoint directory)")?;
    if changed.is_empty() {
        return Err("--changed URI is required (repeat or comma-separate for several)".into());
    }
    let proof = match proof.as_str() {
        "trusted" => ProofMode::Trusted,
        "exact" => ProofMode::Exact,
        "concordant" => ProofMode::Concordant {
            tolerance: tolerance.unwrap_or(0.9),
        },
        other => {
            return Err(
                format!("--proof expects trusted|exact|concordant, got {other:?}").into(),
            )
        }
    };

    // the prior execution: document + trace persisted by `weblab run
    // --checkpoint DIR` (ids derive from the input file stem there, so the
    // same derivation is the default here)
    let exec_id = exec.unwrap_or_else(|| {
        std::path::Path::new(&input)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("execution")
            .to_string()
    });
    let dir = std::path::Path::new(&from);
    let (prior_doc, prior_trace) = persist::load_execution(dir, &exec_id)?;
    if prior_trace.calls.is_empty() {
        return Err(format!("execution {exec_id:?} in {from} has no recorded calls").into());
    }
    let mut wf = Workflow::new();
    for c in &prior_trace.calls {
        let svc = service_by_name(&c.service)
            .ok_or_else(|| format!("prior trace names unknown service {:?}", c.service))?;
        wf = wf.then_boxed(svc);
    }

    // dirty cone: impacted-by closure of the changed URIs in the prior
    // run's provenance graph. Inherited provenance is ON here: the base
    // rules only link a fragment's anchor resource, but the cone must
    // cover contained resources (a unit's TextContent) too, or downstream
    // consumers of those would be spliced stale.
    let rules = rules_from(catalog.as_deref())?;
    let graph = infer_provenance(
        &prior_doc,
        &prior_trace,
        &rules,
        &EngineOptions {
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        },
    );
    let index = ReachabilityIndex::from_graph(&graph);
    let dirty: std::collections::HashSet<String> =
        dirty_cone(&index, &changed).into_iter().collect();

    let mut doc = read_doc(&input)?;
    let replayed =
        Orchestrator::new().replay(&wf, &mut doc, &prior_doc, &prior_trace, &dirty, proof)?;
    eprintln!(
        "replayed {} call(s): cone {}, reused {}, recomputed {}, splice(s) {}",
        replayed.outcome.trace.len(),
        replayed.cone_size,
        replayed.reused,
        replayed.recomputed,
        replayed.splices,
    );
    for g in &replayed.grades {
        eprintln!(
            "  {} at t={}: grade {:.3}{}",
            g.service,
            g.time,
            g.grade,
            if g.identical { " (identical)" } else { "" }
        );
    }
    let xml = to_xml_string_pretty(&doc.view());
    match out {
        Some(path) => std::fs::write(&path, xml)
            .map_err(|e| WebLabError::io(format!("writing {path}"), e))?,
        None => emit(&format!("{xml}\n"))?,
    }
    Ok(())
}

fn cmd_infer(args: &[String]) -> CliResult {
    let mut input = None;
    let mut catalog = None;
    let mut inherit = false;
    let mut format = "table".to_string();
    let mut jobs = Parallelism::Sequential;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--inherit" => inherit = true,
            "--format" => format = it.next().ok_or("missing value for --format")?.clone(),
            "--jobs" | "-j" => {
                jobs = parse_jobs(it.next().ok_or("missing value for --jobs")?)?
            }
            other if input.is_none() => input = Some(other.to_string()),
            other if catalog.is_none() => catalog = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let input = input.ok_or("usage: weblab infer <stamped.xml> [catalog.txt] [--inherit] [--format table|turtle|provxml|dot] [--jobs N|auto]")?;
    let doc = read_doc(&input)?;
    let rules = rules_from(catalog.as_deref())?;
    let graph = build_graph(&doc, &rules, inherit, jobs);
    match format.as_str() {
        "table" => emit(&graph.to_string())?,
        "turtle" => emit(&format!("{}\n", to_turtle(&export_prov(&graph))))?,
        "provxml" => emit(&format!(
            "{}\n",
            to_xml_string_pretty(&weblab::rdf::export_prov_xml(&graph).view())
        ))?,
        "dot" => emit(&graph.to_dot())?,
        other => return Err(format!("unknown format {other:?}").into()),
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> CliResult {
    let (pos, jobs) = split_jobs(args)?;
    let input = pos.first().ok_or(
        "usage: weblab query <stamped.xml> <sparql|rank <uri>…|summary [uri]> [catalog.txt] [--jobs N|auto]",
    )?;
    // `rank` and `summary` are the v2 analytics subcommands; anything else
    // in the second slot is a SPARQL SELECT, as in v1.
    match pos.get(1).map(String::as_str) {
        Some("rank") => return cmd_query_rank(input, &pos[2..], jobs),
        Some("summary") => return cmd_query_summary(input, &pos[2..], jobs),
        _ => {}
    }
    let sparql = pos.get(1).ok_or("missing SPARQL query")?;
    let doc = read_doc(input)?;
    let rules = rules_from(pos.get(2).map(String::as_str))?;
    let graph = build_graph(&doc, &rules, false, jobs);
    // same dispatch enum the serve protocol uses — one query path, two
    // front-ends
    let query = ProvQuery::Sparql {
        query: sparql.clone(),
    };
    let QueryAnswer::Solutions(solutions) = query.answer_on_graph(&graph)? else {
        unreachable!("sparql queries answer with solutions");
    };
    let mut rendered = String::new();
    for sol in &solutions {
        let row: Vec<String> = sol.iter().map(|(k, v)| format!("?{k} = {v}")).collect();
        rendered.push_str(&row.join("  "));
        rendered.push('\n');
    }
    emit(&rendered)?;
    eprintln!("{} solution(s)", solutions.len());
    Ok(())
}

/// Parse a CLI fraction flag into micro-units, bounded by `max`.
fn micro_flag(flag: &str, value: &str, max: f64) -> Result<u32, WebLabError> {
    let f: f64 = value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))?;
    micro_from_f64(f, max)
        .map(|m| m as u32)
        .ok_or_else(|| format!("{flag} must be a number in [0, {max}], got {value:?}").into())
}

fn cmd_query_rank(input: &str, args: &[String], jobs: Parallelism) -> CliResult {
    let mut uris = Vec::new();
    let mut direction = RankDirection::Up;
    let mut opts = QueryOpts::default();
    let mut weights: Vec<(String, u32)> = Vec::new();
    let mut catalog = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--direction" => {
                let v = it.next().ok_or("missing value for --direction")?;
                direction = RankDirection::parse(v).ok_or_else(|| {
                    format!("--direction expects \"up\" or \"down\", got {v:?}")
                })?;
            }
            "--limit" => {
                let v = it.next().ok_or("missing value for --limit")?;
                opts.limit = v
                    .parse()
                    .map_err(|_| format!("--limit expects a count, got {v:?}"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("missing value for --budget")?;
                opts.budget = v
                    .parse()
                    .map_err(|_| format!("--budget expects a count, got {v:?}"))?;
            }
            "--decay" => {
                let v = it.next().ok_or("missing value for --decay")?;
                opts.decay_micro = micro_flag("--decay", v, 1.0)?;
            }
            "--weight" => {
                let v = it.next().ok_or("missing value for --weight")?;
                let (svc, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--weight expects Service=F, got {v:?}"))?;
                weights.push((svc.to_string(), micro_flag("--weight", val, 1000.0)?));
            }
            "--catalog" => catalog = Some(it.next().ok_or("missing value for --catalog")?.clone()),
            other => uris.push(other.to_string()),
        }
    }
    if uris.is_empty() {
        return Err("usage: weblab query <stamped.xml> rank <uri>… [--direction up|down] [--limit N] [--budget N] [--decay F] [--weight Service=F] [--catalog FILE] [--jobs N|auto]".into());
    }
    let doc = read_doc(input)?;
    let rules = rules_from(catalog.as_deref())?;
    let graph = build_graph(&doc, &rules, false, jobs);
    let query = ProvQuery::Rank { uris, direction, opts, weights };
    let QueryAnswer::Ranked(entries) = query.answer_on_graph(&graph)? else {
        unreachable!("rank queries answer with ranked entries");
    };
    let mut rendered = String::new();
    for e in &entries {
        rendered.push_str(&format!(
            "{}  hop {}  {}\n",
            format_micro(e.score_micro),
            e.hop,
            e.uri
        ));
    }
    emit(&rendered)?;
    eprintln!("{} ranked resource(s)", entries.len());
    Ok(())
}

fn cmd_query_summary(input: &str, args: &[String], jobs: Parallelism) -> CliResult {
    let mut uri = None;
    let mut catalog = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--catalog" => catalog = Some(it.next().ok_or("missing value for --catalog")?.clone()),
            other if uri.is_none() => uri = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let doc = read_doc(input)?;
    let rules = rules_from(catalog.as_deref())?;
    let graph = build_graph(&doc, &rules, false, jobs);
    let query = ProvQuery::Summary { uri };
    let QueryAnswer::Summary(s) = query.answer_on_graph(&graph)? else {
        unreachable!("summary queries answer with a graph summary");
    };
    let mut out = format!("{} resource(s), {} edge(s)\n", s.resources, s.edges);
    out.push_str(&format!("services ({}):\n", s.services.len()));
    for svc in &s.services {
        out.push_str(&format!(
            "  {}: {} resource(s), influence {}, origins {}\n",
            svc.service, svc.resources, svc.influence, svc.origins
        ));
    }
    out.push_str(&format!("origin clusters ({}):\n", s.clusters.len()));
    for c in &s.clusters {
        out.push_str(&format!("  {} reaches {} resource(s)\n", c.root, c.size));
    }
    if let Some(b) = &s.blast {
        out.push_str(&format!(
            "blast radius of {}: {} impacted, {} origin(s)\n",
            b.uri, b.impacted, b.origins
        ));
    }
    emit(&out)
}

fn cmd_why(args: &[String]) -> CliResult {
    let (pos, jobs) = split_jobs(args)?;
    let input = pos
        .first()
        .ok_or("usage: weblab why <stamped.xml> <resource-uri> [catalog.txt] [--jobs N|auto]")?;
    let uri = pos.get(1).ok_or("missing resource uri")?;
    let doc = read_doc(input)?;
    let rules = rules_from(pos.get(2).map(String::as_str))?;
    let graph = build_graph(&doc, &rules, true, jobs);
    let query = ProvQuery::Why {
        uri: uri.to_string(),
    };
    let QueryAnswer::Why(w) = query.answer_on_graph(&graph)? else {
        unreachable!("why queries answer with a why-provenance subgraph");
    };
    let mut out = format!("why-provenance of {uri}:\n");
    out.push_str(&format!("  resources ({}):\n", w.resources.len()));
    for r in &w.resources {
        out.push_str(&format!("    {r}\n"));
    }
    out.push_str(&format!("  links ({}):\n", w.links.len()));
    for l in &w.links {
        out.push_str(&format!("    {l}\n"));
    }
    out.push_str("  calls involved:\n");
    for c in &w.calls {
        out.push_str(&format!("    {c}\n"));
    }
    emit(&out)
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut port: u16 = 0;
    let mut workers: usize = 4;
    let mut max_rows: usize = weblab::serve::DEFAULT_MAX_ROWS;
    let mut max_batch: usize = weblab::serve::DEFAULT_MAX_BATCH;
    let mut max_conns: usize = weblab::serve::DEFAULT_MAX_CONNS;
    let mut idle_timeout = Some(weblab::serve::DEFAULT_IDLE_TIMEOUT);
    let mut store_dir: Option<String> = None;
    let mut max_resident: usize = 64;
    let mut compact_every: u64 = 5000;
    let mut catalog = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => store_dir = Some(it.next().ok_or("missing value for --store")?.clone()),
            "--max-resident" => {
                let v = it.next().ok_or("missing value for --max-resident")?;
                max_resident = v
                    .parse()
                    .map_err(|_| format!("--max-resident expects an execution count, got {v:?}"))?;
            }
            "--compact-every" => {
                let v = it.next().ok_or("missing value for --compact-every")?;
                compact_every = v.parse().map_err(|_| {
                    format!("--compact-every expects milliseconds (0 disables), got {v:?}")
                })?;
            }
            "--port" => {
                let v = it.next().ok_or("missing value for --port")?;
                port = v
                    .parse()
                    .map_err(|_| format!("--port expects a port number, got {v:?}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("missing value for --workers")?;
                workers = v
                    .parse()
                    .map_err(|_| format!("--workers expects a thread count, got {v:?}"))?;
            }
            "--max-rows" => {
                let v = it.next().ok_or("missing value for --max-rows")?;
                max_rows = v
                    .parse()
                    .map_err(|_| format!("--max-rows expects a row count, got {v:?}"))?;
            }
            "--max-batch" => {
                let v = it.next().ok_or("missing value for --max-batch")?;
                max_batch = v
                    .parse()
                    .map_err(|_| format!("--max-batch expects a sub-request count, got {v:?}"))?;
            }
            "--max-conns" => {
                let v = it.next().ok_or("missing value for --max-conns")?;
                max_conns = v
                    .parse()
                    .map_err(|_| format!("--max-conns expects a connection count, got {v:?}"))?;
            }
            "--idle-timeout" => {
                let v = it.next().ok_or("missing value for --idle-timeout")?;
                let millis: u64 = v.parse().map_err(|_| {
                    format!("--idle-timeout expects milliseconds (0 disables), got {v:?}")
                })?;
                idle_timeout = (millis > 0).then(|| std::time::Duration::from_millis(millis));
            }
            other if catalog.is_none() => catalog = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let rules = rules_from(catalog.as_deref())?;
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Translator::default()),
        Box::new(Tokeniser),
        Box::new(EntityExtractor),
        Box::new(SentimentAnalyser),
        Box::new(KeywordExtractor),
        Box::new(Summariser),
        Box::new(Indexer),
        Box::new(OcrExtractor),
        Box::new(SpeechTranscriber),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs)?;
    }
    if let Some(dir) = &store_dir {
        let store = weblab::platform::ProvStore::open(dir).map_err(WebLabError::from)?;
        platform.attach_store(store, max_resident.max(1))?;
        eprintln!("store attached at {dir} (max {max_resident} resident)");
    }
    let platform = Arc::new(platform);
    if store_dir.is_some() && compact_every > 0 {
        // Background compactor: periodically seal delta files into
        // segments and fold old segments together. Detached — it dies
        // with the process after the serve loop returns.
        let compactor = Arc::clone(&platform);
        let every = std::time::Duration::from_millis(compact_every);
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if let Some(store) = compactor.store() {
                if let Err(e) = store.compact_all() {
                    eprintln!("store compaction failed: {e}");
                }
            }
        });
    }
    let server = Server::bind(platform, &format!("127.0.0.1:{port}"))
        .map_err(|e| WebLabError::io(format!("binding 127.0.0.1:{port}"), e))?
        .max_rows(max_rows)
        .max_batch(max_batch)
        .max_conns(max_conns)
        .idle_timeout(idle_timeout);
    let addr = server
        .local_addr()
        .map_err(|e| WebLabError::io("reading the bound address", e))?;
    // stdout so scripts (and ci.sh) can scrape the ephemeral port
    emit(&format!("listening on {addr}\n"))?;
    eprintln!("weblab serve: {workers} worker(s); send {{\"op\":\"shutdown\"}} to stop");
    server
        .run(workers)
        .map_err(|e| WebLabError::io("serving", e))
}

fn cmd_services() -> CliResult {
    let rules = services::default_rules();
    let mut out = String::from("built-in services and their mapping rules M(s):\n");
    for s in rules.services() {
        out.push_str(&format!("  {s}\n"));
        for r in rules.rules_for(s) {
            out.push_str(&format!("    rule: {r}\n"));
        }
    }
    emit(&out)
}
