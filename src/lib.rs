//! # weblab — facade crate for the WebLab PROV reproduction
//!
//! Re-exports every subsystem of the reproduction of *"WebLab PROV:
//! Computing fine-grained provenance links for XML artifacts"* (EDBT 2013)
//! under one roof, so that examples and downstream users can depend on a
//! single crate:
//!
//! * [`xml`] — WebLab documents: append-only XML trees, states, diff.
//! * [`xpath`] — Core-XPath patterns with variable bindings and embeddings.
//! * [`prov`] — mapping rules, provenance graphs, evaluation strategies
//!   (the paper's core contribution).
//! * [`xquery`] — FLWOR-subset engine and the rule → XQuery compiler.
//! * [`rdf`] — triple store, PROV-O export, Turtle, SPARQL-lite.
//! * [`workflow`] — black-box services, orchestrator, execution traces.
//! * [`platform`] — the Figure 5 architecture (Recorder / Mapper / Request
//!   Manager).
//! * [`obs`] — in-tree observability: engine counters, span timers and
//!   snapshot reports (`weblab --metrics`).
//!
//! The façade also hosts the daemon layer built on top of the subsystems:
//!
//! * [`error`] — the unified [`error::WebLabError`] with stable
//!   machine-readable codes shared by the CLI and the serve protocol.
//! * [`json`] — the dependency-free, deterministic JSON used by the
//!   line-delimited serve protocol.
//! * [`serve`] — the `weblab serve` provenance query service: a TCP
//!   daemon answering `why`/`lineage`/`sparql`/… requests from published
//!   reachability-index snapshots, concurrently with live ingestion.
//!
//! See the `examples/` directory for end-to-end walkthroughs, starting with
//! `quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod json;
pub mod serve;

pub use weblab_obs as obs;
pub use weblab_platform as platform;
pub use weblab_prov as prov;
pub use weblab_rdf as rdf;
pub use weblab_workflow as workflow;
pub use weblab_xml as xml;
pub use weblab_xpath as xpath;
pub use weblab_xquery as xquery;
