//! The unified top-level error of the `weblab` façade.
//!
//! Every subsystem error funnels into [`WebLabError`] through `From`
//! impls, and each variant carries a **stable machine-readable code**
//! ([`WebLabError::code`]) — the `code` field of the serve protocol's
//! error responses and the `error[{code}]:` prefix the CLI prints. Codes
//! are part of the wire contract: clients match on them, so they never
//! change even when the human-readable messages do.

use std::fmt;

use weblab_platform::persist::PersistError;
use weblab_platform::PlatformError;
use weblab_rdf::SparqlError;

/// Top-level failure of any `weblab` entry point (CLI command or serve
/// request).
#[derive(Debug)]
pub enum WebLabError {
    /// A platform operation failed (execution, materialisation, catalog…).
    Platform(PlatformError),
    /// Persistence (checkpoint/link-store/trace files) failed.
    Persist(PersistError),
    /// An XML document failed to parse.
    Xml(weblab_xml::Error),
    /// A SPARQL query failed to parse.
    Sparql(SparqlError),
    /// A filesystem operation failed; `context` names what was attempted.
    Io {
        /// What was being done, e.g. `reading corpus.xml`.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A SPARQL result exceeded the daemon's configured row cap.
    ResultLimit {
        /// Rows the query produced.
        rows: usize,
        /// The configured cap (`--max-rows`).
        max: usize,
    },
    /// A `batch` request carried more sub-requests than the daemon allows.
    BatchLimit {
        /// Sub-requests the batch carried.
        size: usize,
        /// The configured cap (`--max-batch`).
        max: usize,
    },
    /// The daemon shed this request under overload (admission control).
    Overloaded {
        /// Requests already queued or in flight when this one arrived.
        depth: usize,
        /// The configured queue-depth cap.
        cap: usize,
    },
    /// A protocol line exceeded the maximum line length.
    LineLimit {
        /// The configured cap in bytes (`Server::max_line`).
        max: usize,
    },
    /// The connection sat idle past the read timeout.
    IdleTimeout {
        /// The configured timeout, in milliseconds.
        millis: u64,
    },
    /// A serve request was malformed (bad JSON, missing field, unknown op).
    Protocol(String),
    /// The command line was malformed.
    Usage(String),
}

impl WebLabError {
    /// Attach a context string to an I/O error.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        WebLabError::Io {
            context: context.into(),
            source,
        }
    }

    /// The stable machine-readable code of this error — what the serve
    /// protocol puts in the `code` field.
    pub fn code(&self) -> &'static str {
        match self {
            WebLabError::Platform(PlatformError::UnknownExecution(_)) => "unknown-execution",
            WebLabError::Platform(PlatformError::UnknownService(_)) => "unknown-service",
            WebLabError::Platform(PlatformError::Catalog(_)) => "catalog",
            WebLabError::Platform(PlatformError::Workflow(_)) => "workflow",
            WebLabError::Platform(PlatformError::Recorder(_)) => "recorder",
            WebLabError::Platform(PlatformError::Mapper(_)) => "mapper",
            WebLabError::Platform(PlatformError::Sparql(_)) | WebLabError::Sparql(_) => "sparql",
            WebLabError::Persist(PersistError::StoreLocked { .. })
            | WebLabError::Platform(PlatformError::Store(PersistError::StoreLocked {
                ..
            })) => "store-locked",
            WebLabError::Platform(PlatformError::Store(_)) => "store",
            WebLabError::Persist(_) => "persist",
            WebLabError::Xml(_) => "xml",
            WebLabError::Io { .. } => "io",
            WebLabError::ResultLimit { .. } => "result-limit",
            WebLabError::BatchLimit { .. } => "batch-limit",
            WebLabError::Overloaded { .. } => "overloaded",
            WebLabError::LineLimit { .. } => "line-limit",
            WebLabError::IdleTimeout { .. } => "idle-timeout",
            WebLabError::Protocol(_) => "protocol",
            WebLabError::Usage(_) => "usage",
        }
    }
}

impl fmt::Display for WebLabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebLabError::Platform(e) => write!(f, "{e}"),
            WebLabError::Persist(e) => write!(f, "{e}"),
            WebLabError::Xml(e) => write!(f, "{e}"),
            WebLabError::Sparql(e) => write!(f, "{e}"),
            WebLabError::Io { context, source } => write!(f, "{context}: {source}"),
            WebLabError::ResultLimit { rows, max } => write!(
                f,
                "sparql result has {rows} rows, over the {max}-row cap; \
                 add a LIMIT or raise --max-rows"
            ),
            WebLabError::BatchLimit { size, max } => write!(
                f,
                "batch carries {size} sub-requests, over the {max}-request cap; \
                 split the batch or raise --max-batch"
            ),
            WebLabError::Overloaded { depth, cap } => write!(
                f,
                "request shed: {depth} requests already queued (cap {cap}); retry later"
            ),
            WebLabError::LineLimit { max } => write!(
                f,
                "request line exceeds the {max}-byte limit"
            ),
            WebLabError::IdleTimeout { millis } => write!(
                f,
                "connection idle past the {millis} ms read timeout"
            ),
            WebLabError::Protocol(m) => write!(f, "{m}"),
            WebLabError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WebLabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebLabError::Platform(e) => Some(e),
            WebLabError::Persist(e) => Some(e),
            WebLabError::Xml(e) => Some(e),
            WebLabError::Sparql(e) => Some(e),
            WebLabError::Io { source, .. } => Some(source),
            WebLabError::ResultLimit { .. }
            | WebLabError::BatchLimit { .. }
            | WebLabError::Overloaded { .. }
            | WebLabError::LineLimit { .. }
            | WebLabError::IdleTimeout { .. }
            | WebLabError::Protocol(_)
            | WebLabError::Usage(_) => None,
        }
    }
}

impl From<PlatformError> for WebLabError {
    fn from(e: PlatformError) -> Self {
        WebLabError::Platform(e)
    }
}

impl From<PersistError> for WebLabError {
    fn from(e: PersistError) -> Self {
        WebLabError::Persist(e)
    }
}

impl From<weblab_xml::Error> for WebLabError {
    fn from(e: weblab_xml::Error) -> Self {
        WebLabError::Xml(e)
    }
}

impl From<SparqlError> for WebLabError {
    fn from(e: SparqlError) -> Self {
        WebLabError::Sparql(e)
    }
}

impl From<weblab_workflow::WorkflowError> for WebLabError {
    fn from(e: weblab_workflow::WorkflowError) -> Self {
        WebLabError::Platform(PlatformError::Workflow(e))
    }
}

/// `&str` usage messages (`"missing value for -o"`) become [`WebLabError::Usage`].
impl From<&str> for WebLabError {
    fn from(m: &str) -> Self {
        WebLabError::Usage(m.to_string())
    }
}

/// `format!`-built usage messages become [`WebLabError::Usage`].
impl From<String> for WebLabError {
    fn from(m: String) -> Self {
        WebLabError::Usage(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_per_variant() {
        assert_eq!(
            WebLabError::from(PlatformError::UnknownExecution("e".into())).code(),
            "unknown-execution"
        );
        assert_eq!(
            WebLabError::from(PlatformError::UnknownService("s".into())).code(),
            "unknown-service"
        );
        assert_eq!(WebLabError::Protocol("bad".into()).code(), "protocol");
        assert_eq!(
            WebLabError::ResultLimit { rows: 11, max: 10 }.code(),
            "result-limit"
        );
        assert_eq!(
            WebLabError::BatchLimit { size: 9, max: 8 }.code(),
            "batch-limit"
        );
        assert_eq!(
            WebLabError::Overloaded { depth: 4, cap: 4 }.code(),
            "overloaded"
        );
        assert_eq!(WebLabError::LineLimit { max: 1024 }.code(), "line-limit");
        assert_eq!(
            WebLabError::IdleTimeout { millis: 200 }.code(),
            "idle-timeout"
        );
        assert_eq!(WebLabError::from("usage").code(), "usage");
        let locked = PersistError::StoreLocked {
            path: "/tmp/store".into(),
            pid: 7,
        };
        assert_eq!(WebLabError::from(locked).code(), "store-locked");
        let wrapped = PersistError::StoreLocked {
            path: "/tmp/store".into(),
            pid: 7,
        };
        assert_eq!(
            WebLabError::from(PlatformError::Store(wrapped)).code(),
            "store-locked"
        );
        assert_eq!(
            WebLabError::io("reading x", std::io::Error::other("boom")).code(),
            "io"
        );
    }

    #[test]
    fn sparql_code_is_shared_between_direct_and_platform_wrapped() {
        let direct = match weblab_rdf::parse_select("SELEKT") {
            Err(e) => WebLabError::from(e),
            Ok(_) => panic!("expected parse failure"),
        };
        let wrapped = match weblab_rdf::parse_select("SELEKT") {
            Err(e) => WebLabError::from(PlatformError::from(e)),
            Ok(_) => panic!("expected parse failure"),
        };
        assert_eq!(direct.code(), "sparql");
        assert_eq!(wrapped.code(), "sparql");
    }

    #[test]
    fn display_preserves_the_underlying_message() {
        let e = WebLabError::io("reading f.xml", std::io::Error::other("no such file"));
        let msg = e.to_string();
        assert!(msg.contains("reading f.xml"));
        assert!(msg.contains("no such file"));
    }
}
