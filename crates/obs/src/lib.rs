//! # weblab-obs — in-tree observability for the WebLab PROV engine
//!
//! Offline, std-only metrics and span tracing, following the workspace's
//! `criterion`/`proptest` shim philosophy: no registry dependencies, the
//! whole layer is carried in-tree. It provides
//!
//! * [`Counter`] — monotone `u64` event counters,
//! * [`Gauge`] — signed instantaneous values (e.g. in-flight spans),
//! * [`Histogram`] — `u64` value distributions over power-of-two buckets
//!   (used both for durations in nanoseconds and for sizes in nodes/links),
//! * [`Span`] — RAII timers recording their elapsed time into a histogram
//!   and tracking an optional in-flight gauge,
//! * [`Snapshot`] — a stable, name-sorted capture of every registered
//!   metric, renderable as machine-readable JSON or a human table.
//!
//! ## Cost model
//!
//! Collection is **off by default**. Every metric operation first loads one
//! process-global relaxed [`AtomicBool`]; when collection is disabled that
//! load-and-branch is the entire cost, so instrumented hot paths (pattern
//! evaluation, per-node candidate visits) stay within noise of the
//! uninstrumented build. When enabled, counters are single relaxed
//! `fetch_add`s and histograms a handful of them.
//!
//! ## Registration
//!
//! Metrics are `static`s that register themselves in the global registry on
//! first touch (Rust has no life-before-main), so a snapshot lists exactly
//! the metrics the run exercised. Dynamically named metrics (per-service
//! timings) are interned once and leaked — the set of service names is
//! small and bounded.
//!
//! ## Determinism
//!
//! Over the deterministic inference engine, event counters are themselves
//! deterministic — the same workload produces the *exact* same counter
//! values at any worker count — which makes snapshots assertable in tests
//! (see `tests/metrics_golden.rs`): the observability layer doubles as a
//! correctness oracle in the spirit of execution traces in *Provenance
//! Traces* (Cheney et al.). Durations are wall-clock and excluded from such
//! assertions; histogram *counts* and size-histogram sums are fair game.
//!
//! ```
//! use weblab_obs as obs;
//!
//! static LOOKUPS: obs::Counter = obs::Counter::new("example.lookups");
//!
//! obs::enable();
//! LOOKUPS.add(3);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("example.lookups"), 3);
//! obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod snapshot;
mod span;

pub use metric::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{counter, gauge, histogram};
pub use snapshot::{snapshot, HistogramSnapshot, Snapshot};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-global collection switch. Relaxed ordering is sufficient:
/// metrics tolerate a stale read for a few operations around a toggle, and
/// tests that assert exact values enable collection before running the
/// measured workload.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric collection on for the whole process.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metric collection off (metrics keep their accumulated values).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is collection currently enabled? This is the single relaxed-atomic
/// branch every metric operation pays when disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every registered metric (they stay registered). Intended for tests
/// and for the CLI's per-invocation report; concurrent mutation during a
/// reset is not an error, merely attributed to one side or the other.
pub fn reset() {
    registry::for_each(|m| m.reset());
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! The obs unit tests mutate process-global state (the enable flag and
    //! the registered metrics); this lock serialises them.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new("lib.test.counter");

    #[test]
    fn disabled_operations_are_dropped() {
        let _g = test_lock::hold();
        disable();
        C.inc();
        assert_eq!(C.get(), 0);
        enable();
        C.inc();
        C.add(4);
        assert_eq!(C.get(), 5);
        disable();
        C.inc();
        assert_eq!(C.get(), 5);
        C.reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = test_lock::hold();
        enable();
        C.add(7);
        reset();
        assert_eq!(C.get(), 0);
        assert_eq!(snapshot().counter("lib.test.counter"), 0);
        disable();
    }
}
