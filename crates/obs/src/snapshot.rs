//! Stable snapshots of the registry, renderable as JSON or a human table.
//!
//! Snapshots are *sorted by metric name* (`BTreeMap`s all the way down), so
//! two captures of the same state render byte-identically — the property
//! the golden counter tests and the CI report check rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{self, MetricRef};

/// Captured state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Power-of-two bucket counts, trailing zero buckets trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An upper-bound estimate of the `q`-quantile (`0.0..=1.0`) of the
    /// recorded distribution, derived from the power-of-two buckets: the
    /// smallest bucket whose cumulative count reaches `q · count`
    /// contributes its upper edge (`2^(i+1) − 1`), clamped into
    /// `[min, max]`. Good to within one octave — the resolution latency
    /// reporting needs (p50/p99/p999 in the `BENCH_*` snapshots), without
    /// storing raw samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A name-sorted capture of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Capture the current state of every registered metric.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    registry::for_each(|m| match m {
        MetricRef::Counter(c) => {
            snap.counters.insert(c.name().to_string(), c.get());
        }
        MetricRef::Gauge(g) => {
            snap.gauges.insert(g.name().to_string(), g.get());
        }
        MetricRef::Histogram(h) => {
            let (count, sum, min, max) = h.stats();
            let mut buckets: Vec<u64> = h.bucket_counts().to_vec();
            while buckets.last() == Some(&0) {
                buckets.pop();
            }
            snap.histograms.insert(
                h.name().to_string(),
                HistogramSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            );
        }
    });
    snap
}

impl Snapshot {
    /// The counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counters and histogram counts/sums attributable to the interval
    /// between `baseline` and `self` (gauges are instantaneous and carried
    /// over unchanged; histogram min/max/buckets likewise, as they cannot
    /// be subtracted meaningfully).
    pub fn since(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            *v = v.saturating_sub(baseline.counter(name));
        }
        for (name, h) in &mut out.histograms {
            if let Some(b) = baseline.histogram(name) {
                h.count = h.count.saturating_sub(b.count);
                h.sum = h.sum.saturating_sub(b.sum);
            }
        }
        out
    }

    /// Machine-readable JSON: one object with sorted `counters`, `gauges`
    /// and `histograms` members. Hand-rolled (the workspace is offline and
    /// serde-free); metric names pass through the string escaper.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                escape_json(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable table, sorted by name within each section.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {name:<width$}  count={} sum={} min={} mean={} max={}",
                    h.count, h.sum, h.min, mean, h.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{Counter, Histogram};
    use crate::test_lock;

    static SNAP_A: Counter = Counter::new("snapshot.test.a");
    static SNAP_B: Counter = Counter::new("snapshot.test.b");
    static SNAP_H: Histogram = Histogram::new("snapshot.test.h");

    #[test]
    fn json_and_table_are_stable_and_sorted() {
        let _g = test_lock::hold();
        crate::enable();
        SNAP_B.add(2); // registration order ≠ name order
        SNAP_A.add(1);
        SNAP_H.record(5);
        let s1 = snapshot();
        let s2 = snapshot();
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.to_table(), s2.to_table());
        let json = s1.to_json();
        let a = json.find("snapshot.test.a").unwrap();
        let b = json.find("snapshot.test.b").unwrap();
        assert!(a < b, "counters must render in name order");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\": 1, \"sum\": 5, \"min\": 5, \"max\": 5"));
        SNAP_A.reset();
        SNAP_B.reset();
        SNAP_H.reset();
        crate::disable();
    }

    #[test]
    fn since_subtracts_counters_and_histogram_totals() {
        let _g = test_lock::hold();
        crate::enable();
        SNAP_A.reset();
        SNAP_H.reset();
        SNAP_A.add(3);
        SNAP_H.record(10);
        let base = snapshot();
        SNAP_A.add(4);
        SNAP_H.record(1);
        let diff = snapshot().since(&base);
        assert_eq!(diff.counter("snapshot.test.a"), 4);
        let h = diff.histogram("snapshot.test.h").unwrap();
        assert_eq!((h.count, h.sum), (1, 1));
        SNAP_A.reset();
        SNAP_H.reset();
        crate::disable();
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn quantiles_are_octave_accurate_upper_bounds() {
        let _g = test_lock::hold();
        crate::enable();
        SNAP_H.reset();
        // 90 fast observations (~bucket 6: 64..127) and 10 slow outliers
        // (~bucket 13: 8192..16383)
        for _ in 0..90 {
            SNAP_H.record(100);
        }
        for _ in 0..10 {
            SNAP_H.record(9000);
        }
        let snap = snapshot();
        let h = snap.histogram("snapshot.test.h").unwrap().clone();
        // p50 lands in the fast bucket, clamped below by min
        let p50 = h.quantile(0.50);
        assert!((100..=127).contains(&p50), "p50 = {p50}");
        // p99 must see the outliers; clamped above by max
        let p99 = h.quantile(0.99);
        assert!((9000..=16383).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), h.quantile(0.999));
        // empty histogram: zero, not a panic
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        SNAP_H.reset();
        crate::disable();
    }
}
