//! The metric primitives: counters, gauges and power-of-two histograms.
//!
//! Every primitive is a `const`-constructible static with a lazy
//! self-registration bit: the first touch *while collection is enabled*
//! publishes the metric to the global registry, so snapshots list exactly
//! the metrics a run exercised. All arithmetic is relaxed — metrics are
//! independent monotone accumulators, never used for synchronisation.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use crate::registry::{self, MetricRef};

/// Number of power-of-two histogram buckets: bucket `i` counts values `v`
/// with `floor(log2(max(v,1))) == i`, the last bucket absorbing the tail.
/// 40 buckets cover a dynamic range of `2^40` — nanosecond spans up to
/// ~18 minutes, node counts up to a trillion.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fresh all-zero bucket array, const so the statics can use it.
/// The interior-mutability-in-const pattern is deliberate: the const is a
/// *template* copied into each histogram, never a shared cell.
#[allow(clippy::declare_interior_mutable_const)]
const fn zero_buckets() -> [AtomicU64; HISTOGRAM_BUCKETS] {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; HISTOGRAM_BUCKETS]
}

/// A monotone event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name` (dotted lowercase, e.g. `prov.cache.hits`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// A counter the registry has already published (dynamic interning
    /// registers eagerly, so the first-touch path must not re-register).
    pub(crate) const fn new_registered(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(true),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events (no-op while collection is disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        self.ensure_registered();
    }

    /// Count one event.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register(MetricRef::Counter(self));
        }
    }
}

/// A signed instantaneous value (e.g. spans currently in flight).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// A gauge named `name`.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// See [`Counter::new_registered`].
    pub(crate) const fn new_registered(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(true),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Shift the gauge by `delta` (no-op while collection is disabled).
    #[inline]
    pub fn add(&'static self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.raw_add(delta);
        self.ensure_registered();
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&'static self) {
        self.add(-1);
    }

    /// Ungated shift — used by [`crate::Span`]'s drop path so a gauge
    /// incremented at span start is always decremented at span end, even if
    /// collection was toggled off in between (in-flight accounting must
    /// balance or the "no leaked spans" invariant would report false
    /// positives).
    #[inline]
    pub(crate) fn raw_add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register(MetricRef::Gauge(self));
        }
    }
}

/// A distribution of `u64` values over power-of-two buckets, with count,
/// sum and min/max. Used for durations (nanoseconds) and sizes (nodes,
/// links, rows).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: zero_buckets(),
            registered: AtomicBool::new(false),
        }
    }

    /// See [`Counter::new_registered`].
    pub(crate) const fn new_registered(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: zero_buckets(),
            registered: AtomicBool::new(true),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket index of `value`.
    pub fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation (no-op while collection is disabled).
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.raw_record(value);
        self.ensure_registered();
    }

    /// Ungated record — used by [`crate::Span`]'s drop path (the gating
    /// decision was taken at span start).
    #[inline]
    pub(crate) fn raw_record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register(MetricRef::Histogram(self));
        }
    }

    /// `(count, sum, min, max)`; min/max are 0 when nothing was recorded.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return (0, 0, 0, 0);
        }
        (
            count,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Clear every cell.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    static H: Histogram = Histogram::new("metric.test.hist");
    static G: Gauge = Gauge::new("metric.test.gauge");

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_accumulates() {
        let _g = test_lock::hold();
        crate::enable();
        H.reset();
        for v in [1u64, 2, 2, 9] {
            H.record(v);
        }
        let (count, sum, min, max) = H.stats();
        assert_eq!((count, sum, min, max), (4, 14, 1, 9));
        let buckets = H.bucket_counts();
        assert_eq!(buckets[0], 1); // 1
        assert_eq!(buckets[1], 2); // 2, 2
        assert_eq!(buckets[3], 1); // 9
        H.reset();
        assert_eq!(H.stats(), (0, 0, 0, 0));
        crate::disable();
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _g = test_lock::hold();
        crate::enable();
        G.reset();
        G.inc();
        G.inc();
        G.dec();
        assert_eq!(G.get(), 1);
        G.add(-1);
        assert_eq!(G.get(), 0);
        crate::disable();
    }
}
