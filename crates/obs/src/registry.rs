//! The global metric registry: self-registered statics plus interned
//! dynamically named metrics.
//!
//! Statics push themselves here on first touch (see [`crate::metric`]).
//! Dynamic names — per-service timers whose names are only known at run
//! time — are interned through [`counter`]/[`gauge`]/[`histogram`]: the
//! first request for a name leaks one allocation and returns a `&'static`
//! handle, subsequent requests hit the intern table. Leaking is deliberate
//! and bounded: the dynamic name set is the service vocabulary of the
//! process, a few dozen entries at most.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metric::{Counter, Gauge, Histogram};

/// A reference to any registered metric.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MetricRef {
    /// A counter.
    Counter(&'static Counter),
    /// A gauge.
    Gauge(&'static Gauge),
    /// A histogram.
    Histogram(&'static Histogram),
}

impl MetricRef {
    pub(crate) fn reset(&self) {
        match self {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());
static INTERNED: Mutex<BTreeMap<&'static str, MetricRef>> = Mutex::new(BTreeMap::new());

pub(crate) fn register(m: MetricRef) {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).push(m);
}

/// Visit every registered metric.
pub(crate) fn for_each(mut f: impl FnMut(&MetricRef)) {
    let metrics = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for m in metrics.iter() {
        f(m);
    }
}

fn interned(name: &str, make: impl FnOnce(&'static str) -> MetricRef) -> MetricRef {
    let mut table = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = table.get(name) {
        return *m;
    }
    let leaked: &'static str = String::leak(name.to_string());
    let m = make(leaked);
    table.insert(leaked, m);
    drop(table);
    register(m);
    m
}

/// The dynamically named counter `name`, interned on first request.
pub fn counter(name: &str) -> &'static Counter {
    match interned(name, |n| {
        MetricRef::Counter(Box::leak(Box::new(Counter::new_registered(n))))
    }) {
        MetricRef::Counter(c) => c,
        other => panic!("metric {name:?} already registered as {other:?}, not a counter"),
    }
}

/// The dynamically named gauge `name`, interned on first request.
pub fn gauge(name: &str) -> &'static Gauge {
    match interned(name, |n| {
        MetricRef::Gauge(Box::leak(Box::new(Gauge::new_registered(n))))
    }) {
        MetricRef::Gauge(g) => g,
        other => panic!("metric {name:?} already registered as {other:?}, not a gauge"),
    }
}

/// The dynamically named histogram `name`, interned on first request.
pub fn histogram(name: &str) -> &'static Histogram {
    match interned(name, |n| {
        MetricRef::Histogram(Box::leak(Box::new(Histogram::new_registered(n))))
    }) {
        MetricRef::Histogram(h) => h,
        other => panic!("metric {name:?} already registered as {other:?}, not a histogram"),
    }
}

#[cfg(test)]
mod tests {
    use crate::test_lock;

    #[test]
    fn interned_handles_are_stable() {
        let _g = test_lock::hold();
        crate::enable();
        let a = super::counter("registry.test.dyn");
        let b = super::counter("registry.test.dyn");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(crate::snapshot().counter("registry.test.dyn"), 5);
        a.reset();
        crate::disable();
    }

    #[test]
    fn distinct_names_are_distinct_metrics() {
        let _g = test_lock::hold();
        crate::enable();
        let a = super::histogram("registry.test.h1");
        let b = super::histogram("registry.test.h2");
        a.record(1);
        assert_eq!(a.stats().0, 1);
        assert_eq!(b.stats().0, 0);
        a.reset();
        crate::disable();
    }
}
