//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and its drop and
//! records it (in nanoseconds) into a [`Histogram`]; an optional [`Gauge`]
//! tracks how many spans are currently in flight. Because the recording
//! happens in `Drop`, spans balance on *every* exit path — early returns
//! and `?`-propagated errors included — which is what makes the "no leaked
//! in-flight spans after a failure" invariant testable.
//!
//! When collection is disabled at span creation the span is fully inert
//! (no clock read, no atomics); the enable decision is latched at creation
//! so a toggle mid-span cannot unbalance the in-flight gauge.

use std::time::Instant;

use crate::metric::{Gauge, Histogram};

/// A running span; drop it to record.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    live: Option<Live>,
}

#[derive(Debug)]
struct Live {
    hist: &'static Histogram,
    inflight: Option<&'static Gauge>,
    start: Instant,
}

impl Span {
    /// Start a span recording into `hist` on drop.
    pub fn start(hist: &'static Histogram) -> Span {
        Self::start_with_inflight_opt(hist, None)
    }

    /// Start a span that additionally keeps `inflight` incremented for its
    /// lifetime.
    pub fn start_with_inflight(hist: &'static Histogram, inflight: &'static Gauge) -> Span {
        Self::start_with_inflight_opt(hist, Some(inflight))
    }

    fn start_with_inflight_opt(
        hist: &'static Histogram,
        inflight: Option<&'static Gauge>,
    ) -> Span {
        if !crate::enabled() {
            return Span { live: None };
        }
        if let Some(g) = inflight {
            // Ungated: the recording decision is latched here, and the
            // matching decrement in `Drop` is ungated too.
            g.raw_add(1);
            g.ensure_registered();
        }
        Span {
            live: Some(Live {
                hist,
                inflight,
                start: Instant::now(),
            }),
        }
    }

    /// Is this span actually recording (collection was enabled when it
    /// started)?
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Raw (ungated) recording: the gating decision was taken at start,
        // and a gauge incremented then must be decremented now.
        live.hist.raw_record(elapsed_ns);
        live.hist.ensure_registered();
        if let Some(g) = live.inflight {
            g.raw_add(-1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    static SPAN_H: Histogram = Histogram::new("span.test.seconds");
    static SPAN_G: Gauge = Gauge::new("span.test.inflight");

    #[test]
    fn span_records_once_and_balances_gauge() {
        let _guard = test_lock::hold();
        crate::enable();
        SPAN_H.reset();
        SPAN_G.reset();
        {
            let span = Span::start_with_inflight(&SPAN_H, &SPAN_G);
            assert!(span.is_recording());
            assert_eq!(SPAN_G.get(), 1);
        }
        assert_eq!(SPAN_G.get(), 0);
        assert_eq!(SPAN_H.stats().0, 1);
        crate::disable();
    }

    #[test]
    fn gauge_balances_across_error_paths() {
        let _guard = test_lock::hold();
        crate::enable();
        SPAN_H.reset();
        SPAN_G.reset();
        fn faillible(fail: bool) -> Result<(), ()> {
            let _span = Span::start_with_inflight(&SPAN_H, &SPAN_G);
            if fail {
                return Err(());
            }
            Ok(())
        }
        assert!(faillible(true).is_err());
        assert!(faillible(false).is_ok());
        assert_eq!(SPAN_G.get(), 0);
        assert_eq!(SPAN_H.stats().0, 2);
        crate::disable();
    }

    #[test]
    fn disabled_spans_are_inert_even_if_enabled_mid_flight() {
        let _guard = test_lock::hold();
        crate::disable();
        SPAN_H.reset();
        SPAN_G.reset();
        let span = Span::start_with_inflight(&SPAN_H, &SPAN_G);
        assert!(!span.is_recording());
        crate::enable();
        drop(span);
        assert_eq!(SPAN_G.get(), 0);
        assert_eq!(SPAN_H.stats().0, 0);
        crate::disable();
    }
}
