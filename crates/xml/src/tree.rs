//! Arena-based ordered node-labelled trees.
//!
//! The tree domain `D` of the paper: ordered ranked trees over an infinite
//! domain of labelled nodes `N`. Nodes live in a flat arena and are addressed
//! by [`NodeId`]; allocation order doubles as document order of creation,
//! which the append-only model turns into a cheap state-versioning scheme
//! (see [`crate::Document`]).

use std::fmt;

/// Identifier of a node within one [`crate::Document`]'s arena.
///
/// Ids are dense, start at `0` (the root) and increase in allocation order.
/// Because WebLab documents are append-only, `a < b` implies node `a` was
/// created no later than node `b`, and a *document state* is simply the set
/// of nodes below a high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Numeric index of the node in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a node id from a raw index.
    ///
    /// Only meaningful together with the document that produced the index;
    /// mostly useful for tests and for deserialising traces.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The label of a node: an element with a tag name, or a text leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node, e.g. `<TextMediaUnit>`.
    Element {
        /// Tag name of the element.
        name: String,
    },
    /// A text node.
    Text {
        /// Character content.
        value: String,
    },
}

impl NodeKind {
    /// Tag name if this is an element.
    #[inline]
    pub fn element_name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name } => Some(name),
            NodeKind::Text { .. } => None,
        }
    }

    /// Text content if this is a text node.
    #[inline]
    pub fn text_value(&self) -> Option<&str> {
        match self {
            NodeKind::Text { value } => Some(value),
            NodeKind::Element { .. } => None,
        }
    }
}

/// A single node of the arena: label, explicit attributes, and links.
///
/// Attributes are stored as an ordered small vector of `(name, value)` pairs;
/// WebLab elements carry very few explicit attributes (typically just `id`),
/// so linear scans beat hashing here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) attrs: Vec<(String, String)>,
}

impl Node {
    /// The node's label.
    #[inline]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Parent node, `None` for the root (or a detached fragment root).
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child ids in document order.
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Explicit attributes in insertion order.
    #[inline]
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// Value of the explicit attribute `name`, if present.
    #[inline]
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Element tag name; `None` for text nodes.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.kind.element_name()
    }

    /// Whether this node is an element.
    #[inline]
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }
}

/// The raw arena. Wrapped by [`crate::Document`], which layers resource
/// metadata and state marks on top.
#[derive(Debug, Clone, Default)]
pub(crate) struct Arena {
    pub(crate) nodes: Vec<Node>,
}

impl Arena {
    pub(crate) fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
        });
        id
    }

    #[inline]
    pub(crate) fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.index())
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_dense_and_ordered() {
        let mut arena = Arena::default();
        let a = arena.alloc(NodeKind::Element { name: "a".into() });
        let b = arena.alloc(NodeKind::Text { value: "t".into() });
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert!(a < b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn attr_lookup_is_by_name() {
        let mut arena = Arena::default();
        let a = arena.alloc(NodeKind::Element { name: "a".into() });
        arena
            .get_mut(a)
            .unwrap()
            .attrs
            .push(("lang".into(), "fr".into()));
        assert_eq!(arena.get(a).unwrap().attr("lang"), Some("fr"));
        assert_eq!(arena.get(a).unwrap().attr("id"), None);
    }

    #[test]
    fn kind_accessors() {
        let e = NodeKind::Element { name: "x".into() };
        let t = NodeKind::Text { value: "v".into() };
        assert_eq!(e.element_name(), Some("x"));
        assert_eq!(e.text_value(), None);
        assert_eq!(t.element_name(), None);
        assert_eq!(t.text_value(), Some("v"));
    }

    #[test]
    fn display_node_id() {
        assert_eq!(NodeId(7).to_string(), "#7");
    }
}
