//! A small XML parser for WebLab documents.
//!
//! Supports the fragment of XML that WebLab payloads use: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions (skipped), and the predefined/numeric entity references.
//! Doctypes and namespaces-as-semantics are out of scope; namespace
//! prefixes are kept verbatim in names.
//!
//! Resource metadata round-trips through three reserved attributes:
//! `wl:id` (URI), `wl:s` (producing service) and `wl:t` (timestamp).
//! On parse they are consumed into [`crate::ResourceMeta`]; the serialiser
//! re-emits them. This mirrors the paper's assumption that "each resource
//! node has two attributes `@t` and `@s` defining its service call label".

use crate::document::{CallLabel, Document};
use crate::error::{Error, Result};
use crate::escape::unescape;
use crate::tree::NodeId;

/// Reserved attribute carrying the resource URI.
pub(crate) const ATTR_URI: &str = "wl:id";
/// Reserved attribute carrying the producing service name.
pub(crate) const ATTR_SERVICE: &str = "wl:s";
/// Reserved attribute carrying the producing call timestamp.
pub(crate) const ATTR_TIME: &str = "wl:t";

/// Parse a complete document from XML text.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut p = Parser::new(input);
    p.skip_prolog();
    let (name, attrs, self_closing) = p.parse_open_tag()?;
    let mut doc = Document::new(name);
    let root = doc.root();
    apply_attrs(&mut doc, root, attrs)?;
    if !self_closing {
        p.parse_children(&mut doc, root)?;
    }
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(doc)
}

/// Parse an XML fragment (one element) and attach it under `parent` of an
/// existing document. Returns the fragment root.
pub fn parse_fragment_into(doc: &mut Document, parent: NodeId, input: &str) -> Result<NodeId> {
    let mut p = Parser::new(input);
    p.skip_misc();
    let (name, attrs, self_closing) = p.parse_open_tag()?;
    let node = doc.append_element(parent, name)?;
    apply_attrs(doc, node, attrs)?;
    if !self_closing {
        p.parse_children(doc, node)?;
    }
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("trailing content after fragment"));
    }
    Ok(node)
}

fn apply_attrs(doc: &mut Document, node: NodeId, attrs: Vec<(String, String)>) -> Result<()> {
    let mut uri: Option<String> = None;
    let mut service: Option<String> = None;
    let mut time: Option<u64> = None;
    for (k, v) in attrs {
        match k.as_str() {
            ATTR_URI => uri = Some(v),
            ATTR_SERVICE => service = Some(v),
            ATTR_TIME => {
                time = Some(v.parse().map_err(|_| Error::Parse {
                    offset: 0,
                    message: format!("invalid {ATTR_TIME} value {v:?}"),
                })?)
            }
            _ => doc.set_attr(node, k, v)?,
        }
    }
    if let Some(uri) = uri {
        let label = match (service, time) {
            (Some(s), Some(t)) => Some(CallLabel::new(s, t)),
            _ => None,
        };
        doc.register_resource(node, uri, label)?;
    }
    Ok(())
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, end: &str, what: &str) -> Result<()> {
        match self.rest().find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated {what}"))),
        }
    }

    /// Skip XML declaration, doctype, comments and PIs before the root.
    fn skip_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<?") {
                if self.skip_until("?>", "processing instruction").is_err() {
                    return;
                }
            } else if self.rest().starts_with("<!--") {
                if self.skip_until("-->", "comment").is_err() {
                    return;
                }
            } else if self.rest().starts_with("<!DOCTYPE") {
                if self.skip_until(">", "doctype").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    /// Skip whitespace/comments/PIs (used after the root element).
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                if self.skip_until("-->", "comment").is_err() {
                    return;
                }
            } else if self.rest().starts_with("<?") {
                if self.skip_until("?>", "processing instruction").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| !is_name_char(c))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        let name = &rest[..end];
        self.pos += end;
        Ok(name.to_string())
    }

    /// Parse `<name attr="v" …>` or `<name …/>`. Assumes the cursor is on `<`.
    #[allow(clippy::type_complexity)]
    fn parse_open_tag(&mut self) -> Result<(String, Vec<(String, String)>, bool)> {
        if !self.eat("<") {
            return Err(self.err("expected '<'"));
        }
        let name = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok((name, attrs, true));
            }
            if self.eat(">") {
                return Ok((name, attrs, false));
            }
            let aname = self.parse_name()?;
            self.skip_ws();
            if !self.eat("=") {
                return Err(self.err("expected '=' in attribute"));
            }
            self.skip_ws();
            let quote = if self.eat("\"") {
                '"'
            } else if self.eat("'") {
                '\''
            } else {
                return Err(self.err("expected quoted attribute value"));
            };
            let rest = self.rest();
            let end = rest
                .find(quote)
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let raw = &rest[..end];
            self.pos += end + 1;
            let value =
                unescape(raw).ok_or_else(|| self.err("malformed entity in attribute"))?;
            attrs.push((aname, value));
        }
    }

    /// Parse the children of an element until its matching close tag.
    fn parse_children(&mut self, doc: &mut Document, parent: NodeId) -> Result<()> {
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unexpected end of input inside element"));
            }
            if self.rest().starts_with("</") {
                flush_text(doc, parent, &mut text)?;
                self.pos += 2;
                let name = self.parse_name()?;
                self.skip_ws();
                if !self.eat(">") {
                    return Err(self.err("expected '>' in close tag"));
                }
                let expected = doc.node(parent)?.name().unwrap_or_default().to_string();
                if name != expected {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{expected}>, found </{name}>"
                    )));
                }
                return Ok(());
            }
            if self.rest().starts_with("<!--") {
                self.skip_until("-->", "comment")?;
                continue;
            }
            if self.rest().starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let rest = self.rest();
                let end = rest
                    .find("]]>")
                    .ok_or_else(|| self.err("unterminated CDATA"))?;
                text.push_str(&rest[..end]);
                self.pos += end + 3;
                continue;
            }
            if self.rest().starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
                continue;
            }
            if self.rest().starts_with('<') {
                flush_text(doc, parent, &mut text)?;
                let (name, attrs, self_closing) = self.parse_open_tag()?;
                let node = doc.append_element(parent, name)?;
                apply_attrs(doc, node, attrs)?;
                if !self_closing {
                    self.parse_children(doc, node)?;
                }
                continue;
            }
            // character data
            let rest = self.rest();
            let end = rest.find('<').unwrap_or(rest.len());
            let raw = &rest[..end];
            self.pos += end;
            let decoded =
                unescape(raw).ok_or_else(|| self.err("malformed entity in character data"))?;
            text.push_str(&decoded);
        }
    }
}

fn flush_text(doc: &mut Document, parent: NodeId, text: &mut String) -> Result<()> {
    if !text.trim().is_empty() {
        doc.append_text(parent, std::mem::take(text))?;
    } else {
        text.clear();
    }
    Ok(())
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_text() {
        let doc = parse_document(
            r#"<?xml version="1.0"?>
               <Resource><MetaData k="v"/><NativeContent>hello &amp; bye</NativeContent></Resource>"#,
        )
        .unwrap();
        let v = doc.view();
        let root = doc.root();
        assert_eq!(v.name(root), Some("Resource"));
        let kids = v.children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(v.attr(kids[0], "k"), Some("v"));
        assert_eq!(v.text_content(kids[1]), "hello & bye");
    }

    #[test]
    fn reserved_attrs_become_resource_meta() {
        let doc = parse_document(
            r#"<Resource wl:id="r1"><TextMediaUnit wl:id="r4" wl:s="Normaliser" wl:t="1"/></Resource>"#,
        )
        .unwrap();
        let v = doc.view();
        let root = doc.root();
        assert_eq!(v.uri(root), Some("r1"));
        assert_eq!(v.label(root), None);
        let tmu = v.children(root)[0];
        assert_eq!(v.uri(tmu), Some("r4"));
        assert_eq!(v.label(tmu), Some(&CallLabel::new("Normaliser", 1)));
    }

    #[test]
    fn cdata_and_comments() {
        let doc = parse_document(
            "<a><!-- note --><![CDATA[<raw>&stuff]]></a>",
        )
        .unwrap();
        let v = doc.view();
        assert_eq!(v.text_content(doc.root()), "<raw>&stuff");
    }

    #[test]
    fn mismatched_close_tag_is_an_error() {
        let e = parse_document("<a><b></a></a>").unwrap_err();
        assert!(matches!(e, Error::Parse { .. }));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_document("<a/>junk").is_err());
    }

    #[test]
    fn fragment_parse_attaches_under_parent() {
        let mut doc = parse_document("<Resource/>").unwrap();
        let root = doc.root();
        let frag =
            parse_fragment_into(&mut doc, root, r#"<Annotation><Language>fr</Language></Annotation>"#)
                .unwrap();
        let v = doc.view();
        assert_eq!(v.name(frag), Some("Annotation"));
        assert_eq!(v.parent(frag), Some(root));
        assert_eq!(v.text_content(frag), "fr");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.view().children(doc.root()).len(), 1);
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse_document("<a k='v &#65;'/>").unwrap();
        assert_eq!(doc.view().attr(doc.root(), "k"), Some("v A"));
    }

    #[test]
    fn invalid_time_attribute_is_an_error() {
        assert!(parse_document(r#"<a wl:id="r1" wl:s="S" wl:t="notanumber"/>"#).is_err());
    }
}
