//! Serialising document states back to XML text.

use crate::document::DocView;
use crate::escape::{escape_attr, escape_text};
use crate::parse::{ATTR_SERVICE, ATTR_TIME, ATTR_URI};
use crate::tree::{NodeId, NodeKind};

/// Options controlling XML output.
#[derive(Debug, Clone)]
pub struct XmlWriteOptions {
    /// Pretty-print with this indent string per nesting level; `None` for
    /// compact single-line output.
    pub indent: Option<String>,
    /// Emit the reserved `wl:id`/`wl:s`/`wl:t` attributes so that resource
    /// metadata round-trips through [`crate::parse_document`].
    pub include_meta: bool,
}

impl Default for XmlWriteOptions {
    fn default() -> Self {
        XmlWriteOptions {
            indent: None,
            include_meta: true,
        }
    }
}

/// Serialise the state `view` to a compact XML string (metadata included).
pub fn to_xml_string(view: &DocView<'_>) -> String {
    write_with(view, view.root(), &XmlWriteOptions::default())
}

/// Serialise with two-space indentation.
pub fn to_xml_string_pretty(view: &DocView<'_>) -> String {
    write_with(
        view,
        view.root(),
        &XmlWriteOptions {
            indent: Some("  ".into()),
            include_meta: true,
        },
    )
}

/// Serialise the subtree rooted at `node` with explicit options.
pub fn write_with(view: &DocView<'_>, node: NodeId, opts: &XmlWriteOptions) -> String {
    let mut out = String::new();
    write_node(view, node, opts, 0, &mut out);
    if opts.indent.is_some() && out.ends_with('\n') {
        out.pop();
    }
    out
}

fn write_node(
    view: &DocView<'_>,
    node: NodeId,
    opts: &XmlWriteOptions,
    depth: usize,
    out: &mut String,
) {
    let Some(n) = view.node(node) else { return };
    let pad = |out: &mut String, depth: usize| {
        if let Some(ind) = &opts.indent {
            for _ in 0..depth {
                out.push_str(ind);
            }
        }
    };
    match n.kind() {
        NodeKind::Text { value } => {
            pad(out, depth);
            escape_text(value, out);
            if opts.indent.is_some() {
                out.push('\n');
            }
        }
        NodeKind::Element { name } => {
            pad(out, depth);
            out.push('<');
            out.push_str(name);
            for (k, v) in n.attrs() {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            if opts.include_meta {
                if let Some(meta) = view.resource(node) {
                    out.push(' ');
                    out.push_str(ATTR_URI);
                    out.push_str("=\"");
                    escape_attr(&meta.uri, out);
                    out.push('"');
                    if let Some(label) = &meta.label {
                        out.push(' ');
                        out.push_str(ATTR_SERVICE);
                        out.push_str("=\"");
                        escape_attr(&label.service, out);
                        out.push('"');
                        out.push(' ');
                        out.push_str(ATTR_TIME);
                        out.push_str("=\"");
                        out.push_str(&label.time.to_string());
                        out.push('"');
                    }
                }
            }
            let children = view.children(node);
            if children.is_empty() {
                out.push_str("/>");
                if opts.indent.is_some() {
                    out.push('\n');
                }
            } else {
                out.push('>');
                if opts.indent.is_some() {
                    out.push('\n');
                }
                for &c in children {
                    write_node(view, c, opts, depth + 1, out);
                }
                pad(out, depth);
                out.push_str("</");
                out.push_str(name);
                out.push('>');
                if opts.indent.is_some() {
                    out.push('\n');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_document, CallLabel, Document};

    #[test]
    fn compact_output() {
        let mut d = Document::new("a");
        let root = d.root();
        d.set_attr(root, "k", "v<w").unwrap();
        let b = d.append_element(root, "b").unwrap();
        d.append_text(b, "x & y").unwrap();
        assert_eq!(
            to_xml_string(&d.view()),
            r#"<a k="v&lt;w"><b>x &amp; y</b></a>"#
        );
    }

    #[test]
    fn meta_round_trip() {
        let mut d = Document::new("Resource");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        let t = d.append_element(root, "TextMediaUnit").unwrap();
        d.register_resource(t, "r4", Some(CallLabel::new("Normaliser", 1)))
            .unwrap();
        let xml = to_xml_string(&d.view());
        let back = parse_document(&xml).unwrap();
        let v = back.view();
        assert_eq!(v.uri(back.root()), Some("r1"));
        let tmu = v.children(back.root())[0];
        assert_eq!(v.label(tmu), Some(&CallLabel::new("Normaliser", 1)));
    }

    #[test]
    fn serialising_an_earlier_state_omits_later_nodes() {
        let mut d = Document::new("a");
        let d0 = d.mark();
        d.append_element(d.root(), "late").unwrap();
        assert_eq!(write_with(&d.view_at(d0), d.root(), &XmlWriteOptions::default()), "<a/>");
        assert_eq!(to_xml_string(&d.view()), "<a><late/></a>");
    }

    #[test]
    fn pretty_print_indents() {
        let mut d = Document::new("a");
        d.append_element(d.root(), "b").unwrap();
        assert_eq!(to_xml_string_pretty(&d.view()), "<a>\n  <b/>\n</a>");
    }

    #[test]
    fn meta_can_be_suppressed() {
        let mut d = Document::new("a");
        d.register_resource(d.root(), "r1", None).unwrap();
        let opts = XmlWriteOptions {
            indent: None,
            include_meta: false,
        };
        assert_eq!(write_with(&d.view(), d.root(), &opts), "<a/>");
    }
}
