//! Navigation iterators over document-state views.

use crate::document::DocView;
use crate::tree::NodeId;

/// Depth-first pre-order traversal of a subtree, restricted to one state.
#[derive(Debug)]
pub struct Descendants<'d> {
    view: DocView<'d>,
    stack: Vec<NodeId>,
}

impl<'d> Descendants<'d> {
    pub(crate) fn new(view: DocView<'d>, root: NodeId) -> Self {
        let stack = if view.contains(root) {
            vec![root]
        } else {
            Vec::new()
        };
        Descendants { view, stack }
    }
}

impl<'d> Iterator for Descendants<'d> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        let children = self.view.children(next);
        // Push in reverse so the leftmost child is visited first.
        self.stack.extend(children.iter().rev().copied());
        Some(next)
    }
}

/// Iterator over the proper ancestors of a node, closest first.
#[derive(Debug)]
pub struct Ancestors<'d> {
    view: DocView<'d>,
    cur: Option<NodeId>,
}

impl<'d> Ancestors<'d> {
    pub(crate) fn new(view: DocView<'d>, node: NodeId) -> Self {
        let cur = view.parent(node);
        Ancestors { view, cur }
    }
}

impl<'d> Iterator for Ancestors<'d> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.cur?;
        self.cur = self.view.parent(n);
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use crate::Document;

    #[test]
    fn preorder_traversal() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        let b = d.append_element(a, "B").unwrap();
        let c = d.append_element(root, "C").unwrap();
        let order: Vec<_> = d.view().descendants(root).collect();
        assert_eq!(order, vec![root, a, b, c]);
    }

    #[test]
    fn traversal_respects_state() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        let d0 = d.mark();
        let _b = d.append_element(a, "B").unwrap();
        let order: Vec<_> = d.view_at(d0).descendants(root).collect();
        assert_eq!(order, vec![root, a]);
    }

    #[test]
    fn ancestors_closest_first() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        let b = d.append_element(a, "B").unwrap();
        let anc: Vec<_> = d.view().ancestors(b).collect();
        assert_eq!(anc, vec![a, root]);
        assert!(d.view().ancestors(root).next().is_none());
    }

    #[test]
    fn descendants_of_invisible_node_is_empty() {
        let mut d = Document::new("R");
        let d0 = d.mark();
        let a = d.append_element(d.root(), "A").unwrap();
        assert_eq!(d.view_at(d0).descendants(a).count(), 0);
    }
}
