//! WebLab documents: trees + resource URIs + service-call labels + states.
//!
//! Implements Definition 1 (WebLab document `(τ, uri)`), the labelling
//! function `λ` of Definition 3, and the state machinery behind workflow
//! executions (Definition 2): every [`StateMark`] captures one document state
//! `d_i`, and [`DocView`] exposes a read-only view of that state without
//! copying the tree.

use std::collections::HashMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::iter::{Ancestors, Descendants};
use crate::tree::{Arena, Node, NodeId, NodeKind};

/// Logical timestamps `t ∈ T` of the paper's infinite ordered domain.
///
/// The model only requires a total order on call instants; the orchestrator
/// assigns consecutive integers.
pub type Timestamp = u64;

/// A service-call label `(s, t) ∈ C = S × T` (Definition 2/3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallLabel {
    /// Service name `s ∈ S`.
    pub service: String,
    /// Call instant `t ∈ T`.
    pub time: Timestamp,
}

impl CallLabel {
    /// Construct a label from a service name and call instant.
    pub fn new(service: impl Into<String>, time: Timestamp) -> Self {
        CallLabel {
            service: service.into(),
            time,
        }
    }
}

impl fmt::Display for CallLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, t{})", self.service, self.time)
    }
}

/// Resource metadata attached to an identified node: its URI and, if known,
/// the service call that produced it.
///
/// The paper encodes these as virtual attributes `@id`, `@s` and `@t` on
/// resource nodes; the XPath evaluator resolves those names against this
/// struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceMeta {
    /// Unique resource URI assigned by the `uri` function of Definition 1.
    pub uri: String,
    /// Producing service call, if the node is labelled (`λ` of Definition 3).
    pub label: Option<CallLabel>,
}

/// A high-water mark identifying one document state `d_i`.
///
/// Because the arena and the resource log are append-only, the pair of
/// counters fully determines the state: a node belongs to the state iff its
/// id is below `nodes`, and a resource registration is visible iff its log
/// position is below `resources`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateMark {
    pub(crate) nodes: u32,
    pub(crate) resources: u32,
}

impl StateMark {
    /// Number of nodes that exist at this state.
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Number of resource registrations visible at this state.
    pub fn resource_count(&self) -> usize {
        self.resources as usize
    }

    /// Construct a mark from raw counters.
    ///
    /// Advanced use (tests, trace deserialisation): the counters must
    /// describe a state the document actually passed through — `nodes`
    /// nodes existed and the first `resources` registrations of the log had
    /// been made — otherwise views behave safely but meaninglessly.
    pub fn from_counts(nodes: usize, resources: usize) -> StateMark {
        StateMark {
            nodes: nodes as u32,
            resources: resources as u32,
        }
    }

    /// A hybrid mark: the *structure* of `self` with the *resource
    /// identification* of `other`.
    ///
    /// URIs are only ever added, never changed (Definition 1), so a later
    /// state's `uri` function restricted to an earlier state's nodes is
    /// well defined. The replay evaluation strategy uses this to see
    /// promotions the way the paper's posthoc strategies do: node 3 of
    /// Figure 4 is matched as resource `r3` even when the pattern runs on
    /// the structure of `d₀`.
    pub fn with_resources_of(self, other: StateMark) -> StateMark {
        StateMark {
            nodes: self.nodes,
            resources: other.resources,
        }
    }
}

/// A WebLab document `d = (τ, uri)` together with its full evolution history.
///
/// One `Document` value stores the *final* state of a workflow execution and
/// every intermediate state reachable through [`Document::mark`] /
/// [`Document::view_at`]. All mutating operations append; nothing is ever
/// deleted, mirroring the platform's append semantics.
#[derive(Debug, Clone)]
pub struct Document {
    arena: Arena,
    root: NodeId,
    /// Append-only log of resource registrations, in registration order.
    resource_log: Vec<NodeId>,
    /// Metadata per registered node, paired with its registration position
    /// in the log (so state views can test visibility in O(1)).
    resources: HashMap<NodeId, (u32, ResourceMeta)>,
    /// Reverse map uri → node for uniqueness checks and lookups.
    uri_index: HashMap<String, NodeId>,
}

impl Document {
    /// Create a document with a fresh root element named `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        let mut arena = Arena::default();
        let root = arena.alloc(NodeKind::Element {
            name: root_name.into(),
        });
        Document {
            arena,
            root,
            resource_log: Vec::new(),
            resources: HashMap::new(),
            uri_index: HashMap::new(),
        }
    }

    /// The root node (always id `#0`).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes in the (final) document.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Access a node, failing if the id is foreign.
    #[inline]
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.arena.get(id).ok_or(Error::UnknownNode(id))
    }

    /// Access a node, panicking on a foreign id. Internal fast path.
    #[inline]
    pub(crate) fn node_unchecked(&self, id: NodeId) -> &Node {
        &self.arena.nodes[id.index()]
    }

    // ------------------------------------------------------------------
    // Construction (append-only)
    // ------------------------------------------------------------------

    /// Allocate a detached element node.
    pub fn create_element(&mut self, name: impl Into<String>) -> NodeId {
        self.arena.alloc(NodeKind::Element { name: name.into() })
    }

    /// Allocate a detached text node.
    pub fn create_text(&mut self, value: impl Into<String>) -> NodeId {
        self.arena.alloc(NodeKind::Text {
            value: value.into(),
        })
    }

    /// Append a previously created, still-detached node as the last child of
    /// `parent`.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        if self.arena.get(child).is_none() {
            return Err(Error::UnknownNode(child));
        }
        let p = self.arena.get(parent).ok_or(Error::UnknownNode(parent))?;
        if !p.is_element() {
            return Err(Error::NotAnElement(parent));
        }
        if self.arena.get(child).unwrap().parent.is_some() {
            return Err(Error::AlreadyAttached(child));
        }
        // Reject cycles: parent must not be a descendant of child (nor child
        // itself). Ancestor chains are short; walk up from `parent`.
        let mut cur = Some(parent);
        while let Some(n) = cur {
            if n == child {
                return Err(Error::WouldCycle(child));
            }
            cur = self.arena.get(n).unwrap().parent;
        }
        self.arena.get_mut(child).unwrap().parent = Some(parent);
        self.arena.get_mut(parent).unwrap().children.push(child);
        Ok(())
    }

    /// Create an element and append it to `parent` in one step.
    pub fn append_element(&mut self, parent: NodeId, name: impl Into<String>) -> Result<NodeId> {
        let id = self.create_element(name);
        self.attach(parent, id)?;
        Ok(id)
    }

    /// Create a text node and append it to `parent` in one step.
    pub fn append_text(&mut self, parent: NodeId, value: impl Into<String>) -> Result<NodeId> {
        let id = self.create_text(value);
        self.attach(parent, id)?;
        Ok(id)
    }

    /// Set an explicit attribute on an element.
    ///
    /// Attributes participate in state views only insofar as the node itself
    /// does: a well-behaved service sets attributes on the nodes it creates
    /// before the orchestrator takes the next [`StateMark`]. The workflow
    /// engine enforces this discipline.
    pub fn set_attr(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<()> {
        let n = self.arena.get_mut(node).ok_or(Error::UnknownNode(node))?;
        if !n.is_element() {
            return Err(Error::NotAnElement(node));
        }
        let name = name.into();
        let value = value.into();
        if let Some(slot) = n.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            n.attrs.push((name, value));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Resources
    // ------------------------------------------------------------------

    /// Register `node` as a resource with the given URI and optional label.
    ///
    /// Models both initial identification (root of `d₀`) and the *promotion*
    /// of an existing plain node to a resource (node 3 → r3 in Figure 4 of
    /// the paper). A node can be registered at most once and URIs are unique
    /// per document — the paper's `uri` function is injective and never
    /// modified, only extended.
    pub fn register_resource(
        &mut self,
        node: NodeId,
        uri: impl Into<String>,
        label: Option<CallLabel>,
    ) -> Result<()> {
        if self.arena.get(node).is_none() {
            return Err(Error::UnknownNode(node));
        }
        if self.resources.contains_key(&node) {
            return Err(Error::AlreadyResource(node));
        }
        let uri = uri.into();
        if self.uri_index.contains_key(&uri) {
            return Err(Error::DuplicateUri(uri));
        }
        self.uri_index.insert(uri.clone(), node);
        let pos = self.resource_log.len() as u32;
        self.resources.insert(node, (pos, ResourceMeta { uri, label }));
        self.resource_log.push(node);
        Ok(())
    }

    /// Resource metadata of `node` in the final state, if registered.
    #[inline]
    pub fn resource(&self, node: NodeId) -> Option<&ResourceMeta> {
        self.resources.get(&node).map(|(_, m)| m)
    }

    /// Node identified by `uri`, if any.
    #[inline]
    pub fn node_by_uri(&self, uri: &str) -> Option<NodeId> {
        self.uri_index.get(uri).copied()
    }

    /// All registered resource nodes in registration order.
    pub fn resource_nodes(&self) -> &[NodeId] {
        &self.resource_log
    }

    // ------------------------------------------------------------------
    // States
    // ------------------------------------------------------------------

    /// Capture the current state as a mark `d_i`.
    pub fn mark(&self) -> StateMark {
        StateMark {
            nodes: self.arena.len() as u32,
            resources: self.resource_log.len() as u32,
        }
    }

    /// The empty-history mark (before any node existed). Rarely useful
    /// directly; mostly an identity for diff computations.
    pub fn mark_zero() -> StateMark {
        StateMark {
            nodes: 0,
            resources: 0,
        }
    }

    /// A read-only view of the document at `mark`.
    ///
    /// Marks taken from a *different* document yield unspecified (but safe)
    /// views; callers are expected to pair marks with their document, which
    /// the workflow engine does.
    pub fn view_at(&self, mark: StateMark) -> DocView<'_> {
        DocView { doc: self, mark }
    }

    /// A view of the final (current) state.
    pub fn view(&self) -> DocView<'_> {
        self.view_at(self.mark())
    }

    /// Roots of the maximal new fragments appended since `mark`
    /// — the bag `d \ d_mark` of the paper, in document order.
    ///
    /// A node is a fragment root iff it is new (`id ≥ mark`) and attached to
    /// an old parent (or detached).
    pub fn new_fragments_since(&self, mark: StateMark) -> Vec<NodeId> {
        let mut roots = Vec::new();
        for idx in mark.nodes as usize..self.arena.len() {
            let id = NodeId(idx as u32);
            let n = self.node_unchecked(id);
            match n.parent {
                Some(p) if p.0 < mark.nodes => roots.push(id),
                None => roots.push(id),
                _ => {}
            }
        }
        roots
    }

    /// Resource nodes registered since `mark`, in registration order.
    ///
    /// For a service call `c_i` with input mark `d_{i-1}` and output mark
    /// `d_i`, this is `out(c_i)` of the paper.
    pub fn new_resources_since(&self, mark: StateMark) -> Vec<NodeId> {
        self.resource_log[mark.resources as usize..].to_vec()
    }

    /// Roll the document back to `mark`, discarding every node allocation
    /// and resource registration made after it — the inverse of the append
    /// operations, used by the workflow engine to retry or skip a failed
    /// service call without violating the containment chain
    /// `d_{i-1} ⊑_uri d_i`.
    ///
    /// Because the arena and the resource log are strictly append-only, the
    /// state at `mark` is exactly "the first `nodes` nodes and the first
    /// `resources` registrations": truncating both (and detaching truncated
    /// children from surviving parents) restores it. Marks previously taken
    /// at or below `mark` remain valid afterwards; later marks become
    /// foreign.
    ///
    /// One caveat mirrors [`StateMark`]'s definition of a state: attribute
    /// values of *pre-existing* elements are not versioned, so a service
    /// that mutated an old node's attribute before failing is not undone
    /// here. The orchestrator's append-only validation has the same blind
    /// spot by design — well-behaved services only touch nodes they
    /// created.
    pub fn truncate_to_mark(&mut self, mark: StateMark) -> Result<()> {
        let nodes = mark.nodes as usize;
        let resources = mark.resources as usize;
        if nodes > self.arena.len() || resources > self.resource_log.len() {
            return Err(Error::MarkAhead {
                nodes,
                resources,
            });
        }
        for &n in &self.resource_log[resources..] {
            if let Some((_, meta)) = self.resources.remove(&n) {
                self.uri_index.remove(&meta.uri);
            }
        }
        self.resource_log.truncate(resources);
        for node in &mut self.arena.nodes[..nodes] {
            node.children.retain(|c| (c.0 as usize) < nodes);
        }
        self.arena.nodes.truncate(nodes);
        Ok(())
    }

    /// Deep-copy the state at `mark` into a standalone document.
    ///
    /// Node ids are preserved (states are prefixes of the arena), so marks
    /// taken on `self` up to `mark` remain valid on the copy. This is the
    /// expensive per-state materialisation that the paper's "simple, but
    /// also inefficient solution" performs; the replay strategy benchmarks
    /// use it, everything else uses zero-copy [`Document::view_at`].
    pub fn materialize_state(&self, mark: StateMark) -> Document {
        let nodes = mark.nodes as usize;
        let mut arena = Arena::default();
        arena.nodes.reserve(nodes);
        for node in &self.arena.nodes[..nodes] {
            let mut copy = node.clone();
            copy.children.retain(|c| (c.0 as usize) < nodes);
            if let Some(p) = copy.parent {
                if p.0 >= mark.nodes {
                    copy.parent = None;
                }
            }
            arena.nodes.push(copy);
        }
        // Registrations visible at the mark whose node exists structurally
        // (a hybrid mark may expose registrations of not-yet-created nodes;
        // those are dropped).
        let resource_log: Vec<NodeId> = self.resource_log[..mark.resources as usize]
            .iter()
            .copied()
            .filter(|n| n.0 < mark.nodes)
            .collect();
        let mut resources = HashMap::with_capacity(resource_log.len());
        let mut uri_index = HashMap::with_capacity(resource_log.len());
        for (pos, &n) in resource_log.iter().enumerate() {
            let meta = self.resources[&n].1.clone();
            uri_index.insert(meta.uri.clone(), n);
            resources.insert(n, (pos as u32, meta));
        }
        Document {
            arena,
            root: self.root,
            resource_log,
            resources,
            uri_index,
        }
    }
}

/// Read-only view of one document state `d_i`.
///
/// Navigation methods filter the underlying arena by the state's high-water
/// marks; the tree is never copied. All pattern evaluation in the rest of
/// the system works against `DocView`, which is what makes the paper's
/// "evaluate everything on the final document" strategies and the naive
/// per-state replay strategy share one code path.
#[derive(Debug, Clone, Copy)]
pub struct DocView<'d> {
    pub(crate) doc: &'d Document,
    pub(crate) mark: StateMark,
}

impl<'d> DocView<'d> {
    /// The underlying document.
    #[inline]
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// The state mark this view captures.
    #[inline]
    pub fn mark(&self) -> StateMark {
        self.mark
    }

    /// Whether `node` exists at this state.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.mark.nodes && node.index() < self.doc.node_count()
    }

    /// Root of the document (exists in every state; documents are created
    /// with their root).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.doc.root
    }

    /// The node's label/attrs, if it exists at this state.
    pub fn node(&self, id: NodeId) -> Option<&'d Node> {
        if self.contains(id) {
            self.doc.arena.get(id)
        } else {
            None
        }
    }

    /// Children of `node` visible at this state (ids below the mark).
    ///
    /// Children are appended in id order, so the visible children form a
    /// prefix of the final child list.
    pub fn children(&self, node: NodeId) -> &'d [NodeId] {
        let Some(n) = self.node(node) else {
            return &[];
        };
        // Children ids are strictly increasing; binary search for the mark.
        let cut = n
            .children
            .partition_point(|c| c.0 < self.mark.nodes);
        &n.children[..cut]
    }

    /// Parent of `node` at this state.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.node(node).and_then(|n| n.parent)
    }

    /// Element name of `node`, if it is an element visible here.
    pub fn name(&self, node: NodeId) -> Option<&'d str> {
        self.node(node).and_then(|n| n.name())
    }

    /// Explicit attribute value.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&'d str> {
        self.node(node).and_then(|n| n.attr(name))
    }

    /// Resource metadata visible at this state.
    ///
    /// A registration is visible iff its log position is below the state's
    /// resource mark — this is how node 3 of the paper is a plain node in
    /// `d₀` and the resource `r3` from `d₁` onwards.
    pub fn resource(&self, node: NodeId) -> Option<&'d ResourceMeta> {
        if !self.contains(node) {
            return None;
        }
        let (pos, meta) = self.doc.resources.get(&node)?;
        if *pos < self.mark.resources {
            Some(meta)
        } else {
            None
        }
    }

    /// URI of `node` at this state (the paper's virtual `@id`).
    pub fn uri(&self, node: NodeId) -> Option<&'d str> {
        self.resource(node).map(|m| m.uri.as_str())
    }

    /// Producing service-call label of `node` at this state.
    pub fn label(&self, node: NodeId) -> Option<&'d CallLabel> {
        self.resource(node).and_then(|m| m.label.as_ref())
    }

    /// Resource nodes registered at this state, in registration order.
    pub fn resource_nodes(&self) -> &'d [NodeId] {
        &self.doc.resource_log[..self.mark.resources as usize]
    }

    /// Concatenated text content of the subtree rooted at `node`.
    pub fn text_content(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(node, &mut out);
        out
    }

    fn collect_text(&self, node: NodeId, out: &mut String) {
        let Some(n) = self.node(node) else { return };
        if let Some(t) = n.kind().text_value() {
            out.push_str(t);
        }
        for &c in self.children(node) {
            self.collect_text(c, out);
        }
    }

    /// Depth-first pre-order iterator over the subtree rooted at `node`,
    /// restricted to this state.
    pub fn descendants(&self, node: NodeId) -> Descendants<'d> {
        Descendants::new(*self, node)
    }

    /// Iterator over `node`'s proper ancestors, closest first.
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'d> {
        Ancestors::new(*self, node)
    }

    /// Is `a` an ancestor-or-self of `b` at this state?
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        if !self.contains(a) || !self.contains(b) {
            return false;
        }
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Structural containment check `self ⊑_uri other` (paper, Section 3).
    ///
    /// Views over the *same* document are contained by construction whenever
    /// `self.mark ≤ other.mark`; for independent documents this delegates to
    /// the general structural algorithm.
    pub fn is_contained_in(&self, other: &DocView<'_>) -> bool {
        if std::ptr::eq(self.doc, other.doc) {
            return self.mark.nodes <= other.mark.nodes
                && self.mark.resources <= other.mark.resources;
        }
        crate::contain::is_contained(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, StateMark) {
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        let m = d.append_element(root, "M").unwrap();
        let n = d.append_element(root, "N").unwrap();
        d.append_text(n, "native").unwrap();
        let d0 = d.mark();
        (d, m, n, d0)
    }

    #[test]
    fn states_partition_children() {
        let (mut d, _m, _n, d0) = sample();
        let root = d.root();
        let t = d.append_element(root, "T").unwrap();
        let d1 = d.mark();

        assert_eq!(d.view_at(d0).children(root).len(), 2);
        assert_eq!(d.view_at(d1).children(root).len(), 3);
        assert!(!d.view_at(d0).contains(t));
        assert!(d.view_at(d1).contains(t));
    }

    #[test]
    fn promotion_is_state_dependent() {
        let (mut d, _m, n, d0) = sample();
        d.register_resource(n, "r3", Some(CallLabel::new("Source", 0)))
            .unwrap();
        let d1 = d.mark();

        assert_eq!(d.view_at(d0).uri(n), None);
        assert_eq!(d.view_at(d1).uri(n), Some("r3"));
        assert_eq!(
            d.view_at(d1).label(n),
            Some(&CallLabel::new("Source", 0))
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (mut d, _m, n, _d0) = sample();
        d.register_resource(n, "rX", None).unwrap();
        assert_eq!(
            d.register_resource(n, "rY", None),
            Err(Error::AlreadyResource(n))
        );
        let m2 = d.append_element(d.root(), "Z").unwrap();
        assert_eq!(
            d.register_resource(m2, "rX", None),
            Err(Error::DuplicateUri("rX".into()))
        );
    }

    #[test]
    fn new_fragments_are_maximal_roots() {
        let (mut d, _m, n, d0) = sample();
        let root = d.root();
        // fragment 1: T with child C
        let t = d.append_element(root, "T").unwrap();
        let _c = d.append_element(t, "C").unwrap();
        // fragment 2: annotation under the old node n
        let a = d.append_element(n, "A").unwrap();
        let frags = d.new_fragments_since(d0);
        assert_eq!(frags, vec![t, a]);
    }

    #[test]
    fn out_of_state_nodes_are_invisible() {
        let (mut d, _m, n, d0) = sample();
        let a = d.append_element(n, "A").unwrap();
        let v0 = d.view_at(d0);
        assert_eq!(v0.node(a), None);
        assert_eq!(v0.children(n).len(), 1); // only the text node
        assert_eq!(v0.parent(a), None);
    }

    #[test]
    fn attach_rejects_cycles_and_double_attach() {
        let mut d = Document::new("R");
        let root = d.root();
        let x = d.append_element(root, "X").unwrap();
        let y = d.append_element(x, "Y").unwrap();
        // y is attached already
        assert_eq!(d.attach(root, y), Err(Error::AlreadyAttached(y)));
        // detached node cycling onto itself is impossible by construction,
        // but attaching an ancestor under a descendant must fail:
        let z = d.create_element("Z");
        d.attach(y, z).unwrap();
        let w = d.create_element("W");
        d.attach(z, w).unwrap();
        // attempt to attach z (already attached) anywhere fails first
        assert_eq!(d.attach(w, z), Err(Error::AlreadyAttached(z)));
    }

    #[test]
    fn text_content_concatenates_in_order() {
        let mut d = Document::new("R");
        let root = d.root();
        d.append_text(root, "a").unwrap();
        let e = d.append_element(root, "E").unwrap();
        d.append_text(e, "b").unwrap();
        d.append_text(root, "c").unwrap();
        assert_eq!(d.view().text_content(root), "abc");
    }

    #[test]
    fn same_doc_containment_by_marks() {
        let (mut d, ..) = sample();
        let d0 = d.mark();
        d.append_element(d.root(), "T").unwrap();
        let d1 = d.mark();
        assert!(d.view_at(d0).is_contained_in(&d.view_at(d1)));
        assert!(!d.view_at(d1).is_contained_in(&d.view_at(d0)));
    }

    #[test]
    fn ancestor_or_self_respects_state() {
        let (mut d, _m, n, d0) = sample();
        let a = d.append_element(n, "A").unwrap();
        let v1 = d.view();
        assert!(v1.is_ancestor_or_self(n, a));
        assert!(v1.is_ancestor_or_self(d.root(), a));
        assert!(!v1.is_ancestor_or_self(a, n));
        let v0 = d.view_at(d0);
        assert!(!v0.is_ancestor_or_self(n, a)); // a not in d0
    }

    #[test]
    fn truncate_restores_earlier_state_exactly() {
        let (mut d, _m, n, d0) = sample();
        // a "failed call": new fragment, a promotion of n, a new resource
        let t = d.append_element(d.root(), "T").unwrap();
        d.register_resource(n, "r-promo", Some(CallLabel::new("S", 2)))
            .unwrap();
        d.register_resource(t, "r-new", Some(CallLabel::new("S", 2)))
            .unwrap();
        d.truncate_to_mark(d0).unwrap();
        assert_eq!(d.mark(), d0);
        assert_eq!(d.view().children(d.root()).len(), 2);
        assert_eq!(d.view().uri(n), None);
        assert_eq!(d.node_by_uri("r-promo"), None);
        assert_eq!(d.node_by_uri("r-new"), None);
        // the rolled-back URIs are free for a clean re-registration
        let t2 = d.append_element(d.root(), "T").unwrap();
        d.register_resource(t2, "r-new", Some(CallLabel::new("S", 2)))
            .unwrap();
        assert_eq!(d.node_by_uri("r-new"), Some(t2));
    }

    #[test]
    fn truncate_to_current_mark_is_a_no_op() {
        let (mut d, ..) = sample();
        let before = d.mark();
        let xml_before = crate::to_xml_string(&d.view());
        d.truncate_to_mark(before).unwrap();
        assert_eq!(d.mark(), before);
        assert_eq!(crate::to_xml_string(&d.view()), xml_before);
    }

    #[test]
    fn truncate_rejects_future_marks() {
        let (mut d, ..) = sample();
        let ahead = StateMark::from_counts(d.node_count() + 1, 0);
        assert!(matches!(
            d.truncate_to_mark(ahead),
            Err(Error::MarkAhead { .. })
        ));
    }

    #[test]
    fn set_attr_overwrites() {
        let mut d = Document::new("R");
        let root = d.root();
        d.set_attr(root, "k", "1").unwrap();
        d.set_attr(root, "k", "2").unwrap();
        assert_eq!(d.view().attr(root, "k"), Some("2"));
    }
}
