//! Ergonomic construction of XML fragments.
//!
//! Services in the workflow crate assemble their output fragments with this
//! builder rather than issuing raw arena calls, which keeps fragment shape
//! declarations readable:
//!
//! ```
//! use weblab_xml::{Document, ElementBuilder};
//!
//! let mut doc = Document::new("Resource");
//! let root = doc.root();
//! let tmu = ElementBuilder::new("TextMediaUnit")
//!     .attr("lang", "en")
//!     .child(ElementBuilder::new("TextContent").text("normalised text"))
//!     .build(&mut doc, root)
//!     .unwrap();
//! assert_eq!(doc.view().name(tmu), Some("TextMediaUnit"));
//! ```

use crate::document::Document;
use crate::error::Result;
use crate::tree::NodeId;

/// Declarative description of an element subtree, applied to a document in
/// one [`ElementBuilder::build`] call.
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Part>,
}

#[derive(Debug, Clone)]
enum Part {
    Element(ElementBuilder),
    Text(String),
}

impl ElementBuilder {
    /// Start an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        ElementBuilder {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Add a child element.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Part::Element(child));
        self
    }

    /// Add a text child.
    pub fn text(mut self, value: impl Into<String>) -> Self {
        self.children.push(Part::Text(value.into()));
        self
    }

    /// Materialise the subtree under `parent`, returning the new root node.
    pub fn build(&self, doc: &mut Document, parent: NodeId) -> Result<NodeId> {
        let node = doc.append_element(parent, self.name.clone())?;
        for (k, v) in &self.attrs {
            doc.set_attr(node, k.clone(), v.clone())?;
        }
        for part in &self.children {
            match part {
                Part::Element(b) => {
                    b.build(doc, node)?;
                }
                Part::Text(t) => {
                    doc.append_text(node, t.clone())?;
                }
            }
        }
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_xml_string;

    #[test]
    fn builds_nested_structure() {
        let mut doc = Document::new("R");
        let root = doc.root();
        ElementBuilder::new("A")
            .attr("x", "1")
            .child(ElementBuilder::new("B").text("hi"))
            .text("tail")
            .build(&mut doc, root)
            .unwrap();
        assert_eq!(
            to_xml_string(&doc.view()),
            r#"<R><A x="1"><B>hi</B>tail</A></R>"#
        );
    }

    #[test]
    fn builder_is_reusable() {
        let b = ElementBuilder::new("Item").attr("k", "v");
        let mut doc = Document::new("R");
        let root = doc.root();
        let first = b.build(&mut doc, root).unwrap();
        let second = b.build(&mut doc, root).unwrap();
        assert_ne!(first, second);
        assert_eq!(doc.view().children(root).len(), 2);
    }
}
