//! Minimal XML escaping/unescaping for the five predefined entities.
//!
//! Both directions enforce the XML 1.0 `Char` production: `unescape`
//! rejects character references to code points outside it (`&#0;`,
//! `&#x1;`, surrogate halves …), because the resulting control characters
//! would serialise raw and break the round-trip re-parse; the escapers emit
//! `\r` as `&#13;` so carriage returns survive a re-parse instead of being
//! line-end-normalised away.

/// Is `c` in the XML 1.0 `Char` production? Everything else may not appear
/// in a document, even via a character reference.
fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\t' | '\n' | '\r'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Escape text content (`&`, `<`, `>`, and `\r` as a character reference).
pub(crate) fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Escape an attribute value (additionally `"`).
pub(crate) fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Resolve the predefined entities and decimal/hex character references.
/// Returns `None` on a malformed reference or a reference to a code point
/// outside the XML 1.0 `Char` production.
pub(crate) fn unescape(s: &str) -> Option<String> {
    if !s.contains('&') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest.find(';')?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).ok()?;
                let c = char::from_u32(code).filter(|&c| is_xml_char(c))?;
                out.push(c);
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..].parse().ok()?;
                let c = char::from_u32(code).filter(|&c| is_xml_char(c))?;
                out.push(c);
            }
            _ => return None,
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let original = r#"a<b>&"quote" 'tick'"#;
        let mut esc = String::new();
        escape_attr(original, &mut esc);
        assert_eq!(unescape(&esc).unwrap(), original);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn malformed_references_rejected() {
        assert!(unescape("&bogus;").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&unterminated").is_none());
    }

    #[test]
    fn non_xml_code_points_rejected() {
        // NUL and other C0 controls (except tab/lf/cr) are not XML chars
        assert!(unescape("&#0;").is_none());
        assert!(unescape("&#x1;").is_none());
        assert!(unescape("&#8;").is_none());
        // bare surrogate halves (already rejected by char::from_u32)
        assert!(unescape("&#xD800;").is_none());
        // the non-characters at the top of the BMP
        assert!(unescape("&#xFFFE;").is_none());
        // beyond the Unicode range
        assert!(unescape("&#x110000;").is_none());
        // whitespace controls remain legal
        assert_eq!(unescape("&#9;&#10;&#13;").unwrap(), "\t\n\r");
        assert_eq!(unescape("&#x1F600;").unwrap(), "😀");
    }

    #[test]
    fn carriage_returns_round_trip_through_escaping() {
        let original = "line1\r\nline2\rtail";
        let mut text = String::new();
        escape_text(original, &mut text);
        assert!(!text.contains('\r'), "raw CR must not be emitted: {text:?}");
        assert_eq!(unescape(&text).unwrap(), original);
        let mut attr = String::new();
        escape_attr(original, &mut attr);
        assert!(!attr.contains('\r'));
        assert_eq!(unescape(&attr).unwrap(), original);
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(unescape("hello").unwrap(), "hello");
    }
}
