//! Minimal XML escaping/unescaping for the five predefined entities.

/// Escape text content (`&`, `<`, `>`).
pub(crate) fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escape an attribute value (additionally `"`).
pub(crate) fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Resolve the predefined entities and decimal/hex character references.
/// Returns `None` on a malformed reference.
pub(crate) fn unescape(s: &str) -> Option<String> {
    if !s.contains('&') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest.find(';')?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..].parse().ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let original = r#"a<b>&"quote" 'tick'"#;
        let mut esc = String::new();
        escape_attr(original, &mut esc);
        assert_eq!(unescape(&esc).unwrap(), original);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn malformed_references_rejected() {
        assert!(unescape("&bogus;").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&unterminated").is_none());
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(unescape("hello").unwrap(), "hello");
    }
}
