//! Error type shared across the XML substrate.

use std::fmt;

use crate::tree::NodeId;

/// Errors produced by document construction, parsing, and diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A node id does not belong to the document it was used with.
    UnknownNode(NodeId),
    /// Attempted to append a child to a text node.
    NotAnElement(NodeId),
    /// Attempted to register a resource twice for the same node.
    AlreadyResource(NodeId),
    /// Attempted to register a URI that is already assigned to another node.
    DuplicateUri(String),
    /// Attempted to attach a node that already has a parent.
    AlreadyAttached(NodeId),
    /// Attempted to attach a node under one of its own descendants (cycle).
    WouldCycle(NodeId),
    /// Attribute mutation on a node that is already frozen into a state mark.
    FrozenNode(NodeId),
    /// A state mark describes a state the document never reached (its
    /// counters exceed the document's), so it cannot be rolled back to.
    MarkAhead {
        /// Node count claimed by the mark.
        nodes: usize,
        /// Resource count claimed by the mark.
        resources: usize,
    },
    /// XML syntax error at a byte offset.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode(n) => write!(f, "node {n} does not belong to this document"),
            Error::NotAnElement(n) => write!(f, "node {n} is not an element"),
            Error::AlreadyResource(n) => write!(f, "node {n} is already a resource"),
            Error::DuplicateUri(u) => write!(f, "uri {u:?} is already assigned"),
            Error::AlreadyAttached(n) => write!(f, "node {n} is already attached to a parent"),
            Error::WouldCycle(n) => write!(f, "attaching node {n} would create a cycle"),
            Error::FrozenNode(n) => {
                write!(f, "node {n} belongs to a frozen state and cannot be modified")
            }
            Error::MarkAhead { nodes, resources } => {
                write!(
                    f,
                    "state mark ({nodes} nodes, {resources} resources) is ahead of this document"
                )
            }
            Error::Parse { offset, message } => {
                write!(f, "xml parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;
