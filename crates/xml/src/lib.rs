//! # weblab-xml — XML tree substrate for WebLab PROV
//!
//! This crate implements the data substrate of the WebLab PROV provenance
//! model (Amann et al., EDBT 2013): *WebLab documents*, i.e. node-labelled
//! ordered trees over an append-only arena, where a subset of nodes — the
//! *resource nodes* — carry a URI and, optionally, a *service-call label*
//! `(service, timestamp)` recording which black-box service call produced
//! them.
//!
//! The central invariant of the WebLab model is **append semantics**: every
//! service call extends the document with new XML fragments and never deletes
//! or modifies existing content. The arena design exploits this directly:
//!
//! * nodes are allocated with monotonically increasing [`NodeId`]s,
//! * children are only ever appended, so within any parent the child ids are
//!   strictly increasing,
//! * resource registrations (URI + label) are recorded in an append-only log.
//!
//! A *document state* `d_i` (Definition 1/2 of the paper) is therefore fully
//! determined by a [`StateMark`] — a pair of high-water marks into the node
//! arena and the resource log — and can be *viewed* without copying through
//! [`DocView`]. The containment relation `d_i ⊑_uri d_j` of the paper holds
//! by construction between the views of one document, and is also provided
//! as a structural check between independent documents in the containment
//! module.
//!
//! The crate additionally provides:
//!
//! * a small standalone XML parser/serialiser for loading corpora and
//!   round-tripping documents,
//! * the append-only tree diff `d' \ d` used by the platform *Recorder*,
//!   returning the bag of new rooted fragments,
//! * navigation iterators (descendants, ancestors, subtree views).
//!
//! # Example
//!
//! ```
//! use weblab_xml::{Document, CallLabel};
//!
//! // d0: <Resource><MetaData/><NativeContent>…</NativeContent></Resource>
//! let mut doc = Document::new("Resource");
//! let root = doc.root();
//! doc.register_resource(root, "weblab://doc/1", None).unwrap();
//! let meta = doc.append_element(root, "MetaData").unwrap();
//! let native = doc.append_element(root, "NativeContent").unwrap();
//! doc.append_text(native, "raw bytes").unwrap();
//! let d0 = doc.mark();
//!
//! // a service call at time 1 appends a normalised version
//! let tmu = doc.append_element(root, "TextMediaUnit").unwrap();
//! doc.register_resource(tmu, "weblab://doc/1#4", Some(CallLabel::new("Normaliser", 1)))
//!     .unwrap();
//! let d1 = doc.mark();
//!
//! assert!(doc.view_at(d0).is_contained_in(&doc.view_at(d1)));
//! assert_eq!(doc.new_fragments_since(d0), vec![tmu]);
//! let _ = meta;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod contain;
mod diff;
mod document;
mod error;
mod escape;
mod iter;
mod parse;
mod serialize;
mod tree;

pub use builder::ElementBuilder;
pub use contain::{containment_witness, is_contained, ContainmentWitness};
pub use diff::{diff_documents, DiffResult};
pub use document::{CallLabel, DocView, Document, ResourceMeta, StateMark, Timestamp};
pub use error::{Error, Result};
pub use iter::{Ancestors, Descendants};
pub use parse::{parse_document, parse_fragment_into};
pub use serialize::{to_xml_string, to_xml_string_pretty, write_with, XmlWriteOptions};
pub use tree::{Node, NodeId, NodeKind};
