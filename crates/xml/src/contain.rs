//! Structural containment `d ⊑_uri d'` between independent documents.
//!
//! Section 3 of the paper: `τ ⊑ τ'` iff all nodes and structural
//! relationships of `τ` are preserved in `τ'` — equivalently, `τ'` is
//! obtained from `τ` by inserting a bag of subtrees. Lifted to documents,
//! the `uri` function of the larger document must *preserve* every
//! identifier of the smaller one (it may add identifiers, never change or
//! drop them).
//!
//! For views over the same [`crate::Document`] containment holds by
//! construction; this module implements the general check used to validate
//! the output of an untrusted black-box service (the workflow engine rejects
//! services that delete or reorder content) and to test the diff machinery.
//!
//! The algorithm matches children by an ordered greedy embedding, anchored
//! on URIs where both sides carry them: appended fragments make the old
//! child list an ordered subsequence of the new one, which greedy matching
//! with recursive verification finds in `O(|d'|·depth)`.

use std::collections::HashMap;

use crate::document::DocView;
use crate::tree::{NodeId, NodeKind};

/// A witness of containment: for every node of the contained view, the node
/// of the containing view it maps to.
#[derive(Debug, Default, Clone)]
pub struct ContainmentWitness {
    /// Mapping from nodes of the smaller document to nodes of the larger.
    pub mapping: HashMap<NodeId, NodeId>,
}

/// Check `small ⊑_uri big` and return the witness embedding if it holds.
pub fn containment_witness(
    small: &DocView<'_>,
    big: &DocView<'_>,
) -> Option<ContainmentWitness> {
    let mut w = ContainmentWitness::default();
    if embed(small, small.root(), big, big.root(), &mut w) {
        Some(w)
    } else {
        None
    }
}

/// Check `small ⊑_uri big` without materialising the witness.
pub fn is_contained(small: &DocView<'_>, big: &DocView<'_>) -> bool {
    containment_witness(small, big).is_some()
}

fn labels_match(small: &DocView<'_>, s: NodeId, big: &DocView<'_>, b: NodeId) -> bool {
    let (Some(sn), Some(bn)) = (small.node(s), big.node(b)) else {
        return false;
    };
    let kinds_match = match (sn.kind(), bn.kind()) {
        (NodeKind::Element { name: a }, NodeKind::Element { name: c }) => a == c,
        (NodeKind::Text { value: a }, NodeKind::Text { value: c }) => a == c,
        _ => false,
    };
    if !kinds_match {
        return false;
    }
    // Explicit attributes of the small node must be preserved verbatim.
    for (k, v) in sn.attrs() {
        if bn.attr(k) != Some(v.as_str()) {
            return false;
        }
    }
    // URI preservation: if the small node is identified, the big node must
    // carry the same identifier (uri may be *added* by big, never changed).
    if let Some(uri) = small.uri(s) {
        if big.uri(b) != Some(uri) {
            return false;
        }
    }
    true
}

fn embed(
    small: &DocView<'_>,
    s: NodeId,
    big: &DocView<'_>,
    b: NodeId,
    w: &mut ContainmentWitness,
) -> bool {
    if !labels_match(small, s, big, b) {
        return false;
    }
    let s_children = small.children(s);
    let b_children = big.children(b);
    let mut bi = 0usize;
    let mut local: Vec<(NodeId, NodeId)> = Vec::with_capacity(s_children.len());
    'outer: for &sc in s_children {
        // If the small child carries a URI, anchor the match on it: greedy
        // label matching could otherwise bind to a look-alike sibling.
        let anchor = small.uri(sc);
        while bi < b_children.len() {
            let bc = b_children[bi];
            bi += 1;
            let candidate_ok = match anchor {
                Some(uri) => big.uri(bc) == Some(uri),
                None => true,
            };
            if candidate_ok && embed(small, sc, big, bc, w) {
                local.push((sc, bc));
                continue 'outer;
            }
        }
        return false;
    }
    for (sc, bc) in local {
        w.mapping.insert(sc, bc);
    }
    w.mapping.insert(s, b);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn identical_documents_are_contained() {
        let mut a = Document::new("R");
        let ar = a.root();
        a.append_element(ar, "X").unwrap();
        let b = a.clone();
        assert!(is_contained(&a.view(), &b.view()));
        assert!(is_contained(&b.view(), &a.view()));
    }

    #[test]
    fn appended_fragment_preserves_containment() {
        let mut a = Document::new("R");
        a.append_element(a.root(), "X").unwrap();
        let mut b = a.clone();
        let y = b.append_element(b.root(), "Y").unwrap();
        b.append_text(y, "new").unwrap();
        assert!(is_contained(&a.view(), &b.view()));
        assert!(!is_contained(&b.view(), &a.view()));
    }

    #[test]
    fn insertion_between_siblings_is_still_containment() {
        // small: R -> [A, C]; big: R -> [A, B, C]
        let mut small = Document::new("R");
        small.append_element(small.root(), "A").unwrap();
        small.append_element(small.root(), "C").unwrap();
        let mut big = Document::new("R");
        big.append_element(big.root(), "A").unwrap();
        big.append_element(big.root(), "B").unwrap();
        big.append_element(big.root(), "C").unwrap();
        assert!(is_contained(&small.view(), &big.view()));
    }

    #[test]
    fn reordering_breaks_containment() {
        let mut small = Document::new("R");
        small.append_element(small.root(), "A").unwrap();
        small.append_element(small.root(), "B").unwrap();
        let mut big = Document::new("R");
        big.append_element(big.root(), "B").unwrap();
        big.append_element(big.root(), "A").unwrap();
        assert!(!is_contained(&small.view(), &big.view()));
    }

    #[test]
    fn uri_change_breaks_containment() {
        let mut small = Document::new("R");
        let x = small.append_element(small.root(), "X").unwrap();
        small.register_resource(x, "r1", None).unwrap();
        let mut big = Document::new("R");
        let y = big.append_element(big.root(), "X").unwrap();
        big.register_resource(y, "r2", None).unwrap();
        assert!(!is_contained(&small.view(), &big.view()));
    }

    #[test]
    fn uri_addition_is_allowed() {
        // big may promote nodes to resources (node 3 → r3 in the paper)
        let mut small = Document::new("R");
        small.append_element(small.root(), "X").unwrap();
        let mut big = Document::new("R");
        let y = big.append_element(big.root(), "X").unwrap();
        big.register_resource(y, "r3", None).unwrap();
        assert!(is_contained(&small.view(), &big.view()));
    }

    #[test]
    fn uri_anchor_skips_lookalike_sibling() {
        // small: R -> [X(uri=r9)]
        // big:   R -> [X(no uri, with extra child), X(uri=r9)]
        // greedy label matching without the anchor would try the first X and
        // succeed wrongly or fail; the anchor forces the second.
        let mut small = Document::new("R");
        let x = small.append_element(small.root(), "X").unwrap();
        small.register_resource(x, "r9", None).unwrap();
        let mut big = Document::new("R");
        let x1 = big.append_element(big.root(), "X").unwrap();
        big.append_element(x1, "Junk").unwrap();
        let x2 = big.append_element(big.root(), "X").unwrap();
        big.register_resource(x2, "r9", None).unwrap();
        let w = containment_witness(&small.view(), &big.view()).unwrap();
        assert_eq!(w.mapping.get(&x), Some(&x2));
    }

    #[test]
    fn attribute_loss_breaks_containment() {
        let mut small = Document::new("R");
        let x = small.append_element(small.root(), "X").unwrap();
        small.set_attr(x, "lang", "fr").unwrap();
        let mut big = Document::new("R");
        big.append_element(big.root(), "X").unwrap();
        assert!(!is_contained(&small.view(), &big.view()));
    }

    #[test]
    fn witness_maps_every_small_node() {
        let mut small = Document::new("R");
        let a = small.append_element(small.root(), "A").unwrap();
        small.append_text(a, "t").unwrap();
        let mut big = small.clone();
        big.append_element(big.root(), "Extra").unwrap();
        let w = containment_witness(&small.view(), &big.view()).unwrap();
        assert_eq!(w.mapping.len(), 3); // root, A, text
    }
}
