//! X10 — Thread-scaling of the parallel inference executor and the shared
//! pattern-evaluation cache.
//!
//! Fixes the workload (the 48-call synthetic trace of X1) and sweeps the
//! engine's `parallelism` knob over the per-call TemporalRewrite strategy
//! (48 independent units sharing one pattern cache). Two reference rows
//! anchor the sweep: `grouped_sequential` is the strongest sequential
//! strategy from X1, and `percall_uncached` replays the pre-cache temporal
//! path — rewrite both patterns per call, re-evaluate them on the final
//! document, join — which is what `temporal/1` replaces.
//!
//! Expected shape (recorded in EXPERIMENTS.md): `temporal/1` collapses the
//! 2·|calls| pattern evaluations of `percall_uncached` into 2 cached ones,
//! and the thread rows then divide the remaining per-call filter/join work
//! by the worker count — *when the host has cores to give*. On a
//! single-core container the thread rows measure pure executor overhead
//! instead; see the EXPERIMENTS.md note.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_bench::run_synthetic;
use weblab_prov::{
    infer_provenance, join_tables, EngineOptions, Parallelism, Strategy,
};
use weblab_xpath::{add_source_constraints, add_target_constraints, eval_pattern};

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("x10_threads");
    group.sample_size(10);
    let executed = run_synthetic(42, 48, 4, 0);

    // Sequential reference: the best single-threaded strategy from X1.
    group.bench_with_input(
        BenchmarkId::new("grouped_sequential", 48),
        &executed,
        |b, e| {
            let opts = EngineOptions {
                strategy: Strategy::GroupedSinglePass,
                parallelism: Parallelism::Sequential,
                ..Default::default()
            };
            b.iter(|| {
                black_box(
                    infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                        .links
                        .len(),
                )
            });
        },
    );

    // Cache ablation: the pre-cache per-call temporal path — constrain and
    // re-evaluate both rule patterns for every one of the 48 calls.
    group.bench_with_input(
        BenchmarkId::new("percall_uncached", 48),
        &executed,
        |b, e| {
            let view = e.doc.view();
            b.iter(|| {
                let mut n = 0usize;
                for call in &e.trace.calls {
                    for rule in e.rules.rules_for(&call.service) {
                        let s = eval_pattern(
                            &add_source_constraints(&rule.source, call.time),
                            &view,
                        );
                        let t = eval_pattern(
                            &add_target_constraints(&rule.target, &call.service, call.time),
                            &view,
                        );
                        n += join_tables(&s, &t, Default::default()).len();
                    }
                }
                black_box(n)
            });
        },
    );

    // Thread sweep over the 48 per-call units of TemporalRewrite.
    for (name, parallelism) in [
        ("temporal/1", Parallelism::Threads(1)),
        ("temporal/2", Parallelism::Threads(2)),
        ("temporal/4", Parallelism::Threads(4)),
        ("temporal/8", Parallelism::Threads(8)),
        ("temporal/auto", Parallelism::Auto),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 48), &executed, |b, e| {
            let opts = EngineOptions {
                strategy: Strategy::TemporalRewrite,
                parallelism,
                ..Default::default()
            };
            b.iter(|| {
                black_box(
                    infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                        .links
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
