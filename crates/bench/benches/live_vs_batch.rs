//! X12 — Live maintenance vs batch inference.
//!
//! Live provenance maintenance folds each committed call into a
//! materialised link store from the orchestrator's call-completion hook
//! (incremental channel map, shared pattern cache, O(delta) per call);
//! batch inference pays the whole cost once at the end. This experiment
//! measures both totals over the same workloads. Expected shape: the
//! summed cost of all live deltas stays within a small constant factor of
//! the single batch pass — the price of having the graph queryable after
//! *every* call instead of only at the end — and does not degrade
//! super-linearly as the workflow grows (the trap a naive per-call
//! re-inference falls into by rebuilding the channel map per delta).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

use weblab_prov::{infer_provenance, EngineOptions, LiveProvenance};
use weblab_workflow::generator::synthetic_workload;
use weblab_workflow::Orchestrator;

fn bench_live_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("x12_live_vs_batch");
    group.sample_size(10);
    for n_calls in [8usize, 24, 48] {
        group.bench_with_input(
            BenchmarkId::new("execute_then_batch", n_calls),
            &n_calls,
            |b, &n| {
                b.iter(|| {
                    let (mut doc, wf, rules) = synthetic_workload(1, n, 4, 5);
                    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
                    let g = infer_provenance(
                        &doc,
                        &outcome.trace,
                        &rules,
                        &EngineOptions::default(),
                    );
                    black_box(g.links.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute_live", n_calls),
            &n_calls,
            |b, &n| {
                b.iter(|| {
                    let (mut doc, wf, rules) = synthetic_workload(1, n, 4, 5);
                    let maintainer = Arc::new(Mutex::new(LiveProvenance::new(
                        rules,
                        EngineOptions::default(),
                    )));
                    let hook = Arc::clone(&maintainer);
                    let orch = Orchestrator::new().with_call_hook(Arc::new(
                        move |d, t, i| {
                            hook.lock().unwrap().observe_call(d, t, i);
                        },
                    ));
                    let outcome = orch.execute(&wf, &mut doc).unwrap();
                    let mut lp = maintainer.lock().unwrap();
                    lp.catch_up(&doc, &outcome.trace);
                    black_box(lp.link_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_live_vs_batch);
criterion_main!(benches);
