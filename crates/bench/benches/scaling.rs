//! X2 — Scaling in document size.
//!
//! Fixes the workflow length (8 calls) and sweeps per-call fan-out, so the
//! final document grows from tens to thousands of resources; measures the
//! default strategy end to end plus bare pattern evaluation. Expected
//! shape: near-linear growth for pattern evaluation (Core XPath is linear
//! per axis step) and slightly superlinear growth for full inference
//! (per-call source tables grow with the document).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use weblab_bench::{run_synthetic, wide_document};
use weblab_prov::{infer_provenance, EngineOptions};
use weblab_xpath::{eval_pattern, parse_pattern};

fn bench_inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("x2_inference_vs_doc_size");
    group.sample_size(10);
    for fanout in [4usize, 16, 64] {
        let executed = run_synthetic(7, 8, fanout, 0);
        let resources = executed.doc.resource_nodes().len();
        group.throughput(Throughput::Elements(resources as u64));
        for (name, use_index) in [("indexed", true), ("scan", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, resources),
                &executed,
                |b, e| {
                    let opts = EngineOptions {
                        use_index,
                        ..Default::default()
                    };
                    b.iter(|| {
                        black_box(
                            infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                                .links
                                .len(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_pattern_eval_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("x2_pattern_eval_vs_doc_size");
    group.sample_size(10);
    let pattern = parse_pattern("//Item[$x := @key]").unwrap();
    for leaves in [100usize, 1000, 10000] {
        let doc = wide_document(leaves);
        group.throughput(Throughput::Elements(leaves as u64));
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &doc, |b, d| {
            b.iter(|| black_box(eval_pattern(&pattern, &d.view()).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference_scaling, bench_pattern_eval_scaling);
criterion_main!(benches);
