//! X6 — Recorder XML-diff cost versus document size.
//!
//! The Recorder's exchange path diffs a full response document against the
//! stored state. Measures (a) the general structural diff between two
//! independent documents and (b) the in-arena `new_fragments_since`
//! shortcut used by in-process execution. Expected shape: both linear in
//! document size, with the in-arena path one to two orders of magnitude
//! cheaper — quantifying what the append-only arena buys the platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use weblab_bench::wide_document;
use weblab_xml::diff_documents;

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("x6_xml_diff");
    group.sample_size(10);
    for leaves in [100usize, 1000, 5000] {
        // old = the document with `leaves` items; new = old + 10% appended
        let mut new_doc = wide_document(leaves);
        let old_mark = new_doc.mark();
        let old_doc = new_doc.materialize_state(old_mark);
        let root = new_doc.root();
        for i in 0..(leaves / 10).max(1) {
            let n = new_doc.append_element(root, "Item").unwrap();
            new_doc.set_attr(n, "key", format!("new{i}")).unwrap();
            new_doc
                .register_resource(n, format!("new/{i}"), None)
                .unwrap();
        }

        group.throughput(Throughput::Elements(leaves as u64));
        group.bench_with_input(
            BenchmarkId::new("general_structural_diff", leaves),
            &(old_doc, new_doc.clone()),
            |b, (old, new)| {
                b.iter(|| {
                    black_box(
                        diff_documents(&old.view(), &new.view())
                            .unwrap()
                            .fragment_roots
                            .len(),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("in_arena_marks", leaves),
            &new_doc,
            |b, doc| {
                b.iter(|| black_box(doc.new_fragments_since(old_mark).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diff);
criterion_main!(benches);
