//! X7 — Ablation of the compiled-XQuery optimisations (Example 9's claim).
//!
//! Compiles the M2-style rule for one call and evaluates it on documents
//! with a growing number of TextMediaUnits, toggling (a) ID-join fusion
//! and (b) eager where-conjunct scheduling. Expected shape: the unfused,
//! lazy variant grows quadratically (the cross product of the two
//! `//TextMediaUnit` loops); fusion removes the second loop and restores
//! near-linear growth; eager scheduling alone also prunes the cross
//! product early but keeps the redundant scan, landing in between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use weblab_prov::MappingRule;
use weblab_workflow::generator::generate_corpus;
use weblab_workflow::services::{LanguageExtractor, Normaliser};
use weblab_workflow::{Orchestrator, Workflow};
use weblab_xml::Document;
use weblab_xquery::{compile_rule, evaluate_with, fuse_id_joins, XqEvalOptions};

fn annotated_corpus(n_native: usize) -> Document {
    let mut doc = generate_corpus(11, n_native, 30);
    let wf = Workflow::new().then(Normaliser).then(LanguageExtractor);
    Orchestrator::new().execute(&wf, &mut doc).unwrap();
    doc
}

fn bench_xquery_opt(c: &mut Criterion) {
    let rule = MappingRule::parse(
        "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]",
    )
    .unwrap();
    let compiled = compile_rule(&rule, Some(("LanguageExtractor", 2))).unwrap();
    let fused = fuse_id_joins(&compiled);

    let mut group = c.benchmark_group("x7_xquery_optimisation");
    group.sample_size(10);
    for n_units in [8usize, 32, 128] {
        let doc = annotated_corpus(n_units);
        group.throughput(Throughput::Elements(n_units as u64));
        for (name, query, eager) in [
            ("unfused_lazy", &compiled, false),
            ("unfused_eager", &compiled, true),
            ("fused_lazy", &fused, false),
            ("fused_eager", &fused, true),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n_units),
                &doc,
                |b, d| {
                    let opts = XqEvalOptions { eager_where: eager };
                    b.iter(|| black_box(evaluate_with(query, &d.view(), &opts).len()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_xquery_opt);
criterion_main!(benches);
