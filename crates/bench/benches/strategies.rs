//! X1 — Evaluation-strategy comparison (the paper's Section 4 argument).
//!
//! Sweeps workflow length over the synthetic workload and measures the
//! four inference strategies. Expected shape (recorded in EXPERIMENTS.md):
//! materialising StateReplay is slowest and degrades quadratically;
//! zero-copy replay and per-call TemporalRewrite track each other;
//! GroupedSinglePass wins and grows most slowly, because it evaluates each
//! rule once per service instead of once per call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_bench::run_synthetic;
use weblab_prov::{infer_provenance, EngineOptions, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("x1_strategies");
    group.sample_size(10);
    for n_calls in [8usize, 24, 48] {
        let executed = run_synthetic(42, n_calls, 4, 0);
        for (name, strategy) in [
            ("replay_materialized", Strategy::StateReplay { materialize: true }),
            ("replay_views", Strategy::StateReplay { materialize: false }),
            ("temporal_rewrite", Strategy::TemporalRewrite),
            ("grouped_single_pass", Strategy::GroupedSinglePass),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n_calls), &executed, |b, e| {
                let opts = EngineOptions {
                    strategy,
                    ..Default::default()
                };
                b.iter(|| {
                    black_box(
                        infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                            .links
                            .len(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
