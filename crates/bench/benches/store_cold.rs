//! X15 — disk-backed store: resident vs cold-load query latency,
//! eviction throughput, and restart replay over the sharded store.
//!
//! Populates a store-attached [`weblab_platform::Platform`] with
//! [`X15_EXECS`] executions of the six-service pipeline, then drives the
//! same mixed query workload (`why`, `lineage`, `impacted-by`, `sparql`)
//! through `serve::handle_line` — the exact dispatch the daemon's workers
//! run — in three phases:
//!
//! * **resident** — every execution in memory; per-request latency lands
//!   in the `x15.resident_ns` histogram;
//! * **cold** — each execution is evicted (write-through + drop from the
//!   repository) and re-queried; the first request after eviction pays
//!   the cold load (segment/delta/snapshot read + index restore) and is
//!   recorded in `x15.cold_ns`;
//! * **restart** — a fresh platform over the same store directory
//!   replays the whole suite, timing the full cold working-set rebuild.
//!
//! Every cold and restarted response is asserted **byte-identical** to
//! its resident counterpart — same epoch, same rows, same order — which
//! is the store's headline contract. Results are written to
//! `BENCH_X15_store.json` at the repo root (the artifact
//! `scripts/ci.sh` validates).
//!
//! Under `cargo test` (`--test`) the harness runs scaled down as a
//! correctness smoke and skips the timing assertions and the snapshot
//! write. `X15_EXECS` / `X15_ROUNDS` override the load shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use weblab::json::Json;
use weblab::serve::handle_line;
use weblab_obs as obs;
use weblab_obs::Histogram;
use weblab_platform::{Mapper, Platform, ProvStore};
use weblab_rdf::vocab::PROV_NS;
use weblab_workflow::generator::generate_corpus;
use weblab_workflow::services::{
    self, EntityExtractor, KeywordExtractor, LanguageExtractor, Normaliser, Summariser, Tokeniser,
};
use weblab_workflow::Service;

const PIPELINE: [&str; 6] = [
    "Normaliser",
    "LanguageExtractor",
    "Tokeniser",
    "EntityExtractor",
    "KeywordExtractor",
    "Summariser",
];

/// Client-observed latency of one query against a resident execution, ns.
static X15_RESIDENT_NS: Histogram = Histogram::new("x15.resident_ns");
/// Latency of the first query after eviction — it pays the cold load, ns.
static X15_COLD_NS: Histogram = Histogram::new("x15.cold_ns");

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A platform with the pipeline registered and the store at `dir`
/// attached with room for the whole working set plus slack.
fn store_platform(dir: &Path, max_resident: usize) -> Platform {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
        Box::new(EntityExtractor),
        Box::new(KeywordExtractor),
        Box::new(Summariser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    platform
        .attach_store(ProvStore::open(dir).unwrap(), max_resident)
        .unwrap();
    platform
}

/// The mixed query suite for one execution, as protocol lines keyed off
/// its first provenance link.
fn exec_queries(platform: &Platform, id: &str) -> Vec<String> {
    let snap = platform.execution(id).snapshot().unwrap();
    let link = snap.graph.links.first().expect("execution produced links");
    let (from, to) = (link.from_uri.as_str(), link.to_uri.as_str());
    vec![
        Json::obj(vec![
            ("op", Json::str("why")),
            ("exec", Json::str(id)),
            ("uri", Json::str(from)),
        ])
        .to_string(),
        Json::obj(vec![
            ("op", Json::str("lineage")),
            ("exec", Json::str(id)),
            ("uri", Json::str(from)),
            ("depth", Json::num(3)),
        ])
        .to_string(),
        Json::obj(vec![
            ("op", Json::str("impacted-by")),
            ("exec", Json::str(id)),
            ("uri", Json::str(to)),
        ])
        .to_string(),
        Json::obj(vec![
            ("op", Json::str("sparql")),
            ("exec", Json::str(id)),
            (
                "query",
                Json::str(format!(
                    "PREFIX prov: <{PROV_NS}> \
                     SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}"
                )),
            ),
        ])
        .to_string(),
    ]
}

/// Dispatch one line and assert it answered (`ok:true`).
fn serve_ok(platform: &Platform, line: &str) -> String {
    let (response, stop) = handle_line(platform, line);
    assert!(!stop);
    let parsed = Json::parse(&response).expect("response is JSON");
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "query failed: {response}"
    );
    response
}

fn quantiles(name: &str) -> (u64, u64) {
    let snap = obs::snapshot();
    let h = snap.histogram(name).cloned().unwrap_or_default();
    (h.quantile(0.50), h.quantile(0.99))
}

fn bench_x15(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let execs = env_usize("X15_EXECS", if test_mode { 3 } else { 16 });
    let rounds = env_usize("X15_ROUNDS", if test_mode { 1 } else { 4 });

    obs::enable();
    let dir = std::env::temp_dir().join(format!("weblab-x15-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let platform = store_platform(&dir, execs + 1);
    let ids: Vec<String> = (0..execs).map(|i| format!("x15/e{i}")).collect();
    for id in &ids {
        let exec = platform.execution(id);
        exec.ingest(generate_corpus(4, 2, 20));
        exec.execute(&PIPELINE).unwrap();
    }
    let suites: Vec<Vec<String>> = ids.iter().map(|id| exec_queries(&platform, id)).collect();

    let before = obs::snapshot();

    // resident phase: everything in memory, `rounds` passes over the suite
    let mut expected: Vec<Vec<String>> = vec![Vec::new(); ids.len()];
    for round in 0..rounds {
        for (i, suite) in suites.iter().enumerate() {
            for line in suite {
                let t0 = Instant::now();
                let response = serve_ok(&platform, line);
                X15_RESIDENT_NS.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                if round == 0 {
                    expected[i].push(response);
                }
            }
        }
    }

    // cold phase: evict every execution each round, then re-query; the
    // first request after eviction pays the cold load
    let mut byte_identical = true;
    let mut evict_ns = 0u64;
    let mut cold_loads_timed = 0u64;
    for _ in 0..rounds {
        for (i, id) in ids.iter().enumerate() {
            let t0 = Instant::now();
            assert!(
                platform.execution(id).evict().unwrap(),
                "{id} was not resident at eviction time"
            );
            evict_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            for (k, line) in suites[i].iter().enumerate() {
                let t0 = Instant::now();
                let response = serve_ok(&platform, line);
                if k == 0 {
                    X15_COLD_NS
                        .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    cold_loads_timed += 1;
                }
                byte_identical &= response == expected[i][k];
            }
        }
    }
    assert!(byte_identical, "cold-loaded responses diverged from resident bytes");

    // seal the append-only deltas into segments before the restart replay
    let sealed = platform.store().unwrap().compact_all().unwrap();
    drop(platform);

    // restart phase: a fresh platform over the same directory replays the
    // whole suite — every execution cold-loads from segments + snapshots
    let restarted = store_platform(&dir, execs + 1);
    let t0 = Instant::now();
    let mut restart_queries = 0u64;
    for (i, suite) in suites.iter().enumerate() {
        for (k, line) in suite.iter().enumerate() {
            let response = serve_ok(&restarted, line);
            assert_eq!(
                response, expected[i][k],
                "restart changed served bytes for {}",
                ids[i]
            );
            restart_queries += 1;
        }
    }
    let restart_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

    let delta = obs::snapshot().since(&before);
    let evictions = delta.counter("store.evictions");
    let cold_loads = delta.counter("store.cold_loads");
    let segments = delta.counter("store.segments");
    let snapshots = delta.counter("store.snapshots");
    assert!(evictions >= (execs * rounds) as u64, "too few evictions recorded");
    assert!(
        cold_loads >= cold_loads_timed + execs as u64,
        "cold loads must cover every eviction plus the restart replay"
    );
    assert!(segments >= 1, "compaction sealed no segments");

    let (resident_p50, resident_p99) = quantiles("x15.resident_ns");
    let (cold_p50, cold_p99) = quantiles("x15.cold_ns");
    let evict_rate = evictions as f64 / (evict_ns.max(1) as f64 / 1e9);
    let ratio = cold_p50 as f64 / resident_p50.max(1) as f64;
    println!(
        "x15_store/resident: p50 {:.1} us, p99 {:.1} us over {} queries",
        resident_p50 as f64 / 1e3,
        resident_p99 as f64 / 1e3,
        (execs * rounds * 4)
    );
    println!(
        "x15_store/cold:     p50 {:.1} us, p99 {:.1} us over {cold_loads_timed} loads ({ratio:.1}x resident)",
        cold_p50 as f64 / 1e3,
        cold_p99 as f64 / 1e3,
    );
    println!(
        "x15_store/evict: {evictions} write-through evictions ({evict_rate:.0}/s); \
         restart replayed {restart_queries} queries in {:.1} ms over {sealed} compacted executions",
        restart_ns as f64 / 1e6
    );

    let _ = std::fs::remove_dir_all(&dir);
    if test_mode {
        obs::disable();
        return; // scaled-down smoke: skip timing assertions + snapshot
    }
    assert!(
        ratio >= 1.0,
        "a cold load must not be cheaper than a resident lookup, got {ratio:.2}x"
    );

    let snapshot = format!(
        "{{\n  \"experiment\": \"X15\",\n  \"executions\": {execs},\n  \"rounds\": {rounds},\n  \
           \"byte_identical\": true,\n  \
           \"resident\": {{\"queries\": {}, \"p50_ns\": {resident_p50}, \"p99_ns\": {resident_p99}}},\n  \
           \"cold\": {{\"loads\": {cold_loads_timed}, \"p50_ns\": {cold_p50}, \"p99_ns\": {cold_p99}, \
           \"over_resident\": {ratio:.1}}},\n  \
           \"evict\": {{\"count\": {evictions}, \"wall_ns\": {evict_ns}, \"per_sec\": {evict_rate:.0}}},\n  \
           \"restart\": {{\"queries\": {restart_queries}, \"wall_ns\": {restart_ns}, \
           \"compacted\": {sealed}}},\n  \
           \"counters\": {{\"cold_loads\": {cold_loads}, \"evictions\": {evictions}, \
           \"segments\": {segments}, \"snapshots\": {snapshots}}}\n}}\n",
        (execs * rounds * 4)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_X15_store.json");
    std::fs::write(path, snapshot).expect("write BENCH_X15_store.json");
    println!("x15_store/snapshot written to {path}");
    obs::disable();
}

criterion_group!(benches, bench_x15);
criterion_main!(benches);
