//! X11 — Overhead of the observability layer (`weblab-obs`).
//!
//! Two questions, each answered at micro and engine scale:
//!
//! 1. What does a *disabled* metric cost? The design target is a single
//!    relaxed atomic load and a predictable branch — close enough to free
//!    that instrumentation can stay unconditionally compiled into the hot
//!    paths (`counter_disabled` vs the empty-loop `counter_baseline`).
//! 2. What does *enabled* collection cost end-to-end? `infer_enabled` vs
//!    `infer_disabled` runs the same grouped inference over the 48-call
//!    synthetic trace with collection switched on and off; the gap is the
//!    price of `weblab --metrics`.
//!
//! The micro benches iterate the op 1024× per criterion sample so the
//! measured quantity is the amortised per-op cost, not timer noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_bench::run_synthetic;
use weblab_obs::{Counter, Histogram, Span};
use weblab_prov::{infer_provenance, EngineOptions, Strategy};

static BENCH_COUNTER: Counter = Counter::new("bench.obs.counter");
static BENCH_HIST: Histogram = Histogram::new("bench.obs.histogram");

const OPS: u64 = 1024;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("x11_obs_micro");

    group.bench_function(BenchmarkId::new("counter_baseline", OPS), |b| {
        weblab_obs::disable();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        });
    });

    group.bench_function(BenchmarkId::new("counter_disabled", OPS), |b| {
        weblab_obs::disable();
        b.iter(|| {
            for i in 0..OPS {
                BENCH_COUNTER.add(black_box(i) & 1);
            }
        });
    });

    group.bench_function(BenchmarkId::new("counter_enabled", OPS), |b| {
        weblab_obs::enable();
        b.iter(|| {
            for i in 0..OPS {
                BENCH_COUNTER.add(black_box(i) & 1);
            }
        });
        weblab_obs::disable();
    });

    group.bench_function(BenchmarkId::new("span_disabled", OPS), |b| {
        weblab_obs::disable();
        b.iter(|| {
            for _ in 0..OPS {
                let span = Span::start(&BENCH_HIST);
                black_box(&span);
            }
        });
    });

    group.bench_function(BenchmarkId::new("span_enabled", OPS), |b| {
        weblab_obs::enable();
        b.iter(|| {
            for _ in 0..OPS {
                let span = Span::start(&BENCH_HIST);
                black_box(&span);
            }
        });
        weblab_obs::disable();
    });

    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("x11_obs_engine");
    group.sample_size(10);
    let executed = run_synthetic(42, 48, 4, 0);
    let opts = EngineOptions {
        strategy: Strategy::GroupedSinglePass,
        ..Default::default()
    };

    for (name, enabled) in [("infer_disabled", false), ("infer_enabled", true)] {
        group.bench_with_input(BenchmarkId::new(name, 48), &executed, |b, e| {
            if enabled {
                weblab_obs::enable();
            } else {
                weblab_obs::disable();
            }
            b.iter(|| {
                black_box(
                    infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                        .links
                        .len(),
                )
            });
            weblab_obs::disable();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro, bench_engine);
criterion_main!(benches);
