//! X5 — PROV-O export and SPARQL query latency.
//!
//! Export a provenance graph of growing size into the triple store, then
//! measure (a) export itself, (b) a selective one-hop SPARQL lookup and
//! (c) a two-hop derivation-chain join. Expected shape: export is linear
//! in links; the selective lookup is effectively constant thanks to the
//! POS/SPO indexes; the chain join grows with the number of derivation
//! edges but stays far below quadratic because the second pattern is
//! bound by the first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use weblab_bench::run_synthetic;
use weblab_prov::{infer_provenance, EngineOptions};
use weblab_rdf::vocab::PROV_NS;
use weblab_rdf::{export_prov, export_prov_into, parse_select, select, TripleStore};

fn bench_rdf(c: &mut Criterion) {
    let mut export_group = c.benchmark_group("x5_export");
    export_group.sample_size(10);
    let mut prepared = Vec::new();
    for n_calls in [8usize, 32, 96] {
        let executed = run_synthetic(3, n_calls, 4, 0);
        let graph = infer_provenance(
            &executed.doc,
            &executed.trace,
            &executed.rules,
            &EngineOptions::default(),
        );
        let links = graph.links.len();
        export_group.throughput(Throughput::Elements(links as u64));
        export_group.bench_with_input(
            BenchmarkId::from_parameter(links),
            &graph,
            |b, g| {
                b.iter(|| black_box(export_prov(g).len()));
            },
        );
        let mut store = TripleStore::new();
        export_prov_into(&graph, &mut store);
        let probe = graph.links[links / 2].from_uri.clone();
        prepared.push((links, store, probe));
    }
    export_group.finish();

    let mut query_group = c.benchmark_group("x5_sparql");
    query_group.sample_size(10);
    for (links, store, probe) in &prepared {
        let lookup = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> SELECT ?s WHERE {{ <{probe}> prov:wasDerivedFrom ?s . }}"
        ))
        .unwrap();
        query_group.bench_with_input(
            BenchmarkId::new("one_hop_lookup", links),
            store,
            |b, st| {
                b.iter(|| black_box(select(st, &lookup).len()));
            },
        );
        let chain = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> SELECT ?a ?b ?c WHERE {{ \
               ?a prov:wasDerivedFrom ?b . ?b prov:wasDerivedFrom ?c . }}"
        ))
        .unwrap();
        query_group.bench_with_input(
            BenchmarkId::new("two_hop_chain", links),
            store,
            |b, st| {
                b.iter(|| black_box(select(st, &chain).len()));
            },
        );
    }
    query_group.finish();
}

criterion_group!(benches, bench_rdf);
criterion_main!(benches);
