//! X16 — provenance-guided incremental replay vs full re-execution.
//!
//! A corpus of [`X16_SOURCES`] independent sources is mined by one
//! per-source service each (an expensive, deterministic digest over the
//! source text), so the provenance graph is a disjoint union of
//! source→unit chains and the dirty cone of a changed-source set is
//! exactly its own chains. The experiment mutates 10% and 50% of the
//! sources and compares:
//!
//! * **full** — re-executing the whole workflow on the changed corpus;
//! * **replay** — `Orchestrator::replay` under [`ProofMode::Trusted`],
//!   re-executing only the dirty services and splicing the rest forward.
//!
//! Every replayed document is asserted **byte-identical** to the full
//! re-run — the headline replay contract — and the `replay.*` counters
//! are cross-checked against the scenario's dirty fraction. Results go to
//! `BENCH_X16_replay.json` at the repo root (validated by
//! `scripts/ci.sh`); the acceptance bar is a ≥2x wall-clock win at the
//! 10% dirty cone.
//!
//! Under `cargo test` (`--test`) the harness runs scaled down as a
//! correctness smoke and skips the timing assertions and the snapshot
//! write. `X16_SOURCES` / `X16_ROUNDS` / `X16_WORK` override the shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::time::Instant;

use weblab_obs as obs;
use weblab_prov::{
    dirty_cone, infer_provenance, EngineOptions, InheritMode, ReachabilityIndex, RuleSet,
};
use weblab_workflow::{CallContext, Orchestrator, ProofMode, Service, Workflow, WorkflowError};
use weblab_xml::{to_xml_string, CallLabel, Document};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic per-source miner: digests its source's text with an
/// expensive FNV loop (`work` rounds) and appends one `TextMediaUnit`
/// linked back via `@origin` — the canonical mapping-rule shape, so each
/// miner's unit depends on exactly its own source.
struct SourceMiner {
    name: String,
    source_uri: String,
    work: usize,
}

impl SourceMiner {
    fn new(i: usize, work: usize) -> Self {
        SourceMiner {
            name: format!("Miner{i}"),
            source_uri: format!("weblab://src/{i}"),
            work,
        }
    }
}

impl Service for SourceMiner {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let v = doc.view();
        let root = doc.root();
        let text = v
            .descendants(root)
            .find(|&n| v.uri(n) == Some(&self.source_uri))
            .map(|n| v.text_content(n))
            .ok_or_else(|| WorkflowError::Service {
                service: self.name.clone(),
                message: format!("source {} not found", self.source_uri),
            })?;
        // The expensive, fully deterministic "mining" step.
        let mut digest: u64 = 0xcbf29ce484222325;
        for _ in 0..self.work {
            for b in text.bytes() {
                digest ^= u64::from(b);
                digest = digest.wrapping_mul(0x100000001b3);
            }
        }
        let unit = doc.append_element(root, "TextMediaUnit")?;
        doc.set_attr(unit, "origin", self.source_uri.clone())?;
        doc.set_attr(unit, "digest", format!("{digest:016x}"))?;
        doc.append_text(unit, format!("mined {} bytes", text.len()))?;
        ctx.register(doc, unit)?;
        Ok(())
    }
}

/// A corpus with `n` independent sources, payloads varied by `salt`.
fn corpus(n: usize, salt: u64, dirty: &HashSet<usize>) -> Document {
    let mut d = Document::new("Resource");
    let root = d.root();
    d.register_resource(root, "weblab://doc/x16", None).unwrap();
    for i in 0..n {
        let el = d.append_element(root, "NativeContent").unwrap();
        d.set_attr(el, "mime", "text/plain").unwrap();
        d.register_resource(el, format!("weblab://src/{i}"), Some(CallLabel::new("Source", 0)))
            .unwrap();
        let version = if dirty.contains(&i) { salt } else { 0 };
        d.append_text(el, format!("source {i} revision {version} of the archive text"))
            .unwrap();
    }
    d
}

fn bench_x16(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let sources = env_usize("X16_SOURCES", if test_mode { 10 } else { 20 });
    let rounds = env_usize("X16_ROUNDS", if test_mode { 1 } else { 5 });
    let work = env_usize("X16_WORK", if test_mode { 200 } else { 20_000 });

    obs::enable();

    let mut wf = Workflow::new();
    let mut rules = RuleSet::new();
    for i in 0..sources {
        wf = wf.then(SourceMiner::new(i, work));
        rules
            .add_parsed(
                format!("Miner{i}"),
                "//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]",
            )
            .unwrap();
    }

    let mut prior_doc = corpus(sources, 0, &HashSet::new());
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

    // The cone comes from the prior run's provenance, as `weblab replay`
    // computes it: inherit-mode inference + reachability closure.
    let graph = infer_provenance(
        &prior_doc,
        &prior.trace,
        &rules,
        &EngineOptions {
            inherit: InheritMode::PatternRewrite,
            ..EngineOptions::default()
        },
    );
    let index = ReachabilityIndex::from_graph(&graph);

    let mut scenario_lines = Vec::new();
    let mut speedup_at_10 = 0.0f64;
    for dirty_pct in [10usize, 50] {
        let n_dirty = (sources * dirty_pct).div_ceil(100).max(1);
        // Spread the dirty set across the corpus.
        let dirty_idx: HashSet<usize> = (0..n_dirty).map(|k| k * sources / n_dirty).collect();
        let changed_uris: Vec<String> = dirty_idx
            .iter()
            .map(|i| format!("weblab://src/{i}"))
            .collect();
        let cone: HashSet<String> =
            dirty_cone(&index, &changed_uris).into_iter().collect();

        let mut full_ns = 0u64;
        let mut replay_ns = 0u64;
        let mut recomputed = 0usize;
        let mut reused = 0usize;
        let mut byte_identical = true;
        for round in 0..rounds {
            let salt = 1 + round as u64;
            let mut full_doc = corpus(sources, salt, &dirty_idx);
            let t0 = Instant::now();
            let full = Orchestrator::new().execute(&wf, &mut full_doc).expect("full re-run");
            full_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

            let mut replay_doc = corpus(sources, salt, &dirty_idx);
            let t0 = Instant::now();
            let replayed = Orchestrator::new()
                .replay(
                    &wf,
                    &mut replay_doc,
                    &prior_doc,
                    &prior.trace,
                    &cone,
                    ProofMode::Trusted,
                )
                .expect("replay");
            replay_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

            byte_identical &=
                to_xml_string(&replay_doc.view()) == to_xml_string(&full_doc.view());
            assert_eq!(replayed.outcome.trace.calls, full.trace.calls);
            assert_eq!(replayed.recomputed, n_dirty, "dirty fraction mismatch");
            recomputed = replayed.recomputed;
            reused = replayed.reused;
        }
        assert!(byte_identical, "replay diverged from the full re-run at {dirty_pct}%");

        let speedup = full_ns as f64 / replay_ns.max(1) as f64;
        if dirty_pct == 10 {
            speedup_at_10 = speedup;
        }
        println!(
            "x16_replay/{dirty_pct}%: full {:.2} ms, replay {:.2} ms ({speedup:.1}x), \
             recomputed {recomputed}/{sources}, reused {reused}",
            full_ns as f64 / 1e6 / rounds as f64,
            replay_ns as f64 / 1e6 / rounds as f64,
        );
        scenario_lines.push(format!(
            "{{\"dirty_pct\": {dirty_pct}, \"cone\": {}, \"recomputed\": {recomputed}, \
             \"reused\": {reused}, \"full_ns\": {}, \"replay_ns\": {}, \
             \"speedup\": {speedup:.1}}}",
            cone.len(),
            full_ns / rounds as u64,
            replay_ns / rounds as u64,
        ));
    }

    obs::disable();
    if test_mode {
        return; // scaled-down smoke: skip timing assertions + snapshot
    }
    assert!(
        speedup_at_10 >= 2.0,
        "replay at a 10% dirty cone must beat a full re-run 2x, got {speedup_at_10:.2}x"
    );

    let snapshot = format!(
        "{{\n  \"experiment\": \"X16\",\n  \"sources\": {sources},\n  \"rounds\": {rounds},\n  \
           \"work\": {work},\n  \"byte_identical\": true,\n  \"scenarios\": [\n    {}\n  ]\n}}\n",
        scenario_lines.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_X16_replay.json");
    std::fs::write(path, snapshot).expect("write BENCH_X16_replay.json");
    println!("x16_replay/snapshot written to {path}");
}

criterion_group!(benches, bench_x16);
criterion_main!(benches);
