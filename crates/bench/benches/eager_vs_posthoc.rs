//! X3 — Eager (intrusive) vs posthoc (non-invasive) provenance.
//!
//! The paper rejects computing provenance inside the orchestrator because
//! it is "intrusive … inefficient since it might slow down the workflow
//! execution … allows for limited optimization". This ablation measures
//! the total cost of (a) execution with eager rule evaluation after every
//! call versus (b) plain execution followed by posthoc inference. Expected
//! shape: plain execution is markedly cheaper than eager execution (the
//! workflow path is not slowed down), and the posthoc inference — which
//! can batch and factorise — keeps the *combined* cost competitive while
//! leaving the choice of when to pay it to the platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_prov::{infer_provenance, EngineOptions, Strategy};
use weblab_workflow::generator::synthetic_workload;
use weblab_workflow::Orchestrator;

fn bench_eager_vs_posthoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("x3_eager_vs_posthoc");
    group.sample_size(10);
    for n_calls in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("execute_plain", n_calls),
            &n_calls,
            |b, &n| {
                b.iter(|| {
                    let (mut doc, wf, _rules) = synthetic_workload(1, n, 4, 5);
                    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
                    black_box(outcome.trace.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute_eager", n_calls),
            &n_calls,
            |b, &n| {
                b.iter(|| {
                    let (mut doc, wf, rules) = synthetic_workload(1, n, 4, 5);
                    let outcome = Orchestrator::eager(rules).execute(&wf, &mut doc).unwrap();
                    black_box(outcome.eager_links.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute_then_posthoc", n_calls),
            &n_calls,
            |b, &n| {
                b.iter(|| {
                    let (mut doc, wf, rules) = synthetic_workload(1, n, 4, 5);
                    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
                    let opts = EngineOptions {
                        strategy: Strategy::GroupedSinglePass,
                        ..Default::default()
                    };
                    black_box(
                        infer_provenance(&doc, &outcome.trace, &rules, &opts)
                            .links
                            .len(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eager_vs_posthoc);
criterion_main!(benches);
