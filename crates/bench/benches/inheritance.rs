//! X4 — Inherited-provenance generation cost.
//!
//! Section 4 offers pattern-level `descendant-or-self::*` extension;
//! the engine also implements an equivalent posthoc graph propagation.
//! This ablation compares both (plus the no-inheritance baseline) on the
//! media-mining pipeline as corpus size grows. Expected shape: pattern
//! rewriting re-pays full pattern evaluation with a wider match set and
//! grows with document size; graph propagation costs per *link* and wins
//! when explicit links are sparse relative to the document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_bench::run_pipeline;
use weblab_prov::{infer_provenance, EngineOptions, InheritMode};

fn bench_inheritance(c: &mut Criterion) {
    let mut group = c.benchmark_group("x4_inheritance");
    group.sample_size(10);
    for n_native in [2usize, 8, 24] {
        let executed = run_pipeline(5, n_native, 40);
        for (name, inherit) in [
            ("off", InheritMode::Off),
            ("pattern_rewrite", InheritMode::PatternRewrite),
            ("graph_propagation", InheritMode::GraphPropagation),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n_native),
                &executed,
                |b, e| {
                    let opts = EngineOptions {
                        inherit,
                        ..Default::default()
                    };
                    b.iter(|| {
                        black_box(
                            infer_provenance(&e.doc, &e.trace, &e.rules, &opts)
                                .links
                                .len(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inheritance);
criterion_main!(benches);
