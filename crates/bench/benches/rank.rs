//! X17 — ranked analytics: budgeted top-k spreading activation vs full
//! impacted-by materialisation.
//!
//! Builds a single-origin derivation tree (every resource transitively
//! derived from one sink `S`, branching factor 4 — the worst case for
//! impact analysis: `impacted-by S` is the whole graph) through the
//! incremental [`ReachabilityIndex`] path, then times two answers to the
//! question "what does `S` influence most?":
//!
//! * **full** — `index.impacted_by(S)`: materialises the complete upward
//!   closure, one `String` per impacted resource;
//! * **rank** — `rank(S, Up)` under a 4096-node budget with `limit` 64:
//!   the top of the activation ordering only, never touching the long
//!   tail of the closure.
//!
//! The headline number is the speedup of the budgeted rank over the full
//! materialisation — the reason the v2 protocol grew a `rank` op at all.
//! Results are written to `BENCH_X17_rank.json` at the repo root (the
//! artifact `scripts/ci.sh` validates) with the `prov.rank.*` counter
//! deltas alongside the timings.
//!
//! Under `cargo test` (`--test`) the harness runs scaled down as a
//! correctness smoke and skips the speedup assertion and the snapshot
//! write. `X17_NODES` / `X17_ROUNDS` override the load shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use weblab_obs as obs;
use weblab_obs::Histogram;
use weblab_prov::rank::SCALE;
use weblab_prov::{rank, ProvLink, QueryOpts, RankDirection, ReachabilityIndex};
use weblab_xml::NodeId;

/// Latency of one full `impacted_by` materialisation, ns.
static X17_FULL_NS: Histogram = Histogram::new("x17.full_ns");
/// Latency of one budgeted rank query, ns.
static X17_RANK_NS: Histogram = Histogram::new("x17.rank_ns");

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn uri_of(i: usize) -> String {
    format!("weblab://x17/{i}")
}

/// A complete 4-ary derivation tree rooted at resource 0: node `j` is
/// derived from `(j - 1) / 4`, parents interned before children so every
/// incremental closure update costs `O(depth)`.
fn tree_index(nodes: usize) -> ReachabilityIndex {
    let mut index = ReachabilityIndex::new();
    for j in 1..nodes {
        let parent = (j - 1) / 4;
        index.add_link(&ProvLink {
            from: NodeId::from_index(j),
            from_uri: uri_of(j),
            to: NodeId::from_index(parent),
            to_uri: uri_of(parent),
        });
    }
    index
}

fn bench_x17(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let nodes = env_usize("X17_NODES", if test_mode { 4_000 } else { 200_000 });
    let full_rounds = env_usize("X17_ROUNDS", if test_mode { 2 } else { 10 });
    let rank_rounds = full_rounds * 5;
    let budget = 4_096.min(nodes / 2);
    let limit = 64;

    obs::enable();
    let t0 = Instant::now();
    let index = tree_index(nodes);
    let build_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let sink = uri_of(0);
    assert_eq!(index.resource_count(), nodes);
    assert_eq!(index.edge_count(), nodes - 1);

    let before = obs::snapshot();

    // full materialisation: the exact upward closure, every round
    let mut full_size = 0usize;
    for _ in 0..full_rounds {
        let t0 = Instant::now();
        let impacted = index.impacted_by(&sink);
        X17_FULL_NS.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        full_size = impacted.len();
    }
    assert_eq!(full_size, nodes - 1, "the sink must impact the whole tree");

    // budgeted rank: top of the activation ordering only
    let opts = QueryOpts { limit, budget, decay_micro: 0 };
    let mut top = Vec::new();
    for _ in 0..rank_rounds {
        let t0 = Instant::now();
        top = rank(&index, std::slice::from_ref(&sink), RankDirection::Up, &opts, &[]);
        X17_RANK_NS.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    assert_eq!(top.len(), limit.min(budget));
    assert_eq!(top[0].uri, sink);
    assert_eq!(top[0].score_micro, SCALE);

    let delta = obs::snapshot().since(&before);
    let queries = delta.counter("prov.rank.queries");
    let visited = delta.counter("prov.rank.visited");
    let frontier = delta.counter("prov.rank.frontier");
    assert_eq!(queries, rank_rounds as u64);
    assert_eq!(visited, (budget * rank_rounds) as u64, "budget must bound the visit count");

    let snap = obs::snapshot();
    let full_p50 = snap.histogram("x17.full_ns").cloned().unwrap_or_default().quantile(0.50);
    let rank_p50 = snap.histogram("x17.rank_ns").cloned().unwrap_or_default().quantile(0.50);
    let speedup = full_p50 as f64 / rank_p50.max(1) as f64;
    println!(
        "x17_rank/build: {nodes} resources, {} edges in {:.1} ms (incremental closure)",
        nodes - 1,
        build_ns as f64 / 1e6
    );
    println!(
        "x17_rank/full:  p50 {:.1} us materialising {full_size} impacted resources",
        full_p50 as f64 / 1e3
    );
    println!(
        "x17_rank/rank:  p50 {:.1} us for top-{limit} under budget {budget} ({speedup:.1}x cheaper)",
        rank_p50 as f64 / 1e3
    );

    if test_mode {
        obs::disable();
        return; // scaled-down smoke: skip the speedup gate + snapshot
    }
    assert!(
        speedup >= 10.0,
        "budgeted rank must be >=10x cheaper than full materialisation, got {speedup:.1}x"
    );

    let snapshot = format!(
        "{{\n  \"experiment\": \"X17\",\n  \"nodes\": {nodes},\n  \"edges\": {},\n  \
           \"budget\": {budget},\n  \"limit\": {limit},\n  \"build_ns\": {build_ns},\n  \
           \"full\": {{\"rounds\": {full_rounds}, \"impacted\": {full_size}, \"p50_ns\": {full_p50}}},\n  \
           \"rank\": {{\"rounds\": {rank_rounds}, \"returned\": {}, \"p50_ns\": {rank_p50}}},\n  \
           \"speedup\": {speedup:.1},\n  \
           \"counters\": {{\"queries\": {queries}, \"visited\": {visited}, \"frontier\": {frontier}}}\n}}\n",
        nodes - 1,
        top.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_X17_rank.json");
    std::fs::write(path, snapshot).expect("write BENCH_X17_rank.json");
    println!("x17_rank/snapshot written to {path}");
    obs::disable();
}

criterion_group!(benches, bench_x17);
criterion_main!(benches);
