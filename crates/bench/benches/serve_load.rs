//! X14 — serve-path load: pipelined batches vs serial requests under
//! ~a thousand concurrent connections.
//!
//! Drives a real [`weblab::serve::Server`] (the non-blocking event loop +
//! dispatch pool) over loopback TCP with a closed-loop wave harness:
//! every connection sends one request per wave and the wave ends when all
//! responses are back. Traffic is a mixed query workload (`why`,
//! `lineage`, `impacted-by`, `sparql`) issued two ways over the **same**
//! sub-requests:
//!
//! * **unbatched** — one sub-request per protocol line (one round-trip
//!   each);
//! * **batched** — `batch` lines carrying [`BATCH_SIZE`] sub-requests,
//!   every batch answered at one pinned epoch.
//!
//! Per-request latencies land in `weblab-obs` histograms; p50/p99/p999
//! come from [`HistogramSnapshot::quantile`]. The run asserts every
//! response is `ok:true` with an epoch, that admission control shed
//! nothing (`serve.shed` delta is 0), and — the X14 headline — that
//! batching multiplies sub-request throughput by ≥2× at batch size ≥8.
//! Results are written to `BENCH_X14_serve.json` at the repo root (the
//! artifact `scripts/ci.sh` validates).
//!
//! Under `cargo test` (`--test`) the harness runs scaled down (32
//! connections) as a correctness smoke and skips the timing assertions
//! and the snapshot write. `X14_CONNS` / `X14_WAVES` / `X14_WORKERS`
//! override the load shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use weblab::json::Json;
use weblab::serve::Server;
use weblab_obs as obs;
use weblab_obs::Histogram;
use weblab_platform::{Mapper, Platform};
use weblab_workflow::generator::generate_corpus;
use weblab_workflow::services::{
    self, EntityExtractor, KeywordExtractor, LanguageExtractor, Normaliser, Summariser, Tokeniser,
};
use weblab_workflow::Service;

/// Sub-requests per `batch` line in the batched phase.
const BATCH_SIZE: usize = 8;

/// Client-observed latency of one unbatched request, ns.
static X14_SERIAL_NS: Histogram = Histogram::new("x14.serial_ns");
/// Client-observed latency of one batch round-trip (8 subs), ns.
static X14_BATCH_NS: Histogram = Histogram::new("x14.batch_ns");

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The served platform: the six-service test pipeline over a generated
/// corpus, executed once so the graph has links worth querying.
fn load_platform(exec_id: &str) -> (Arc<Platform>, Vec<String>) {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
        Box::new(EntityExtractor),
        Box::new(KeywordExtractor),
        Box::new(Summariser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    let platform = Arc::new(platform);
    let exec = platform.execution(exec_id);
    exec.ingest(generate_corpus(14, 3, 12));
    exec.execute(&[
        "Normaliser",
        "LanguageExtractor",
        "Tokeniser",
        "EntityExtractor",
        "KeywordExtractor",
        "Summariser",
    ])
    .unwrap();
    let uris: Vec<String> = {
        let snap = exec.snapshot().unwrap();
        snap.graph.sources.iter().map(|s| s.uri.clone()).collect()
    };
    assert!(uris.len() >= 4, "corpus produced too few resources");
    (platform, uris)
}

/// The `i`-th sub-request of the mixed workload, as a JSON object
/// (without `exec`: batches inherit it, serial lines add it).
fn sub_request(exec: Option<&str>, uris: &[String], i: usize) -> Json {
    let uri = &uris[i % uris.len()];
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    match i % 4 {
        0 => {
            pairs.push(("op", Json::str("why")));
            pairs.push(("uri", Json::str(uri)));
        }
        1 => {
            pairs.push(("op", Json::str("lineage")));
            pairs.push(("uri", Json::str(uri)));
            pairs.push(("depth", Json::num(2)));
        }
        2 => {
            pairs.push(("op", Json::str("impacted-by")));
            pairs.push(("uri", Json::str(uri)));
        }
        _ => {
            pairs.push(("op", Json::str("sparql")));
            pairs.push((
                "query",
                Json::str(format!(
                    "PREFIX prov: <http://www.w3.org/ns/prov#> \
                     SELECT ?s WHERE {{ <{uri}> prov:wasDerivedFrom ?s . }}"
                )),
            ));
        }
    }
    if let Some(exec) = exec {
        pairs.insert(1, ("exec", Json::str(exec)));
    }
    Json::obj(pairs)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Global index of this connection (keys its slice of the workload).
    index: usize,
}

fn connect_clients(addr: &SocketAddr, from: usize, to: usize) -> Vec<Client> {
    (from..to)
        .map(|index| {
            let stream = TcpStream::connect(addr).expect("connect load client");
            stream.set_nodelay(true).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client {
                stream,
                reader,
                index,
            }
        })
        .collect()
}

/// Read one response line and assert it answered (`ok:true` + epoch).
fn read_ok(client: &mut Client) -> Json {
    let mut line = String::new();
    client.reader.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "torn response line");
    let parsed = Json::parse(line.trim_end()).expect("response is JSON");
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "load response failed: {line}"
    );
    assert!(
        parsed.get("epoch").and_then(Json::as_u64).is_some(),
        "response missing its epoch: {line}"
    );
    parsed
}

/// Run `waves` closed-loop waves over every client; each wave sends one
/// line per connection, waits for all responses, and records per-request
/// latency. Returns the sub-requests answered.
fn drive(
    clients: &mut [Client],
    exec_id: &str,
    uris: &[String],
    waves: usize,
    batched: bool,
) -> u64 {
    let mut subs = 0u64;
    for wave in 0..waves {
        for client in clients.iter_mut() {
            let seq = client.index * waves + wave;
            let mut line = if batched {
                let reqs: Vec<Json> = (0..BATCH_SIZE)
                    .map(|k| sub_request(None, uris, seq * BATCH_SIZE + k))
                    .collect();
                Json::obj(vec![
                    ("op", Json::str("batch")),
                    ("exec", Json::str(exec_id)),
                    ("requests", Json::Arr(reqs)),
                ])
                .to_string()
            } else {
                sub_request(Some(exec_id), uris, seq).to_string()
            };
            line.push('\n');
            let t0 = Instant::now();
            client.stream.write_all(line.as_bytes()).unwrap();
            let parsed = read_ok(client);
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            if batched {
                X14_BATCH_NS.record(ns);
                let answers = parsed.get("result").and_then(Json::as_array).unwrap();
                assert_eq!(answers.len(), BATCH_SIZE);
                let epoch = parsed.get("epoch").and_then(Json::as_u64);
                for sub in answers {
                    assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true));
                    assert_eq!(sub.get("epoch").and_then(Json::as_u64), epoch);
                }
                subs += BATCH_SIZE as u64;
            } else {
                X14_SERIAL_NS.record(ns);
                subs += 1;
            }
        }
    }
    subs
}

/// Connect the whole fleet, split across driver threads. Establishing
/// ~a thousand connections is setup, not load: it happens once, outside
/// both phases' timed windows, and both phases then drive the **same**
/// sockets — a clean batched-vs-unbatched A/B.
fn connect_fleet(addr: &SocketAddr, conns: usize, threads: usize) -> Vec<Vec<Client>> {
    let per = conns.div_ceil(threads);
    let handles: Vec<_> = (0..threads)
        .filter_map(|t| {
            let (from, to) = (t * per, ((t + 1) * per).min(conns));
            (from < to).then(|| {
                let addr = *addr;
                thread::spawn(move || connect_clients(&addr, from, to))
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// One load phase across all driver threads; returns the fleet back plus
/// (subs answered, wall ns).
fn run_phase(
    fleet: Vec<Vec<Client>>,
    exec_id: &str,
    uris: &[String],
    waves: usize,
    batched: bool,
) -> (Vec<Vec<Client>>, u64, u64) {
    let t0 = Instant::now();
    let handles: Vec<_> = fleet
        .into_iter()
        .map(|mut clients| {
            let exec_id = exec_id.to_string();
            let uris = uris.to_vec();
            thread::spawn(move || {
                let subs = drive(&mut clients, &exec_id, &uris, waves, batched);
                (clients, subs)
            })
        })
        .collect();
    let mut fleet = Vec::new();
    let mut subs = 0u64;
    for h in handles {
        let (clients, n) = h.join().unwrap();
        fleet.push(clients);
        subs += n;
    }
    (
        fleet,
        subs,
        t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
    )
}

fn quantiles(name: &str) -> (u64, u64, u64) {
    let snap = obs::snapshot();
    let h = snap.histogram(name).cloned().unwrap_or_default();
    (h.quantile(0.50), h.quantile(0.99), h.quantile(0.999))
}

fn bench_x14(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let conns = env_usize("X14_CONNS", if test_mode { 32 } else { 1024 });
    let waves = env_usize("X14_WAVES", if test_mode { 2 } else { 8 });
    let workers = env_usize("X14_WORKERS", 2);
    let threads = if test_mode { 4 } else { 8 };

    obs::enable();
    let exec_id = "x14-exec";
    let (platform, uris) = load_platform(exec_id);
    let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0")
        .unwrap()
        .max_conns(conns + 8); // headroom for the shutdown connection
    let addr = server.local_addr().unwrap();
    let server_thread = thread::spawn(move || server.run(workers));

    let fleet = connect_fleet(&addr, conns, threads);
    let before = obs::snapshot();
    let (fleet, serial_subs, serial_ns) =
        run_phase(fleet, exec_id, &uris, waves * BATCH_SIZE, false);
    let (serial_p50, serial_p99, serial_p999) = quantiles("x14.serial_ns");
    let (fleet, batch_subs, batch_ns) = run_phase(fleet, exec_id, &uris, waves, true);
    let (batch_p50, batch_p99, batch_p999) = quantiles("x14.batch_ns");
    let after = obs::snapshot();
    drop(fleet);

    // shut the server down cleanly over the wire
    {
        let mut clients = connect_clients(&addr, 0, 1);
        let c = &mut clients[0];
        c.stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"stopping\":true"));
    }
    server_thread.join().unwrap().unwrap();

    let delta = after.since(&before);
    assert_eq!(
        delta.counter("serve.shed"),
        0,
        "X14 must run below the admission-control shed point"
    );
    assert_eq!(
        serial_subs, batch_subs,
        "both phases must answer the same sub-request workload"
    );
    assert!(delta.counter("serve.batch.requests") >= (conns * waves) as u64);
    assert!(delta.counter("serve.batch.subs") >= batch_subs);

    let serial_rate = serial_subs as f64 / (serial_ns.max(1) as f64 / 1e9);
    let batch_rate = batch_subs as f64 / (batch_ns.max(1) as f64 / 1e9);
    let speedup = batch_rate / serial_rate;
    println!("x14_serve/unbatched: {serial_subs} subs in {:.1} ms ({serial_rate:.0} subs/s)", serial_ns as f64 / 1e6);
    println!("x14_serve/batched:   {batch_subs} subs in {:.1} ms ({batch_rate:.0} subs/s)", batch_ns as f64 / 1e6);
    println!("x14_serve/speedup: {speedup:.1}x at batch size {BATCH_SIZE}");

    if test_mode {
        obs::disable();
        return; // scaled-down smoke: skip timing assertions + snapshot
    }
    assert!(
        speedup >= 2.0,
        "X14: batching must at least double sub-request throughput, got {speedup:.2}x"
    );

    let snapshot = format!(
        "{{\n  \"experiment\": \"X14\",\n  \"conns\": {conns},\n  \"workers\": {workers},\n  \
           \"waves\": {waves},\n  \"batch_size\": {BATCH_SIZE},\n  \
           \"unbatched\": {{\"subs\": {serial_subs}, \"wall_ns\": {serial_ns}, \
           \"subs_per_sec\": {serial_rate:.0}, \"p50_ns\": {serial_p50}, \
           \"p99_ns\": {serial_p99}, \"p999_ns\": {serial_p999}}},\n  \
           \"batched\": {{\"subs\": {batch_subs}, \"wall_ns\": {batch_ns}, \
           \"subs_per_sec\": {batch_rate:.0}, \"p50_ns\": {batch_p50}, \
           \"p99_ns\": {batch_p99}, \"p999_ns\": {batch_p999}}},\n  \
           \"sheds\": 0,\n  \"speedup\": {speedup:.1}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_X14_serve.json");
    std::fs::write(path, snapshot).expect("write BENCH_X14_serve.json");
    println!("x14_serve/snapshot written to {path}");
    obs::disable();
}

criterion_group!(benches, bench_x14);
criterion_main!(benches);
