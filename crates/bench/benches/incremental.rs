//! X8 — Incremental versus full materialisation (extension).
//!
//! The paper's Request Manager materialises a provenance graph on first
//! query; our extension re-derives only the links of calls recorded since
//! the cached materialisation. This bench compares re-deriving everything
//! (what a cache-invalidating Request Manager pays after every new call)
//! against deriving just the last call's delta. Expected shape: the delta
//! cost is flat in history length, the full cost grows linearly with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use weblab_bench::run_synthetic;
use weblab_prov::{infer_links_since, EngineOptions};

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("x8_incremental");
    group.sample_size(10);
    for n_calls in [8usize, 32, 96] {
        let executed = run_synthetic(13, n_calls, 4, 0);
        let opts = EngineOptions::default();
        group.bench_with_input(
            BenchmarkId::new("full_rematerialisation", n_calls),
            &executed,
            |b, e| {
                b.iter(|| {
                    black_box(infer_links_since(&e.doc, &e.trace, 0, &e.rules, &opts).len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("last_call_delta", n_calls),
            &executed,
            |b, e| {
                let last = e.trace.len() - 1;
                b.iter(|| {
                    black_box(
                        infer_links_since(&e.doc, &e.trace, last, &e.rules, &opts).len(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// X9 — compact provenance storage (Section 8's future-work item).
/// Measures building the interned/grouped encoding and its hot queries
/// against the plain edge-list graph.
fn bench_storage(c: &mut Criterion) {
    use weblab_prov::storage::CompactGraph;
    use weblab_prov::infer_provenance;

    let mut group = c.benchmark_group("x9_storage");
    group.sample_size(10);
    for n_calls in [16usize, 64] {
        let executed = run_synthetic(29, n_calls, 6, 0);
        let graph = infer_provenance(
            &executed.doc,
            &executed.trace,
            &executed.rules,
            &EngineOptions::default(),
        );
        let links = graph.links.len();
        group.bench_with_input(
            BenchmarkId::new("build_compact", links),
            &graph,
            |b, g| {
                b.iter(|| black_box(CompactGraph::from_graph(g).edge_count()));
            },
        );
        let compact = CompactGraph::from_graph(&graph);
        let probe = graph.links[links / 2].from_uri.clone();
        group.bench_with_input(
            BenchmarkId::new("deps_edge_list", links),
            &graph,
            |b, g| {
                b.iter(|| black_box(g.dependencies_of(&probe).len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("deps_compact", links),
            &compact,
            |b, cg| {
                b.iter(|| black_box(cg.dependencies(&probe).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental, bench_storage);
criterion_main!(benches);
