//! # weblab-bench — workload builders for the benchmark harness
//!
//! Shared fixtures for the Criterion benches (experiments X1–X7 of
//! DESIGN.md) and the `paper_artifacts` binary. Every builder is seeded and
//! deterministic so benchmark runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seedeval;

use weblab_prov::{ExecutionTrace, RuleSet};
use weblab_workflow::generator::{generate_corpus, synthetic_workload};
use weblab_workflow::services::{
    self, EntityExtractor, KeywordExtractor, LanguageExtractor, Normaliser, SentimentAnalyser,
    Summariser, Tokeniser, Translator,
};
use weblab_workflow::{Orchestrator, Workflow};
use weblab_xml::Document;

/// A fully executed workload: final document, trace, and rules.
pub struct Executed {
    /// Final document `d_n`.
    pub doc: Document,
    /// Execution trace.
    pub trace: ExecutionTrace,
    /// Rule registry.
    pub rules: RuleSet,
}

/// Run the synthetic scaling workload: `n_calls` calls, each appending
/// `fanout` items referencing earlier items, with `payload_words` of text
/// per item.
pub fn run_synthetic(seed: u64, n_calls: usize, fanout: usize, payload_words: usize) -> Executed {
    let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, payload_words);
    let outcome = Orchestrator::new()
        .execute(&wf, &mut doc)
        .expect("synthetic workload executes");
    Executed {
        doc,
        trace: outcome.trace,
        rules,
    }
}

/// Run the full media-mining pipeline over a generated corpus of
/// `n_native` raw documents of `words_each` words.
pub fn run_pipeline(seed: u64, n_native: usize, words_each: usize) -> Executed {
    let mut doc = generate_corpus(seed, n_native, words_each);
    let wf = media_mining_workflow();
    let outcome = Orchestrator::new()
        .execute(&wf, &mut doc)
        .expect("pipeline executes");
    Executed {
        doc,
        trace: outcome.trace,
        rules: services::default_rules(),
    }
}

/// The canonical nine-service media-mining workflow.
pub fn media_mining_workflow() -> Workflow {
    Workflow::new()
        .then(Normaliser)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(LanguageExtractor)
        .then(Tokeniser)
        .then(EntityExtractor)
        .then(SentimentAnalyser)
        .then(KeywordExtractor)
        .then(Summariser)
}

/// Build a wide flat document with `leaves` identified leaf resources —
/// the X2/X6 document-size dimension.
pub fn wide_document(leaves: usize) -> Document {
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "root", None).unwrap();
    for i in 0..leaves {
        let n = doc.append_element(root, "Item").unwrap();
        doc.set_attr(n, "key", format!("k{i}")).unwrap();
        doc.register_resource(
            n,
            format!("item/{i}"),
            Some(weblab_xml::CallLabel::new("Gen", 1 + (i % 7) as u64)),
        )
        .unwrap();
        doc.append_text(n, format!("payload {i}")).unwrap();
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        let a = run_synthetic(3, 4, 2, 5);
        let b = run_synthetic(3, 4, 2, 5);
        assert_eq!(
            weblab_xml::to_xml_string(&a.doc.view()),
            weblab_xml::to_xml_string(&b.doc.view())
        );
        assert_eq!(a.trace.len(), 4);
    }

    #[test]
    fn pipeline_builder_runs() {
        let e = run_pipeline(1, 2, 30);
        assert_eq!(e.trace.len(), 9);
        assert!(e.doc.node_count() > 10);
    }

    #[test]
    fn wide_document_has_requested_leaves() {
        let d = wide_document(10);
        assert_eq!(d.view().children(d.root()).len(), 10);
    }
}
