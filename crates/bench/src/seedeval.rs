//! The seed SPARQL evaluator, retained verbatim as a differential oracle.
//!
//! This is the evaluation strategy `weblab_rdf::select` shipped with
//! before the columnar engine landed: greedy most-bound-first pattern
//! ordering by a syntactic boundness score, one `TripleStore::matching`
//! materialisation per pattern per partial solution, term-space
//! `BTreeMap` solutions cloned at every extension, filters applied at the
//! end, then project → sort → dedup → `ORDER BY` → `LIMIT`.
//!
//! It exists for two jobs:
//!
//! * the **differential test suite** (`tests/sparql_differential.rs`)
//!   asserts the planner-driven engine returns byte-identical solutions
//!   on randomized stores and queries;
//! * the **X13 benchmark** (`benches/rdf_sparql.rs`) uses it as the
//!   baseline the columnar engine's speedup is measured against.
//!
//! Keep its behaviour frozen: bugs-for-bugs compatibility is the point.
//! (The one necessary deviation: it reads triples through the public
//! [`TripleStore::matching`] façade, which reproduces the seed
//! `BTreeSet` result ordering on top of the columnar indexes.)

use std::collections::BTreeMap;

use weblab_rdf::{PatTerm, SelectQuery, Solution, Term, TripleStore, TriplePattern};

/// Evaluate `query` with the seed strategy. The output contract is the
/// seed's: projected, deduplicated, term-sorted solutions, then
/// `ORDER BY` keys (stable) and `LIMIT`.
pub fn seed_select(store: &TripleStore, query: &SelectQuery) -> Vec<Solution> {
    let mut solutions = vec![Solution::new()];
    // Greedy join order: repeatedly pick the pattern with the most
    // components bound under the current prefix (approximated by counting
    // constants + already-seen variables).
    let mut remaining: Vec<&TriplePattern> = query.patterns.iter().collect();
    let mut seen_vars: Vec<String> = Vec::new();
    let mut ordered: Vec<&TriplePattern> = Vec::new();
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, pat)| boundness(pat, &seen_vars))
            .expect("non-empty");
        let pat = remaining.remove(idx);
        for v in pattern_vars(pat) {
            if !seen_vars.contains(&v) {
                seen_vars.push(v);
            }
        }
        ordered.push(pat);
    }

    for pat in ordered {
        let mut next = Vec::new();
        for sol in &solutions {
            let sp = resolve(&pat.s, sol);
            let pp = resolve(&pat.p, sol);
            let op = resolve(&pat.o, sol);
            for t in store.matching(&sp, &pp, &op) {
                let mut ext = sol.clone();
                if bind(&pat.s, &t.s, &mut ext)
                    && bind(&pat.p, &t.p, &mut ext)
                    && bind(&pat.o, &t.o, &mut ext)
                {
                    next.push(ext);
                }
            }
        }
        solutions = next;
        if solutions.is_empty() {
            break;
        }
    }

    solutions.retain(|sol| {
        query.filters.iter().all(|f| {
            let l = resolve(&f.left, sol);
            let r = resolve(&f.right, sol);
            match (l, r) {
                (Some(l), Some(r)) => (l == r) == f.equal,
                _ => false,
            }
        })
    });

    // project
    let mut out: Vec<Solution> = solutions
        .into_iter()
        .map(|sol| {
            if query.vars.is_empty() {
                sol
            } else {
                sol.into_iter()
                    .filter(|(k, _)| query.vars.contains(k))
                    .collect()
            }
        })
        .collect();
    out.sort();
    out.dedup();
    if !query.order_by.is_empty() {
        out.sort_by(|a, b| {
            for v in &query.order_by {
                let ord = a.get(v).cmp(&b.get(v));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        });
    }
    if let Some(limit) = query.limit {
        out.truncate(limit);
    }
    out
}

fn boundness(pat: &TriplePattern, seen: &[String]) -> usize {
    [&pat.s, &pat.p, &pat.o]
        .iter()
        .map(|t| match t {
            PatTerm::Const(_) => 2,
            PatTerm::Var(v) if seen.contains(v) => 2,
            PatTerm::Var(_) => 0,
        })
        .sum()
}

fn pattern_vars(pat: &TriplePattern) -> Vec<String> {
    [&pat.s, &pat.p, &pat.o]
        .iter()
        .filter_map(|t| match t {
            PatTerm::Var(v) => Some(v.clone()),
            PatTerm::Const(_) => None,
        })
        .collect()
}

fn resolve(p: &PatTerm, sol: &Solution) -> Option<Term> {
    match p {
        PatTerm::Const(t) => Some(t.clone()),
        PatTerm::Var(v) => sol.get(v).cloned(),
    }
}

fn bind(p: &PatTerm, t: &Term, sol: &mut BTreeMap<String, Term>) -> bool {
    match p {
        PatTerm::Const(c) => c == t,
        PatTerm::Var(v) => match sol.get(v) {
            Some(existing) => existing == t,
            None => {
                sol.insert(v.clone(), t.clone());
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_rdf::{parse_select, select, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn oracle_agrees_with_engine_on_a_join() {
        let mut store = TripleStore::new();
        store.extend([
            t("a", "p", "b"),
            t("b", "p", "c"),
            t("c", "p", "d"),
            t("a", "q", "c"),
        ]);
        let q = parse_select("SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z . }").unwrap();
        let seed = seed_select(&store, &q);
        assert_eq!(seed.len(), 2);
        assert_eq!(seed, select(&store, &q));
    }
}
