//! # criterion (in-tree stand-in)
//!
//! A std-only, offline drop-in for the subset of the `criterion` crate the
//! workspace benchmarks use. The build environment has no registry access,
//! so the real harness cannot be fetched; this shim keeps every
//! `benches/*.rs` source compiling and producing output that
//! `scripts/fill_experiments.py` can parse:
//!
//! ```text
//! x1_strategies/grouped_single_pass/48
//!                         time:   [2.612 ms 2.633 ms 2.691 ms]
//! ```
//!
//! The three bracketed figures are the minimum, median and maximum of the
//! collected samples (upstream criterion reports a confidence interval; the
//! min/median/max triple is the closest robust analogue without statistics
//! machinery). Each sample runs enough iterations to cover ~10 ms of wall
//! clock, after a short warm-up.
//!
//! When invoked by `cargo test` (cargo passes `--test` to harness-less
//! bench targets), every benchmark body runs exactly once as a smoke test
//! and no timings are printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, harness-less bench targets are run with
        // `--test`; under `cargo bench`, with `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    // Ties the group to the parent `Criterion` like upstream does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, 50);
        self
    }

    /// Record the logical throughput of each iteration (accepted for
    /// source compatibility; the shim does not report rates).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Finish the group (prints nothing; provided for source compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            return;
        }
        let mut s = bencher.samples;
        s.sort_by(|a, b| a.total_cmp(b));
        let (lo, mid, hi) = match s.len() {
            0 => return,
            n => (s[0], s[n / 2], s[n - 1]),
        };
        println!("{}/{}", self.name, id.0);
        println!(
            "                        time:   [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(mid),
            fmt_ns(hi)
        );
    }
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declared iteration throughput (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples: Vec<f64>, // ns per iteration
}

impl Bencher {
    /// Time repeated executions of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm up, then scale iterations-per-sample to ~10 ms so that
        // sub-microsecond bodies still get a stable reading.
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if start.elapsed() >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    // Four significant digits, like upstream.
    let digits = if value >= 100.0 {
        1
    } else if value >= 10.0 {
        2
    } else {
        3
    };
    format!("{value:.digits$} {unit}")
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_format_like_criterion() {
        assert_eq!(fmt_ns(532.0), "532.0 ns");
        assert_eq!(fmt_ns(2_633_000.0), "2.633 ms");
        assert_eq!(fmt_ns(45_200.0), "45.20 µs");
    }
}
