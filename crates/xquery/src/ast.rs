//! Abstract syntax of the FLWOR fragment that mapping rules compile into.
//!
//! The paper's Mapper translates each mapping rule into an XQuery expression
//! of the shape shown in Examples 8 and 9: a flat `for … let … where …
//! return` block whose `for` clauses walk child/descendant paths, whose
//! `let` clauses collect attribute values, whose `where` clause conjoins
//! comparisons, and whose `return` constructs a small result element.
//!
//! Two extension functions cover the temporal semantics of Section 4 (a
//! full XQuery engine would define them as user functions over the ancestor
//! axis):
//!
//! * `wl:time($v)` — the effective creation instant of `$v` (own `@t`, else
//!   the nearest labelled ancestor's, else 0);
//! * `wl:label($v, service, time)` — true iff `$v`'s effective label is
//!   exactly `(service, time)`.

use std::fmt;

use weblab_xpath::{CmpOp, NodeTest, Value};

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStart {
    /// Absolute path from the document root (`//T`, `/R/T`).
    Root,
    /// Relative to a previously bound `for` variable (`$v1/TextContent`).
    Var(String),
}

/// A navigation path: a start point plus `(descendant?, test)` steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Starting context.
    pub start: PathStart,
    /// Steps: `true` for `//` (descendant), `false` for `/` (child).
    pub steps: Vec<(bool, NodeTest)>,
}

/// A `for $var in path` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForClause {
    /// Bound variable name (without `$`).
    pub var: String,
    /// Node sequence the variable ranges over.
    pub path: Path,
}

/// A `let $var := expr` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetClause {
    /// Bound variable name (without `$`).
    pub var: String,
    /// Defining expression.
    pub expr: Expr,
}

/// Value expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `$v` — a previously bound (let) variable.
    VarRef(String),
    /// `$v/@attr` — attribute of a node variable (virtual attributes
    /// `@id`/`@s`/`@t` resolve to resource metadata).
    VarAttr(String, String),
    /// `$v/path` text content of the first … all reached elements
    /// (existential in comparisons).
    VarPathText(String, Vec<(bool, NodeTest)>),
    /// `$v/path/@attr`.
    VarPathAttr(String, Vec<(bool, NodeTest)>, String),
    /// `string($v)` — text content of the node bound to `$v`.
    VarText(String),
    /// A literal.
    Literal(Value),
    /// An applied Skolem term `f(e₁, …)`.
    Skolem(String, Vec<Expr>),
    /// `wl:time($v)` — effective creation instant (extension function).
    EffectiveTime(String),
}

/// Boolean expressions of the `where` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Comparison with existential semantics over path operands.
    Cmp(Expr, CmpOp, Expr),
    /// `$v/path` — some node is reachable.
    ExistsPath(String, Vec<(bool, NodeTest)>),
    /// `$v/@attr` — the attribute is present.
    ExistsAttr(String, String),
    /// `wl:label($v, 'service', t)` — effective label equality (extension).
    LabelEq(String, String, u64),
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Flatten into a conjunction list (a bare condition is a 1-element
    /// conjunction). Used by the optimizer.
    pub fn conjuncts(self) -> Vec<Cond> {
        match self {
            Cond::And(cs) => cs.into_iter().flat_map(Cond::conjuncts).collect(),
            c => vec![c],
        }
    }

    /// Rebuild from a conjunction list.
    pub fn from_conjuncts(mut cs: Vec<Cond>) -> Option<Cond> {
        match cs.len() {
            0 => None,
            1 => Some(cs.pop().unwrap()),
            _ => Some(Cond::And(cs)),
        }
    }
}

/// Items inside an element constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructorItem {
    /// Literal text.
    Text(String),
    /// `{expr}` — spliced expression value.
    Splice(Expr),
    /// Nested element.
    Element(Constructor),
}

/// An element constructor `<name attr="{expr}">…</name>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    /// Element name.
    pub name: String,
    /// Attributes with computed values.
    pub attrs: Vec<(String, Expr)>,
    /// Content items.
    pub children: Vec<ConstructorItem>,
}

/// A FLWOR query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// `for` clauses, outermost first.
    pub for_clauses: Vec<ForClause>,
    /// `let` clauses, evaluated after all `for` bindings.
    pub let_clauses: Vec<LetClause>,
    /// Optional `where` condition.
    pub where_clause: Option<Cond>,
    /// The constructed result element, one per satisfying binding.
    pub ret: Constructor,
}

// ---------------------------------------------------------------------
// Pretty printer — the concrete syntax of Examples 8/9
// ---------------------------------------------------------------------

fn fmt_steps(steps: &[(bool, NodeTest)], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (desc, test) in steps {
        write!(f, "{}{test}", if *desc { "//" } else { "/" })?;
    }
    Ok(())
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Root => fmt_steps(&self.steps, f),
            PathStart::Var(v) => {
                write!(f, "${v}")?;
                fmt_steps(&self.steps, f)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::VarRef(v) => write!(f, "${v}"),
            Expr::VarAttr(v, a) => write!(f, "${v}/@{a}"),
            Expr::VarPathText(v, p) => {
                write!(f, "${v}")?;
                fmt_steps(p, f)
            }
            Expr::VarPathAttr(v, p, a) => {
                write!(f, "${v}")?;
                fmt_steps(p, f)?;
                write!(f, "/@{a}")
            }
            Expr::VarText(v) => write!(f, "string(${v})"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Skolem(fun, args) => {
                write!(f, "{fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::EffectiveTime(v) => write!(f, "wl:time(${v})"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Cond::ExistsPath(v, p) => {
                write!(f, "${v}")?;
                fmt_steps(p, f)
            }
            Cond::ExistsAttr(v, a) => write!(f, "${v}/@{a}"),
            Cond::LabelEq(v, s, t) => write!(f, "wl:label(${v}, '{s}', {t})"),
            Cond::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Cond::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Cond::Not(c) => write!(f, "not({c})"),
        }
    }
}

impl fmt::Display for Constructor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.name)?;
        for (k, e) in &self.attrs {
            write!(f, " {k}=\"{{{e}}}\"")?;
        }
        if self.children.is_empty() {
            return write!(f, "/>");
        }
        write!(f, ">")?;
        for c in &self.children {
            match c {
                ConstructorItem::Text(t) => write!(f, "{t}")?,
                ConstructorItem::Splice(e) => write!(f, "{{{e}}}")?,
                ConstructorItem::Element(el) => write!(f, "{el}")?,
            }
        }
        write!(f, "</{}>", self.name)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for ")?;
        for (i, fc) in self.for_clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ",\n    ")?;
            }
            write!(f, "${} in {}", fc.var, fc.path)?;
        }
        if !self.let_clauses.is_empty() {
            write!(f, "\nlet ")?;
            for (i, lc) in self.let_clauses.iter().enumerate() {
                if i > 0 {
                    write!(f, ",\n    ")?;
                }
                write!(f, "${} := {}", lc.var, lc.expr)?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, "\nwhere {w}")?;
        }
        write!(f, "\nreturn {}", self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example8_shape_prints() {
        // the simplified rewriting of Example 8
        let q = Query {
            for_clauses: vec![
                ForClause {
                    var: "v1".into(),
                    path: Path {
                        start: PathStart::Root,
                        steps: vec![(true, NodeTest::Name("TextMediaUnit".into()))],
                    },
                },
                ForClause {
                    var: "v2".into(),
                    path: Path {
                        start: PathStart::Var("v1".into()),
                        steps: vec![(false, NodeTest::Name("TextContent".into()))],
                    },
                },
            ],
            let_clauses: vec![LetClause {
                var: "x".into(),
                expr: Expr::VarAttr("v1".into(), "id".into()),
            }],
            where_clause: None,
            ret: Constructor {
                name: "emb".into(),
                attrs: vec![],
                children: vec![
                    ConstructorItem::Element(Constructor {
                        name: "r".into(),
                        attrs: vec![],
                        children: vec![ConstructorItem::Splice(Expr::VarAttr(
                            "v2".into(),
                            "id".into(),
                        ))],
                    }),
                    ConstructorItem::Element(Constructor {
                        name: "x".into(),
                        attrs: vec![],
                        children: vec![ConstructorItem::Splice(Expr::VarRef("x".into()))],
                    }),
                ],
            },
        };
        let s = q.to_string();
        assert!(s.contains("for $v1 in //TextMediaUnit"));
        assert!(s.contains("$v2 in $v1/TextContent"));
        assert!(s.contains("let $x := $v1/@id"));
        assert!(s.contains("return <emb><r>{$v2/@id}</r><x>{$x}</x></emb>"));
    }

    #[test]
    fn conjunct_flattening_round_trips() {
        let c = Cond::And(vec![
            Cond::ExistsAttr("a".into(), "id".into()),
            Cond::And(vec![
                Cond::ExistsAttr("b".into(), "id".into()),
                Cond::ExistsAttr("c".into(), "id".into()),
            ]),
        ]);
        let cs = c.conjuncts();
        assert_eq!(cs.len(), 3);
        let back = Cond::from_conjuncts(cs).unwrap();
        assert_eq!(back.conjuncts().len(), 3);
        assert!(Cond::from_conjuncts(vec![]).is_none());
    }
}
