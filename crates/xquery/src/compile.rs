//! Compiling mapping rules into XQuery — Section 6 / Examples 8 and 9.
//!
//! The Mapper translates a mapping rule `ϕ_S ⇒ ϕ_T` into a single FLWOR
//! expression over the final document:
//!
//! * one `for` variable per pattern step (`$s1, $s2, …` for the source,
//!   `$t1, $t2, …` for the target);
//! * a `let` per variable assignment;
//! * a `where` conjunction carrying the step predicates, the shared-variable
//!   join conditions, the Skolem constraints, the implicit `@id` existence
//!   of the result steps, and — when compiling for a specific service call —
//!   the temporal constraints of Section 4 (`wl:time($s_last) < t` and
//!   `wl:label($t_last, s, t)`);
//! * `return <prov from="{$t_last/@id}" to="{$s_last/@id}"/>`.
//!
//! [`compile_pattern_embeddings`] produces the standalone `<emb>` query of
//! Example 8 for a single pattern.

use std::fmt;

use weblab_prov::MappingRule;
use weblab_xpath::{
    AssignTarget, Axis, BindingSource, CmpOp, Pattern, Predicate, ValueExpr,
};

use crate::ast::{
    Cond, Constructor, ConstructorItem, Expr, ForClause, LetClause, Path, PathStart, Query,
};

/// Features of the pattern language that have no FLWOR counterpart in the
/// compiled fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// `position()` bindings and positional predicates are not compiled
    /// (the paper's compilation scheme does not cover the Section 5
    /// position extension either).
    PositionUnsupported,
    /// `descendant-or-self` steps (inherited-provenance rewriting) are not
    /// part of the compiled fragment; use graph propagation instead.
    DescendantOrSelfUnsupported,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PositionUnsupported => {
                write!(f, "position() is not supported by the XQuery compilation")
            }
            CompileError::DescendantOrSelfUnsupported => write!(
                f,
                "descendant-or-self steps are not supported by the XQuery compilation"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Optional call restriction `(service, time)` for Definition 9 semantics.
pub type CallConstraint<'a> = Option<(&'a str, u64)>;

struct PatternPart {
    for_clauses: Vec<ForClause>,
    let_clauses: Vec<LetClause>,
    conds: Vec<Cond>,
    /// Variable bound to the pattern's final step node.
    last_var: String,
    /// (rule variable, step variable attr expr) pairs for shared-variable
    /// join conditions.
    bindings: Vec<(String, Expr)>,
    /// Skolem constraints `f(args…) = step attr`.
    skolems: Vec<(String, Vec<String>, Expr)>,
}

fn axis_flag(axis: Axis) -> Result<bool, CompileError> {
    match axis {
        Axis::Child => Ok(false),
        Axis::Descendant => Ok(true),
        Axis::DescendantOrSelf => Err(CompileError::DescendantOrSelfUnsupported),
    }
}

fn translate_value(expr: &ValueExpr, var: &str) -> Result<Expr, CompileError> {
    Ok(match expr {
        ValueExpr::Attr(a) => Expr::VarAttr(var.to_string(), a.clone()),
        ValueExpr::Var(v) => Expr::VarRef(v.clone()),
        ValueExpr::Literal(v) => Expr::Literal(v.clone()),
        ValueExpr::Position => return Err(CompileError::PositionUnsupported),
        ValueExpr::PathText(p) => Expr::VarPathText(
            var.to_string(),
            p.steps.iter().map(|(d, t)| (*d, t.clone())).collect(),
        ),
        ValueExpr::PathAttr(p, a) => Expr::VarPathAttr(
            var.to_string(),
            p.steps.iter().map(|(d, t)| (*d, t.clone())).collect(),
            a.clone(),
        ),
    })
}

fn translate_predicate(pred: &Predicate, var: &str) -> Result<Cond, CompileError> {
    Ok(match pred {
        Predicate::Exists(p) => Cond::ExistsPath(
            var.to_string(),
            p.steps.iter().map(|(d, t)| (*d, t.clone())).collect(),
        ),
        Predicate::AttrExists(a) => Cond::ExistsAttr(var.to_string(), a.clone()),
        Predicate::Compare(l, op, r) => Cond::Cmp(
            translate_value(l, var)?,
            *op,
            translate_value(r, var)?,
        ),
        Predicate::PositionIs(_) => return Err(CompileError::PositionUnsupported),
        Predicate::And(ps) => Cond::And(
            ps.iter()
                .map(|p| translate_predicate(p, var))
                .collect::<Result<_, _>>()?,
        ),
        Predicate::Or(ps) => Cond::Or(
            ps.iter()
                .map(|p| translate_predicate(p, var))
                .collect::<Result<_, _>>()?,
        ),
        Predicate::Not(p) => Cond::Not(Box::new(translate_predicate(p, var)?)),
        Predicate::CreatedBefore(t) => Cond::Cmp(
            Expr::EffectiveTime(var.to_string()),
            CmpOp::Lt,
            Expr::Literal(weblab_xpath::Value::Int(*t as i64)),
        ),
        Predicate::ProducedBy(s, t) => Cond::LabelEq(var.to_string(), s.clone(), *t),
    })
}

/// Translate one pattern into for/let/where parts, with step variables
/// named `{prefix}1..{prefix}k`. `bind_vars` controls whether variable
/// assignments become `let` clauses binding the rule variable directly
/// (source side) or synthetic `{var}__{prefix}` lets plus join conditions
/// (target side, where the rule variable is already bound by the source).
fn translate_pattern(
    pattern: &Pattern,
    prefix: &str,
    bind_vars: bool,
) -> Result<PatternPart, CompileError> {
    let mut part = PatternPart {
        for_clauses: Vec::new(),
        let_clauses: Vec::new(),
        conds: Vec::new(),
        last_var: String::new(),
        bindings: Vec::new(),
        skolems: Vec::new(),
    };
    let mut prev_var: Option<String> = None;
    for (i, step) in pattern.steps.iter().enumerate() {
        let var = format!("{prefix}{}", i + 1);
        let desc = axis_flag(step.axis)?;
        let path = match &prev_var {
            None => Path {
                start: PathStart::Root,
                steps: vec![(desc, step.test.clone())],
            },
            Some(p) => Path {
                start: PathStart::Var(p.clone()),
                steps: vec![(desc, step.test.clone())],
            },
        };
        part.for_clauses.push(ForClause {
            var: var.clone(),
            path,
        });
        for pred in &step.predicates {
            part.conds.push(translate_predicate(pred, &var)?);
        }
        for a in &step.assignments {
            let value = match &a.source {
                BindingSource::Attr(attr) => Expr::VarAttr(var.clone(), attr.clone()),
                BindingSource::Position => return Err(CompileError::PositionUnsupported),
            };
            // condition (2) of Definition 4: the attribute must exist
            if let Expr::VarAttr(v, attr) = &value {
                part.conds.push(Cond::ExistsAttr(v.clone(), attr.clone()));
            }
            match &a.target {
                AssignTarget::Var(rule_var) => {
                    if bind_vars {
                        part.let_clauses.push(LetClause {
                            var: rule_var.clone(),
                            expr: value.clone(),
                        });
                    }
                    part.bindings.push((rule_var.clone(), value));
                }
                AssignTarget::Skolem { fun, args } => {
                    part.skolems.push((fun.clone(), args.clone(), value));
                }
            }
        }
        prev_var = Some(var.clone());
        part.last_var = var;
    }
    // implicit $r := @id on the final step
    part.conds
        .push(Cond::ExistsAttr(part.last_var.clone(), "id".into()));
    Ok(part)
}

/// Compile a single pattern into the `<emb>` embeddings query of Example 8:
/// one `<emb>` element per embedding, with `<r>` carrying the result URI
/// and one child per bound variable.
pub fn compile_pattern_embeddings(pattern: &Pattern) -> Result<Query, CompileError> {
    let part = translate_pattern(pattern, "v", true)?;
    let mut children = vec![ConstructorItem::Element(Constructor {
        name: "r".into(),
        attrs: vec![],
        children: vec![ConstructorItem::Splice(Expr::VarAttr(
            part.last_var.clone(),
            "id".into(),
        ))],
    })];
    for v in pattern.variables() {
        children.push(ConstructorItem::Element(Constructor {
            name: v.clone(),
            attrs: vec![],
            children: vec![ConstructorItem::Splice(Expr::VarRef(v))],
        }));
    }
    Ok(Query {
        for_clauses: part.for_clauses,
        let_clauses: part.let_clauses,
        where_clause: Cond::from_conjuncts(part.conds),
        ret: Constructor {
            name: "emb".into(),
            attrs: vec![],
            children,
        },
    })
}

/// Compile a full mapping rule into the single provenance query of
/// Example 9, optionally restricted to one service call (the `where`
/// clause then carries `wl:time($s_last) < t` and `wl:label($t_last, s, t)`).
pub fn compile_rule(rule: &MappingRule, call: CallConstraint<'_>) -> Result<Query, CompileError> {
    let src = translate_pattern(&rule.source, "s", true)?;
    let tgt = translate_pattern(&rule.target, "t", false)?;

    let mut for_clauses = src.for_clauses;
    for_clauses.extend(tgt.for_clauses);
    let mut let_clauses = src.let_clauses;
    let mut conds = src.conds;
    conds.extend(tgt.conds);

    // shared-variable joins: target bindings against source-bound lets;
    // target-only variables become fresh lets
    let source_vars = rule.source.variables();
    for (i, (rule_var, value)) in tgt.bindings.into_iter().enumerate() {
        if source_vars.contains(&rule_var) {
            let synth = format!("{rule_var}__t{i}");
            let_clauses.push(LetClause {
                var: synth.clone(),
                expr: value,
            });
            conds.push(Cond::Cmp(
                Expr::VarRef(rule_var),
                CmpOp::Eq,
                Expr::VarRef(synth),
            ));
        } else {
            let_clauses.push(LetClause {
                var: rule_var,
                expr: value,
            });
        }
    }
    // Skolem constraints (source-side skolems are rare but handled the same)
    for (fun, args, value) in src.skolems.into_iter().chain(tgt.skolems) {
        conds.push(Cond::Cmp(
            Expr::Skolem(fun, args.into_iter().map(Expr::VarRef).collect()),
            CmpOp::Eq,
            value,
        ));
    }
    // temporal restriction to one call (Section 4)
    if let Some((service, time)) = call {
        conds.push(Cond::Cmp(
            Expr::EffectiveTime(src.last_var.clone()),
            CmpOp::Lt,
            Expr::Literal(weblab_xpath::Value::Int(time as i64)),
        ));
        conds.push(Cond::LabelEq(tgt.last_var.clone(), service.into(), time));
    }

    Ok(Query {
        for_clauses,
        let_clauses,
        where_clause: Cond::from_conjuncts(conds),
        ret: Constructor {
            name: "prov".into(),
            attrs: vec![
                (
                    "from".into(),
                    Expr::VarAttr(tgt.last_var.clone(), "id".into()),
                ),
                ("to".into(), Expr::VarAttr(src.last_var.clone(), "id".into())),
            ],
            children: vec![],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xpath::parse_pattern;

    #[test]
    fn example8_compilation_shape() {
        let p = parse_pattern("//TextMediaUnit[$x := @id]/TextContent").unwrap();
        let q = compile_pattern_embeddings(&p).unwrap();
        let s = q.to_string();
        assert!(s.contains("for $v1 in //TextMediaUnit"));
        assert!(s.contains("$v2 in $v1/TextContent"));
        assert!(s.contains("let $x := $v1/@id"));
        assert!(s.contains("<r>{$v2/@id}</r>"));
        assert!(s.contains("<x>{$x}</x>"));
    }

    #[test]
    fn example9_compilation_shape() {
        let rule = MappingRule::parse(
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]",
        )
        .unwrap();
        let q = compile_rule(&rule, Some(("LanguageExtractor", 2))).unwrap();
        let s = q.to_string();
        assert!(s.contains("for $s1 in //TextMediaUnit"));
        assert!(s.contains("$s2 in $s1/TextContent"));
        assert!(s.contains("$t1 in //TextMediaUnit"));
        assert!(s.contains("$t2 in $t1/Annotation"));
        assert!(s.contains("$t2/Language"));
        assert!(s.contains("$x = $x__t0"));
        assert!(s.contains("wl:time($s2) < 2"));
        assert!(s.contains("wl:label($t2, 'LanguageExtractor', 2)"));
        assert!(s.contains("return <prov from=\"{$t2/@id}\" to=\"{$s2/@id}\"/>"));
        // compiled text is valid syntax
        crate::parser::parse_query(&s).unwrap();
    }

    #[test]
    fn position_rules_are_rejected() {
        let rule =
            MappingRule::parse("//A[B][$p := position()]/B => //C[$p = position()]").unwrap();
        assert_eq!(
            compile_rule(&rule, None).unwrap_err(),
            CompileError::PositionUnsupported
        );
    }

    #[test]
    fn skolem_rules_compile_to_function_equality() {
        let rule = MappingRule::parse("//A[$x := @a] => //C[f($x) := @b]").unwrap();
        let q = compile_rule(&rule, None).unwrap();
        let s = q.to_string();
        assert!(s.contains("f($x) = $t1/@b"));
    }

    #[test]
    fn positional_predicate_rejected_in_embeddings() {
        let p = parse_pattern("//T[1]").unwrap();
        assert_eq!(
            compile_pattern_embeddings(&p).unwrap_err(),
            CompileError::PositionUnsupported
        );
    }
}
