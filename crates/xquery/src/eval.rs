//! FLWOR evaluation over document-state views.
//!
//! The evaluator binds `for` variables by nested iteration over their
//! paths, computes `let` bindings, filters on the `where` condition (with
//! existential semantics for path operands, as in XPath general
//! comparisons) and materialises one constructed element per satisfying
//! binding into a fresh output [`Document`].

use std::collections::HashMap;

use weblab_xml::{DocView, Document, NodeId};
use weblab_xpath::{effective_label, effective_time, NodeTest, Value};

use crate::ast::{Cond, Constructor, ConstructorItem, Expr, Path, PathStart, Query};

/// A bound value during evaluation: a node (from `for`) or a value
/// (from `let`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// A node of the queried document.
    Node(NodeId),
    /// A computed value (possibly absent — e.g. a missing attribute; absent
    /// values fail comparisons but do not abort the query).
    Value(Option<Value>),
}

/// Result of running a query: the constructed elements, owned by a fresh
/// document whose root is a synthetic `<result>` element.
#[derive(Debug)]
pub struct QueryResult {
    /// Output document holding the constructed fragments.
    pub doc: Document,
    /// Roots of the constructed elements, in production order.
    pub items: Vec<NodeId>,
}

impl QueryResult {
    /// Number of constructed elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the query produced nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Extract `(from, to)` attribute pairs from constructed `<prov>`-style
    /// elements — the provenance-link decoding used by the Mapper.
    pub fn link_pairs(&self) -> Vec<(String, String)> {
        let v = self.doc.view();
        self.items
            .iter()
            .filter_map(|&n| {
                let from = v.attr(n, "from")?;
                let to = v.attr(n, "to")?;
                Some((from.to_string(), to.to_string()))
            })
            .collect()
    }
}

/// Options for [`evaluate_with`].
#[derive(Debug, Clone)]
pub struct XqEvalOptions {
    /// Evaluate `let` clauses and `where` conjuncts as soon as all the
    /// variables they reference are bound, pruning the nested iteration
    /// early (classic predicate pushdown). `false` evaluates everything at
    /// the innermost level — the textbook FLWOR semantics, kept as the
    /// ablation baseline.
    pub eager_where: bool,
}

impl Default for XqEvalOptions {
    fn default() -> Self {
        XqEvalOptions { eager_where: true }
    }
}

/// Run a query against a document state with default (optimised) options.
pub fn evaluate(query: &Query, view: &DocView<'_>) -> QueryResult {
    evaluate_with(query, view, &XqEvalOptions::default())
}

/// Run a query with explicit evaluation options.
pub fn evaluate_with(query: &Query, view: &DocView<'_>, opts: &XqEvalOptions) -> QueryResult {
    let mut out = Document::new("result");
    let root = out.root();
    let mut items = Vec::new();
    let mut env: HashMap<String, Binding> = HashMap::new();
    let plan = Plan::build(query, opts.eager_where);
    eval_for(query, &plan, view, 0, &mut env, &mut out, root, &mut items);
    QueryResult { doc: out, items }
}

/// Per-depth schedule: which `let` clauses become computable and which
/// `where` conjuncts become checkable once the first `depth` `for`
/// variables are bound. Depth 0 = before any `for` binding (constants).
struct Plan {
    lets_at: Vec<Vec<usize>>,
    conds_at: Vec<Vec<Cond>>,
}

impl Plan {
    fn build(query: &Query, eager: bool) -> Plan {
        let n = query.for_clauses.len();
        let mut lets_at: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut conds_at: Vec<Vec<Cond>> = vec![Vec::new(); n + 1];
        let conjuncts = query
            .where_clause
            .clone()
            .map(|w| w.conjuncts())
            .unwrap_or_default();
        if !eager {
            lets_at[n] = (0..query.let_clauses.len()).collect();
            conds_at[n] = conjuncts;
            return Plan { lets_at, conds_at };
        }
        let mut available: Vec<String> = Vec::new();
        let mut pending_lets: Vec<usize> = (0..query.let_clauses.len()).collect();
        let mut pending_conds: Vec<Cond> = conjuncts;
        for depth in 0..=n {
            if depth > 0 {
                available.push(query.for_clauses[depth - 1].var.clone());
            }
            // fixpoint: lets unlock other lets
            loop {
                let mut progressed = false;
                pending_lets.retain(|&i| {
                    let lc = &query.let_clauses[i];
                    if expr_vars(&lc.expr).iter().all(|v| available.contains(v)) {
                        lets_at[depth].push(i);
                        available.push(lc.var.clone());
                        progressed = true;
                        false
                    } else {
                        true
                    }
                });
                if !progressed {
                    break;
                }
            }
            pending_conds.retain(|c| {
                if cond_vars(c).iter().all(|v| available.contains(v)) {
                    conds_at[depth].push(c.clone());
                    false
                } else {
                    true
                }
            });
        }
        // anything left references unknown variables; check at the end so
        // it fails uniformly instead of silently vanishing
        conds_at[n].extend(pending_conds);
        lets_at[n].extend(pending_lets);
        Plan { lets_at, conds_at }
    }
}

/// Variables referenced by an expression.
fn expr_vars(expr: &Expr) -> Vec<String> {
    match expr {
        Expr::VarRef(v)
        | Expr::VarAttr(v, _)
        | Expr::VarPathText(v, _)
        | Expr::VarPathAttr(v, _, _)
        | Expr::VarText(v)
        | Expr::EffectiveTime(v) => vec![v.clone()],
        Expr::Literal(_) => Vec::new(),
        Expr::Skolem(_, args) => args.iter().flat_map(expr_vars).collect(),
    }
}

/// Variables referenced by a condition.
fn cond_vars(cond: &Cond) -> Vec<String> {
    match cond {
        Cond::Cmp(l, _, r) => {
            let mut v = expr_vars(l);
            v.extend(expr_vars(r));
            v
        }
        Cond::ExistsPath(v, _) | Cond::ExistsAttr(v, _) | Cond::LabelEq(v, _, _) => {
            vec![v.clone()]
        }
        Cond::And(cs) | Cond::Or(cs) => cs.iter().flat_map(cond_vars).collect(),
        Cond::Not(c) => cond_vars(c),
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_for(
    query: &Query,
    plan: &Plan,
    view: &DocView<'_>,
    depth: usize,
    env: &mut HashMap<String, Binding>,
    out: &mut Document,
    out_root: NodeId,
    items: &mut Vec<NodeId>,
) {
    // scheduled lets at this depth
    let saved: Vec<(String, Option<Binding>)> = plan.lets_at[depth]
        .iter()
        .map(|&i| {
            let lc = &query.let_clauses[i];
            let v = eval_expr_single(&lc.expr, view, env);
            let prev = env.insert(lc.var.clone(), Binding::Value(v));
            (lc.var.clone(), prev)
        })
        .collect();
    // scheduled conjuncts at this depth
    let keep = plan.conds_at[depth].iter().all(|c| eval_cond(c, view, env));
    if keep {
        if depth == query.for_clauses.len() {
            let node = build(&query.ret, view, env, out, out_root);
            items.push(node);
        } else {
            let clause = &query.for_clauses[depth];
            for node in path_nodes(&clause.path, view, env) {
                let prev = env.insert(clause.var.clone(), Binding::Node(node));
                eval_for(query, plan, view, depth + 1, env, out, out_root, items);
                match prev {
                    Some(b) => {
                        env.insert(clause.var.clone(), b);
                    }
                    None => {
                        env.remove(&clause.var);
                    }
                }
            }
        }
    }
    for (var, prev) in saved.into_iter().rev() {
        match prev {
            Some(b) => {
                env.insert(var, b);
            }
            None => {
                env.remove(&var);
            }
        }
    }
}

/// Nodes a path ranges over under the current environment.
pub fn path_nodes(
    path: &Path,
    view: &DocView<'_>,
    env: &HashMap<String, Binding>,
) -> Vec<NodeId> {
    let mut frontier: Vec<NodeId> = match &path.start {
        PathStart::Root => {
            // virtual node above the root: child steps reach the root,
            // descendant steps reach every node
            return steps_from_virtual_root(&path.steps, view);
        }
        PathStart::Var(v) => match env.get(v) {
            Some(Binding::Node(n)) => vec![*n],
            _ => return Vec::new(),
        },
    };
    for (desc, test) in &path.steps {
        frontier = expand(view, &frontier, *desc, test);
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn steps_from_virtual_root(steps: &[(bool, NodeTest)], view: &DocView<'_>) -> Vec<NodeId> {
    let Some((first, rest)) = steps.split_first() else {
        return Vec::new();
    };
    let (desc, test) = first;
    let mut frontier: Vec<NodeId> = if *desc {
        view.descendants(view.root())
            .filter(|n| view.name(*n).map(|nm| test.matches(nm)).unwrap_or(false))
            .collect()
    } else {
        let r = view.root();
        if view.name(r).map(|nm| test.matches(nm)).unwrap_or(false) {
            vec![r]
        } else {
            Vec::new()
        }
    };
    for (desc, test) in rest {
        frontier = expand(view, &frontier, *desc, test);
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn expand(view: &DocView<'_>, frontier: &[NodeId], desc: bool, test: &NodeTest) -> Vec<NodeId> {
    let mut next = Vec::new();
    for &ctx in frontier {
        if desc {
            for n in view.descendants(ctx).skip(1) {
                if view.name(n).map(|nm| test.matches(nm)).unwrap_or(false) {
                    next.push(n);
                }
            }
        } else {
            for &c in view.children(ctx) {
                if view.name(c).map(|nm| test.matches(nm)).unwrap_or(false) {
                    next.push(c);
                }
            }
        }
    }
    next
}

/// Resolve `@attr` with virtual `@id`/`@s`/`@t` fallbacks.
fn attr_value(view: &DocView<'_>, node: NodeId, attr: &str) -> Option<Value> {
    if let Some(v) = view.attr(node, attr) {
        return Some(Value::Str(v.to_string()));
    }
    match attr {
        "id" => view.uri(node).map(|u| Value::Str(u.to_string())),
        "s" => view.label(node).map(|l| Value::Str(l.service.clone())),
        "t" => view.label(node).map(|l| Value::Int(l.time as i64)),
        _ => None,
    }
}

/// All values an expression can denote (path expressions are node-set
/// valued, everything else singleton).
fn eval_expr_multi(
    expr: &Expr,
    view: &DocView<'_>,
    env: &HashMap<String, Binding>,
) -> Vec<Value> {
    match expr {
        Expr::VarRef(v) => match env.get(v) {
            Some(Binding::Value(Some(val))) => vec![val.clone()],
            Some(Binding::Node(n)) => view
                .uri(*n)
                .map(|u| vec![Value::Str(u.to_string())])
                .unwrap_or_default(),
            _ => Vec::new(),
        },
        Expr::VarAttr(v, a) => match env.get(v) {
            Some(Binding::Node(n)) => attr_value(view, *n, a).into_iter().collect(),
            _ => Vec::new(),
        },
        Expr::VarPathText(v, steps) => nodes_of(v, steps, view, env)
            .into_iter()
            .map(|n| Value::Str(view.text_content(n)))
            .collect(),
        Expr::VarPathAttr(v, steps, a) => nodes_of(v, steps, view, env)
            .into_iter()
            .filter_map(|n| attr_value(view, n, a))
            .collect(),
        Expr::VarText(v) => match env.get(v) {
            Some(Binding::Node(n)) => vec![Value::Str(view.text_content(*n))],
            _ => Vec::new(),
        },
        Expr::Literal(v) => vec![v.clone()],
        Expr::Skolem(fun, args) => {
            let vals: Option<Vec<Value>> = args
                .iter()
                .map(|a| eval_expr_single(a, view, env))
                .collect();
            match vals {
                Some(vals) => vec![Value::skolem(fun.clone(), vals)],
                None => Vec::new(),
            }
        }
        Expr::EffectiveTime(v) => match env.get(v) {
            Some(Binding::Node(n)) => vec![Value::Int(effective_time(view, *n) as i64)],
            _ => Vec::new(),
        },
    }
}

fn nodes_of(
    var: &str,
    steps: &[(bool, NodeTest)],
    view: &DocView<'_>,
    env: &HashMap<String, Binding>,
) -> Vec<NodeId> {
    let Some(Binding::Node(start)) = env.get(var) else {
        return Vec::new();
    };
    let mut frontier = vec![*start];
    for (desc, test) in steps {
        frontier = expand(view, &frontier, *desc, test);
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn eval_expr_single(
    expr: &Expr,
    view: &DocView<'_>,
    env: &HashMap<String, Binding>,
) -> Option<Value> {
    eval_expr_multi(expr, view, env).into_iter().next()
}

fn eval_cond(cond: &Cond, view: &DocView<'_>, env: &HashMap<String, Binding>) -> bool {
    match cond {
        Cond::Cmp(l, op, r) => {
            let lv = eval_expr_multi(l, view, env);
            let rv = eval_expr_multi(r, view, env);
            lv.iter()
                .any(|a| rv.iter().any(|b| op.test(a.sem_eq(b), a.sem_cmp(b))))
        }
        Cond::ExistsPath(v, steps) => !nodes_of(v, steps, view, env).is_empty(),
        Cond::ExistsAttr(v, a) => match env.get(v) {
            Some(Binding::Node(n)) => attr_value(view, *n, a).is_some(),
            _ => false,
        },
        Cond::LabelEq(v, service, time) => match env.get(v) {
            Some(Binding::Node(n)) => effective_label(view, *n)
                .map(|l| l.service == *service && l.time == *time)
                .unwrap_or(false),
            _ => false,
        },
        Cond::And(cs) => cs.iter().all(|c| eval_cond(c, view, env)),
        Cond::Or(cs) => cs.iter().any(|c| eval_cond(c, view, env)),
        Cond::Not(c) => !eval_cond(c, view, env),
    }
}

fn build(
    ctor: &Constructor,
    view: &DocView<'_>,
    env: &HashMap<String, Binding>,
    out: &mut Document,
    parent: NodeId,
) -> NodeId {
    let node = out
        .append_element(parent, ctor.name.clone())
        .expect("output document construction cannot fail");
    for (k, e) in &ctor.attrs {
        let v = eval_expr_single(e, view, env)
            .map(|v| v.canonical())
            .unwrap_or_default();
        out.set_attr(node, k.clone(), v).expect("element attr");
    }
    for item in &ctor.children {
        match item {
            ConstructorItem::Text(t) => {
                out.append_text(node, t.clone()).expect("text child");
            }
            ConstructorItem::Splice(e) => {
                let v = eval_expr_single(e, view, env)
                    .map(|v| v.canonical())
                    .unwrap_or_default();
                out.append_text(node, v).expect("spliced child");
            }
            ConstructorItem::Element(c) => {
                build(c, view, env, out, node);
            }
        }
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use weblab_xml::{to_xml_string, CallLabel, XmlWriteOptions};

    fn doc() -> Document {
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        for (i, (lang, t)) in [("fr", 1u64), ("en", 3u64)].iter().enumerate() {
            let tmu = d.append_element(root, "TextMediaUnit").unwrap();
            d.register_resource(
                tmu,
                format!("tmu{i}"),
                Some(CallLabel::new(if *t == 1 { "Normaliser" } else { "Translator" }, *t)),
            )
            .unwrap();
            let tc = d.append_element(tmu, "TextContent").unwrap();
            d.register_resource(tc, format!("tc{i}"), None).unwrap();
            d.append_text(tc, format!("text in {lang}")).unwrap();
            let a = d.append_element(tmu, "Annotation").unwrap();
            let l = d.append_element(a, "Language").unwrap();
            d.append_text(l, *lang).unwrap();
        }
        d
    }

    #[test]
    fn example8_query_runs() {
        let d = doc();
        let q = parse_query(
            "for $v1 in //TextMediaUnit, $v2 in $v1/TextContent \
             let $x := $v1/@id \
             return <emb><r>{$v2/@id}</r><x>{$x}</x></emb>",
        )
        .unwrap();
        let r = evaluate(&q, &d.view());
        assert_eq!(r.len(), 2);
        let opts = XmlWriteOptions {
            indent: None,
            include_meta: false,
        };
        let xml = weblab_xml::write_with(&r.doc.view(), r.items[0], &opts);
        assert_eq!(xml, "<emb><r>tc0</r><x>tmu0</x></emb>");
        let _ = to_xml_string(&r.doc.view());
    }

    #[test]
    fn where_clause_filters() {
        let d = doc();
        let q = parse_query(
            "for $v in //TextMediaUnit \
             where $v/Annotation/Language = 'fr' \
             return <hit to=\"{$v/@id}\" from=\"{$v/@id}\"/>",
        )
        .unwrap();
        let r = evaluate(&q, &d.view());
        assert_eq!(r.len(), 1);
        assert_eq!(r.link_pairs(), vec![("tmu0".to_string(), "tmu0".to_string())]);
    }

    #[test]
    fn extension_functions_evaluate() {
        let d = doc();
        let q = parse_query(
            "for $v in //TextContent \
             where wl:time($v) < 2 \
             return <hit from=\"{$v/@id}\" to=\"{$v/@id}\"/>",
        )
        .unwrap();
        // tc0 inherits t=1 from tmu0, tc1 inherits t=3
        let r = evaluate(&q, &d.view());
        assert_eq!(r.len(), 1);
        assert_eq!(r.link_pairs()[0].0, "tc0");

        let q2 = parse_query(
            "for $v in //TextMediaUnit \
             where wl:label($v, 'Translator', 3) \
             return <hit from=\"{$v/@id}\" to=\"{$v/@id}\"/>",
        )
        .unwrap();
        let r2 = evaluate(&q2, &d.view());
        assert_eq!(r2.len(), 1);
        assert_eq!(r2.link_pairs()[0].0, "tmu1");
    }

    #[test]
    fn join_across_for_clauses() {
        let d = doc();
        let q = parse_query(
            "for $s in //TextMediaUnit, $t in //TextMediaUnit \
             let $a := $s/@id, $b := $t/@id \
             where $s/Annotation/Language = 'fr' and $t/Annotation/Language = 'en' \
             return <prov from=\"{$b}\" to=\"{$a}\"/>",
        )
        .unwrap();
        let r = evaluate(&q, &d.view());
        assert_eq!(r.link_pairs(), vec![("tmu1".to_string(), "tmu0".to_string())]);
    }

    #[test]
    fn missing_attributes_fail_comparisons_quietly() {
        let d = doc();
        let q = parse_query(
            "for $v in //Annotation where $v/@id = 'x' \
             return <hit from=\"a\" to=\"b\"/>",
        )
        .unwrap();
        // annotations have no uri → no results, no panic
        assert!(evaluate(&q, &d.view()).is_empty());
    }

    #[test]
    fn skolem_expression_renders_canonically() {
        let d = doc();
        let q = parse_query(
            "for $v in //TextMediaUnit \
             let $x := $v/@id \
             where f($x) = 'f(tmu0)' \
             return <hit from=\"{$x}\" to=\"{$x}\"/>",
        )
        .unwrap();
        let r = evaluate(&q, &d.view());
        assert_eq!(r.len(), 1);
        assert_eq!(r.link_pairs()[0].0, "tmu0");
    }

    #[test]
    fn query_over_earlier_state_sees_less() {
        let mut d = Document::new("R");
        let root = d.root();
        let m0 = d.mark();
        let x = d.append_element(root, "X").unwrap();
        d.register_resource(x, "rx", None).unwrap();
        let q = parse_query("for $v in //X return <hit from=\"{$v/@id}\" to=\"-\"/>").unwrap();
        assert!(evaluate(&q, &d.view_at(m0)).is_empty());
        assert_eq!(evaluate(&q, &d.view()).len(), 1);
    }
}
