//! # weblab-xquery — FLWOR engine and mapping-rule compiler
//!
//! The paper's Mapper component (Section 6) "translates mapping rules into
//! standard XQuery expressions" so that provenance-link computation can
//! "take advantage of existing query optimization techniques". This crate
//! supplies everything that pipeline needs:
//!
//! * a FLWOR-subset engine — AST ([`Query`]), parser ([`parse_query`]),
//!   evaluator ([`evaluate`]) with eager predicate scheduling;
//! * the rule compiler ([`compile_rule`], [`compile_pattern_embeddings`])
//!   reproducing Examples 8 and 9;
//! * the ID-join optimiser ([`fuse_id_joins`]) reproducing Example 9's
//!   optimised rewriting;
//! * the compiled inference strategy ([`infer_provenance_xquery`]) that
//!   plugs into the same trace/rule-set inputs as `weblab_prov`'s native
//!   strategies and provably returns identical links.
//!
//! ```
//! use weblab_prov::MappingRule;
//! use weblab_xquery::{compile_rule, fuse_id_joins};
//!
//! let rule = MappingRule::parse(
//!     "//TextMediaUnit[$x := @id]/TextContent => \
//!      //TextMediaUnit[$x := @id]/Annotation[Language]",
//! ).unwrap();
//! let query = compile_rule(&rule, Some(("LanguageExtractor", 2))).unwrap();
//! let optimised = fuse_id_joins(&query);
//! // the optimiser eliminated the second //TextMediaUnit scan:
//! assert!(optimised.for_clauses.len() < query.for_clauses.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod compile;
mod eval;
mod optimize;
mod parser;
mod strategy;

pub use ast::{Cond, Constructor, ConstructorItem, Expr, ForClause, LetClause, Path, PathStart, Query};
pub use compile::{compile_pattern_embeddings, compile_rule, CallConstraint, CompileError};
pub use eval::{evaluate, evaluate_with, Binding, QueryResult, XqEvalOptions};
pub use optimize::fuse_id_joins;
pub use parser::{parse_query, QueryParseError};
pub use strategy::{infer_provenance_xquery, xquery_call_provenance, XQueryStrategyOptions};
