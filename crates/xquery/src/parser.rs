//! Parser for the FLWOR subset.
//!
//! Accepts the concrete syntax the compiler emits (and the paper prints in
//! Examples 8/9): `for $v in path, … let $x := expr, … where cond return
//! <elem attr="{expr}">…</elem>`. Whitespace (including newlines) is
//! insignificant between tokens.

use std::fmt;

use weblab_xpath::{CmpOp, NodeTest, Value};

use crate::ast::{
    Cond, Constructor, ConstructorItem, Expr, ForClause, LetClause, Path, PathStart, Query,
};

/// XQuery syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xquery parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a FLWOR query.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = P { input, pos: 0 };
    let q = p.query()?;
    p.ws();
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        let r = self.rest();
        if let Some(after) = r.strip_prefix(kw) {
            if after
                .chars()
                .next()
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true)
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn name(&mut self) -> Result<String, QueryParseError> {
        let r = self.rest();
        let end = r
            .find(|c: char| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')))
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        self.pos += end;
        Ok(r[..end].to_string())
    }

    fn var(&mut self) -> Result<String, QueryParseError> {
        if !self.eat("$") {
            return Err(self.err("expected '$'"));
        }
        self.name()
    }

    fn integer(&mut self) -> Result<i64, QueryParseError> {
        let r = self.rest();
        let neg = r.starts_with('-');
        let body = if neg { &r[1..] } else { r };
        let digits = body
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(body.len());
        if digits == 0 {
            return Err(self.err("expected an integer"));
        }
        let end = digits + usize::from(neg);
        let v = r[..end]
            .parse()
            .map_err(|_| self.err("integer overflow"))?;
        self.pos += end;
        Ok(v)
    }

    fn string_lit(&mut self) -> Result<String, QueryParseError> {
        if !self.eat("'") {
            return Err(self.err("expected a string literal"));
        }
        let r = self.rest();
        let end = r
            .find('\'')
            .ok_or_else(|| self.err("unterminated string literal"))?;
        let s = r[..end].to_string();
        self.pos += end + 1;
        Ok(s)
    }

    fn query(&mut self) -> Result<Query, QueryParseError> {
        self.ws();
        if !self.eat_kw("for") {
            return Err(self.err("expected 'for'"));
        }
        let mut for_clauses = Vec::new();
        loop {
            self.ws();
            let var = self.var()?;
            self.ws();
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in'"));
            }
            self.ws();
            let path = self.path()?;
            for_clauses.push(ForClause { var, path });
            self.ws();
            if !self.eat(",") {
                break;
            }
        }
        let mut let_clauses = Vec::new();
        self.ws();
        if self.eat_kw("let") {
            loop {
                self.ws();
                let var = self.var()?;
                self.ws();
                if !self.eat(":=") {
                    return Err(self.err("expected ':='"));
                }
                self.ws();
                let expr = self.expr()?;
                let_clauses.push(LetClause { var, expr });
                self.ws();
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.ws();
        let where_clause = if self.eat_kw("where") {
            Some(self.cond()?)
        } else {
            None
        };
        self.ws();
        if !self.eat_kw("return") {
            return Err(self.err("expected 'return'"));
        }
        self.ws();
        let ret = self.constructor()?;
        Ok(Query {
            for_clauses,
            let_clauses,
            where_clause,
            ret,
        })
    }

    fn steps(&mut self) -> Result<Vec<(bool, NodeTest)>, QueryParseError> {
        let mut steps = Vec::new();
        loop {
            // stop at '/@' (attribute access handled by caller)
            if self.rest().starts_with("/@") {
                break;
            }
            let desc = if self.eat("//") {
                true
            } else if self.eat("/") {
                false
            } else {
                break;
            };
            let test = if self.eat("*") {
                NodeTest::Wildcard
            } else {
                NodeTest::Name(self.name()?)
            };
            steps.push((desc, test));
        }
        Ok(steps)
    }

    fn path(&mut self) -> Result<Path, QueryParseError> {
        if self.rest().starts_with('$') {
            let v = self.var()?;
            let steps = self.steps()?;
            if steps.is_empty() {
                return Err(self.err("variable path must have at least one step"));
            }
            Ok(Path {
                start: PathStart::Var(v),
                steps,
            })
        } else {
            let steps = self.steps()?;
            if steps.is_empty() {
                return Err(self.err("expected a path"));
            }
            Ok(Path {
                start: PathStart::Root,
                steps,
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, QueryParseError> {
        self.ws();
        if self.rest().starts_with('$') {
            let v = self.var()?;
            let steps = self.steps()?;
            if self.eat("/@") {
                let a = self.name()?;
                return Ok(if steps.is_empty() {
                    Expr::VarAttr(v, a)
                } else {
                    Expr::VarPathAttr(v, steps, a)
                });
            }
            return Ok(if steps.is_empty() {
                Expr::VarRef(v)
            } else {
                Expr::VarPathText(v, steps)
            });
        }
        if self.rest().starts_with('\'') {
            return Ok(Expr::Literal(Value::Str(self.string_lit()?)));
        }
        if self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_digit() || c == '-')
            .unwrap_or(false)
        {
            return Ok(Expr::Literal(Value::Int(self.integer()?)));
        }
        // function forms: string($v), wl:time($v), skolem f(args…)
        let fun = self.name()?;
        self.ws();
        if !self.eat("(") {
            return Err(self.err("expected '(' after function name"));
        }
        self.ws();
        match fun.as_str() {
            "string" => {
                let v = self.var()?;
                self.ws();
                if !self.eat(")") {
                    return Err(self.err("expected ')'"));
                }
                Ok(Expr::VarText(v))
            }
            "wl:time" => {
                let v = self.var()?;
                self.ws();
                if !self.eat(")") {
                    return Err(self.err("expected ')'"));
                }
                Ok(Expr::EffectiveTime(v))
            }
            _ => {
                let mut args = Vec::new();
                if !self.eat(")") {
                    loop {
                        args.push(self.expr()?);
                        self.ws();
                        if self.eat(",") {
                            self.ws();
                            continue;
                        }
                        if self.eat(")") {
                            break;
                        }
                        return Err(self.err("expected ',' or ')' in argument list"));
                    }
                }
                Ok(Expr::Skolem(fun, args))
            }
        }
    }

    fn cond(&mut self) -> Result<Cond, QueryParseError> {
        let mut terms = vec![self.and_cond()?];
        loop {
            self.ws();
            if self.eat_kw("or") {
                terms.push(self.and_cond()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Cond::Or(terms)
        })
    }

    fn and_cond(&mut self) -> Result<Cond, QueryParseError> {
        let mut terms = vec![self.atom_cond()?];
        loop {
            self.ws();
            if self.eat_kw("and") {
                terms.push(self.atom_cond()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Cond::And(terms)
        })
    }

    fn atom_cond(&mut self) -> Result<Cond, QueryParseError> {
        self.ws();
        if self.eat_kw("not") {
            self.ws();
            if !self.eat("(") {
                return Err(self.err("expected '(' after not"));
            }
            let c = self.cond()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Cond::Not(Box::new(c)));
        }
        if self.eat("(") {
            let c = self.cond()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(c);
        }
        if self.rest().starts_with("wl:label") {
            self.pos += "wl:label".len();
            self.ws();
            if !self.eat("(") {
                return Err(self.err("expected '('"));
            }
            self.ws();
            let v = self.var()?;
            self.ws();
            if !self.eat(",") {
                return Err(self.err("expected ','"));
            }
            self.ws();
            let s = self.string_lit()?;
            self.ws();
            if !self.eat(",") {
                return Err(self.err("expected ','"));
            }
            self.ws();
            let t = self.integer()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Cond::LabelEq(v, s, t as u64));
        }
        let lhs = self.expr()?;
        self.ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else {
            None
        };
        match op {
            Some(op) => {
                self.ws();
                let rhs = self.expr()?;
                Ok(Cond::Cmp(lhs, op, rhs))
            }
            None => match lhs {
                Expr::VarAttr(v, a) => Ok(Cond::ExistsAttr(v, a)),
                Expr::VarPathText(v, p) => Ok(Cond::ExistsPath(v, p)),
                other => Err(self.err(format!("expected comparison after {other}"))),
            },
        }
    }

    fn constructor(&mut self) -> Result<Constructor, QueryParseError> {
        if !self.eat("<") {
            return Err(self.err("expected '<'"));
        }
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            if self.eat("/>") {
                return Ok(Constructor {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            if self.eat(">") {
                break;
            }
            let aname = self.name()?;
            self.ws();
            if !self.eat("=") {
                return Err(self.err("expected '=' in constructor attribute"));
            }
            self.ws();
            if !self.eat("\"") {
                return Err(self.err("expected '\"'"));
            }
            self.ws();
            let expr = if self.eat("{") {
                let e = self.expr()?;
                self.ws();
                if !self.eat("}") {
                    return Err(self.err("expected '}'"));
                }
                e
            } else {
                // literal attribute text
                let r = self.rest();
                let end = r
                    .find('"')
                    .ok_or_else(|| self.err("unterminated attribute"))?;
                let text = r[..end].to_string();
                self.pos += end;
                Expr::Literal(Value::Str(text))
            };
            self.ws();
            if !self.eat("\"") {
                return Err(self.err("expected closing '\"'"));
            }
            attrs.push((aname, expr));
        }
        // children until </name>
        let mut children = Vec::new();
        loop {
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                self.ws();
                if !self.eat(">") {
                    return Err(self.err("expected '>'"));
                }
                if close != name {
                    return Err(self.err(format!(
                        "mismatched constructor close tag: expected </{name}>, found </{close}>"
                    )));
                }
                return Ok(Constructor {
                    name,
                    attrs,
                    children,
                });
            }
            if self.rest().starts_with('<') {
                children.push(ConstructorItem::Element(self.constructor()?));
                continue;
            }
            if self.eat("{") {
                self.ws();
                let e = self.expr()?;
                self.ws();
                if !self.eat("}") {
                    return Err(self.err("expected '}'"));
                }
                children.push(ConstructorItem::Splice(e));
                continue;
            }
            if self.at_end() {
                return Err(self.err("unterminated constructor"));
            }
            let r = self.rest();
            let end = r
                .find(['<', '{'])
                .unwrap_or(r.len());
            let text = r[..end].to_string();
            self.pos += end;
            if !text.trim().is_empty() {
                children.push(ConstructorItem::Text(text.trim().to_string()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example8() {
        let q = parse_query(
            "for $v1 in //TextMediaUnit,\n    $v2 in $v1/TextContent\n\
             let $x := $v1/@id\n\
             return <emb><r>{$v2/@id}</r><x>{$x}</x></emb>",
        )
        .unwrap();
        assert_eq!(q.for_clauses.len(), 2);
        assert_eq!(q.let_clauses.len(), 1);
        assert!(q.where_clause.is_none());
        assert_eq!(q.ret.children.len(), 2);
    }

    #[test]
    fn parses_example9_shape() {
        let q = parse_query(
            "for $s1 in //TextMediaUnit, $s2 in $s1/TextContent, \
                 $t1 in //TextMediaUnit, $t2 in $t1/Annotation \
             let $x1 := $s1/@id, $x2 := $t1/@id \
             where $t2/Language and $x1 = $x2 and wl:time($s2) < 3 \
                   and wl:label($t2, 'LanguageExtractor', 3) \
             return <prov from=\"{$t2/@id}\" to=\"{$s2/@id}\"/>",
        )
        .unwrap();
        assert_eq!(q.for_clauses.len(), 4);
        let w = q.where_clause.unwrap().conjuncts();
        assert_eq!(w.len(), 4);
        assert!(matches!(w[0], Cond::ExistsPath(..)));
        assert!(matches!(w[3], Cond::LabelEq(..)));
    }

    #[test]
    fn round_trip_through_display() {
        let src = "for $a in //X, $b in $a/Y \
                   let $v := $a/@id \
                   where $b/@k = 'z' or not($v = '1') \
                   return <out a=\"{$v}\"><n>{$b/@k}</n>txt</out>";
        let q = parse_query(src).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn skolem_function_calls_parse() {
        let q = parse_query(
            "for $a in //A let $x := $a/@a where f($x) = $a/@b \
             return <r/>",
        )
        .unwrap();
        match &q.where_clause {
            Some(Cond::Cmp(Expr::Skolem(f, args), _, _)) => {
                assert_eq!(f, "f");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        assert!(parse_query("for $a in //X return").is_err());
        assert!(parse_query("for $a in //X return <a></b>").is_err());
        assert!(parse_query("let $x := 1 return <a/>").is_err()); // no for
        let e = parse_query("for $a in //X where return <a/>").unwrap_err();
        assert!(e.offset > 0);
    }

    #[test]
    fn nested_constructors() {
        let q = parse_query("for $a in //X return <a><b><c>{$a/@id}</c></b></a>").unwrap();
        match &q.ret.children[0] {
            ConstructorItem::Element(b) => {
                assert_eq!(b.name, "b");
                assert_eq!(b.children.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
