//! The XQuery-compiled provenance inference strategy.
//!
//! Mirrors `weblab_prov`'s temporal-rewrite strategy, but goes through the
//! full Mapper pipeline of Section 6: compile each rule to a FLWOR query
//! restricted to one call, optionally fuse ID joins, evaluate on the final
//! document, and decode the constructed `<prov from=… to=…/>` elements back
//! into provenance links.

use weblab_prov::{CallRecord, ExecutionTrace, ProvLink, ProvenanceGraph, RuleSet};
use weblab_xml::Document;

use crate::compile::{compile_rule, CompileError};
use crate::eval::{evaluate_with, XqEvalOptions};
use crate::optimize::fuse_id_joins;

/// Options for the compiled strategy.
#[derive(Debug, Clone)]
pub struct XQueryStrategyOptions {
    /// Run [`fuse_id_joins`] on each compiled query (Example 9's optimised
    /// form).
    pub fuse_id_joins: bool,
    /// Eager where-conjunct evaluation inside the engine.
    pub eager_where: bool,
}

impl Default for XQueryStrategyOptions {
    fn default() -> Self {
        XQueryStrategyOptions {
            fuse_id_joins: true,
            eager_where: true,
        }
    }
}

/// Compute the direct provenance links of one call via the compiled query.
pub fn xquery_call_provenance(
    rule: &weblab_prov::MappingRule,
    doc: &Document,
    call: &CallRecord,
    opts: &XQueryStrategyOptions,
) -> Result<Vec<ProvLink>, CompileError> {
    let mut query = compile_rule(rule, Some((&call.service, call.time)))?;
    if opts.fuse_id_joins {
        query = fuse_id_joins(&query);
    }
    let result = evaluate_with(
        &query,
        &doc.view(),
        &XqEvalOptions {
            eager_where: opts.eager_where,
        },
    );
    let mut links = Vec::new();
    for (from_uri, to_uri) in result.link_pairs() {
        let (Some(from), Some(to)) = (doc.node_by_uri(&from_uri), doc.node_by_uri(&to_uri))
        else {
            continue;
        };
        links.push(ProvLink {
            from,
            from_uri,
            to,
            to_uri,
        });
    }
    links.sort();
    links.dedup();
    Ok(links)
}

/// Infer the full provenance graph through compiled queries.
pub fn infer_provenance_xquery(
    doc: &Document,
    trace: &ExecutionTrace,
    rules: &RuleSet,
    opts: &XQueryStrategyOptions,
) -> Result<ProvenanceGraph, CompileError> {
    let mut graph = ProvenanceGraph::from_view(&doc.view());
    let channel_map = trace.channel_map();
    let mut links = Vec::new();
    for call in &trace.calls {
        for rule in rules.rules_for(&call.service) {
            let call_links = xquery_call_provenance(rule, doc, call, opts)?;
            links.extend(weblab_prov::filter_links_by_channel(
                &doc.view(),
                call_links,
                &call.channel,
                &channel_map,
            ));
        }
    }
    graph.add_links(links);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, paper_example, EngineOptions, MappingRule, RuleSet};

    #[test]
    fn compiled_strategy_matches_native_on_position_free_rules() {
        // M1 uses a positional predicate (not compilable); check M2/M3 only.
        let (doc, trace, _) = paper_example::build();
        let mut rules = RuleSet::new();
        rules.add_parsed("LanguageExtractor", paper_example::M2).unwrap();
        rules.add_parsed("Translator", paper_example::M3).unwrap();

        let native = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let compiled = infer_provenance_xquery(
            &doc,
            &trace,
            &rules,
            &XQueryStrategyOptions::default(),
        )
        .unwrap();
        assert_eq!(native.links, compiled.links);
        assert!(!compiled.links.is_empty());
    }

    #[test]
    fn fusion_and_eager_options_do_not_change_results() {
        let (doc, trace, _) = paper_example::build();
        let mut rules = RuleSet::new();
        rules.add_parsed("LanguageExtractor", paper_example::M2).unwrap();
        let variants = [
            XQueryStrategyOptions { fuse_id_joins: false, eager_where: false },
            XQueryStrategyOptions { fuse_id_joins: false, eager_where: true },
            XQueryStrategyOptions { fuse_id_joins: true, eager_where: false },
            XQueryStrategyOptions { fuse_id_joins: true, eager_where: true },
        ];
        let results: Vec<_> = variants
            .iter()
            .map(|o| {
                infer_provenance_xquery(&doc, &trace, &rules, o)
                    .unwrap()
                    .links
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    #[test]
    fn position_rules_surface_a_compile_error() {
        let (doc, trace, _) = paper_example::build();
        let mut rules = RuleSet::new();
        rules.add("Normaliser", MappingRule::parse(paper_example::M1).unwrap());
        assert!(infer_provenance_xquery(
            &doc,
            &trace,
            &rules,
            &XQueryStrategyOptions::default()
        )
        .is_err());
    }
}
