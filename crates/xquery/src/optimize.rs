//! Query optimisation — the ID-join fusion of Example 9.
//!
//! The paper observes that "a query optimizer might exploit the fact that
//! `@id` is a node identifier (of type ID)" and fuse the two loops of the
//! compiled query: instead of iterating `$t1` over all `//TextMediaUnit`
//! and joining `$t1/@id = $s1/@id`, iterate the dependents *relative to*
//! `$s1` (`$t2 in $s1/Annotation`). Because `@id` is unique, two variables
//! ranging over the same absolute path with equal `@id`s denote the same
//! node, so the later loop can be eliminated entirely.
//!
//! [`fuse_id_joins`] performs exactly this rewrite: it finds where-conjuncts
//! equating the `@id` attributes of two root-anchored `for` variables with
//! identical paths, drops the later variable's loop, substitutes the
//! earlier variable for it everywhere, and removes the spent conjunct.

use crate::ast::{Cond, Constructor, ConstructorItem, Expr, Path, PathStart, Query};

/// Apply ID-join fusion until fixpoint, then clean up: deduplicate
/// where-conjuncts and drop `let` clauses whose variable is no longer
/// referenced. Preserves semantics whenever `@id` is unique per document,
/// which the WebLab model guarantees (URIs are injective, Definition 1).
pub fn fuse_id_joins(query: &Query) -> Query {
    let mut q = query.clone();
    while fuse_once(&mut q) {}
    dedup_conjuncts(&mut q);
    remove_dead_lets(&mut q);
    q
}

/// Remove duplicate conjuncts from the where clause (fusion substitutions
/// frequently leave two copies of e.g. `$s1/@id`).
fn dedup_conjuncts(q: &mut Query) {
    if let Some(w) = q.where_clause.take() {
        let mut seen: Vec<Cond> = Vec::new();
        for c in w.conjuncts() {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        q.where_clause = Cond::from_conjuncts(seen);
    }
}

/// Drop `let` clauses binding variables that nothing references. A dropped
/// let can orphan another, so iterate to fixpoint.
fn remove_dead_lets(q: &mut Query) {
    loop {
        let mut used: Vec<String> = Vec::new();
        for lc in &q.let_clauses {
            collect_vars_expr(&lc.expr, &mut used);
        }
        if let Some(w) = &q.where_clause {
            collect_vars_cond(w, &mut used);
        }
        collect_vars_ctor(&q.ret, &mut used);
        let before = q.let_clauses.len();
        // a let used only by other dead lets will be caught next round;
        // conservatively keep any let referenced anywhere
        let mut kept = Vec::new();
        for lc in q.let_clauses.drain(..) {
            if used.contains(&lc.var) {
                kept.push(lc);
            }
        }
        q.let_clauses = kept;
        if q.let_clauses.len() == before {
            break;
        }
    }
}

fn collect_vars_expr(e: &Expr, used: &mut Vec<String>) {
    match e {
        Expr::VarRef(v)
        | Expr::VarAttr(v, _)
        | Expr::VarPathText(v, _)
        | Expr::VarPathAttr(v, _, _)
        | Expr::VarText(v)
        | Expr::EffectiveTime(v) => used.push(v.clone()),
        Expr::Literal(_) => {}
        Expr::Skolem(_, args) => {
            for a in args {
                collect_vars_expr(a, used);
            }
        }
    }
}

fn collect_vars_cond(c: &Cond, used: &mut Vec<String>) {
    match c {
        Cond::Cmp(l, _, r) => {
            collect_vars_expr(l, used);
            collect_vars_expr(r, used);
        }
        Cond::ExistsPath(v, _) | Cond::ExistsAttr(v, _) | Cond::LabelEq(v, _, _) => {
            used.push(v.clone())
        }
        Cond::And(cs) | Cond::Or(cs) => {
            for c in cs {
                collect_vars_cond(c, used);
            }
        }
        Cond::Not(c) => collect_vars_cond(c, used),
    }
}

fn collect_vars_ctor(c: &Constructor, used: &mut Vec<String>) {
    for (_, e) in &c.attrs {
        collect_vars_expr(e, used);
    }
    for item in &c.children {
        match item {
            ConstructorItem::Text(_) => {}
            ConstructorItem::Splice(e) => collect_vars_expr(e, used),
            ConstructorItem::Element(el) => collect_vars_ctor(el, used),
        }
    }
}

/// Resolve a let-variable chain down to a root expression.
fn deref<'q>(q: &'q Query, expr: &'q Expr) -> &'q Expr {
    let mut cur = expr;
    let mut fuel = q.let_clauses.len() + 1;
    while let Expr::VarRef(v) = cur {
        let Some(lc) = q.let_clauses.iter().find(|lc| lc.var == *v) else {
            break;
        };
        cur = &lc.expr;
        fuel -= 1;
        if fuel == 0 {
            break;
        }
    }
    cur
}

fn fuse_once(q: &mut Query) -> bool {
    let conjuncts: Vec<Cond> = q
        .where_clause
        .clone()
        .map(|w| w.conjuncts())
        .unwrap_or_default();
    for (ci, c) in conjuncts.iter().enumerate() {
        let Cond::Cmp(l, weblab_xpath::CmpOp::Eq, r) = c else {
            continue;
        };
        let (Expr::VarAttr(v1, a1), Expr::VarAttr(v2, a2)) = (deref(q, l), deref(q, r)) else {
            continue;
        };
        if a1 != "id" || a2 != "id" || v1 == v2 {
            continue;
        }
        // both must be for-variables over identical root-anchored paths
        let f1 = q.for_clauses.iter().position(|f| f.var == *v1);
        let f2 = q.for_clauses.iter().position(|f| f.var == *v2);
        let (Some(i1), Some(i2)) = (f1, f2) else {
            continue;
        };
        let (keep_idx, drop_idx) = if i1 < i2 { (i1, i2) } else { (i2, i1) };
        let keep_var = q.for_clauses[keep_idx].var.clone();
        let drop_var = q.for_clauses[drop_idx].var.clone();
        let same_path = {
            let a = &q.for_clauses[keep_idx].path;
            let b = &q.for_clauses[drop_idx].path;
            matches!(a.start, PathStart::Root)
                && matches!(b.start, PathStart::Root)
                && a.steps == b.steps
        };
        if !same_path {
            continue;
        }
        // perform the fusion
        q.for_clauses.remove(drop_idx);
        substitute_query(q, &drop_var, &keep_var);
        let mut remaining = conjuncts;
        remaining.remove(ci);
        for c in &mut remaining {
            substitute_cond(c, &drop_var, &keep_var);
        }
        q.where_clause = Cond::from_conjuncts(remaining);
        return true;
    }
    false
}

fn substitute_query(q: &mut Query, from: &str, to: &str) {
    for fc in &mut q.for_clauses {
        substitute_path(&mut fc.path, from, to);
    }
    for lc in &mut q.let_clauses {
        substitute_expr(&mut lc.expr, from, to);
    }
    if let Some(w) = &mut q.where_clause {
        substitute_cond(w, from, to);
    }
    substitute_ctor(&mut q.ret, from, to);
}

fn substitute_path(p: &mut Path, from: &str, to: &str) {
    if let PathStart::Var(v) = &mut p.start {
        if v == from {
            *v = to.to_string();
        }
    }
}

fn substitute_expr(e: &mut Expr, from: &str, to: &str) {
    match e {
        Expr::VarRef(v)
        | Expr::VarAttr(v, _)
        | Expr::VarPathText(v, _)
        | Expr::VarPathAttr(v, _, _)
        | Expr::VarText(v)
        | Expr::EffectiveTime(v) => {
            if v == from {
                *v = to.to_string();
            }
        }
        Expr::Literal(_) => {}
        Expr::Skolem(_, args) => {
            for a in args {
                substitute_expr(a, from, to);
            }
        }
    }
}

fn substitute_cond(c: &mut Cond, from: &str, to: &str) {
    match c {
        Cond::Cmp(l, _, r) => {
            substitute_expr(l, from, to);
            substitute_expr(r, from, to);
        }
        Cond::ExistsPath(v, _) | Cond::ExistsAttr(v, _) | Cond::LabelEq(v, _, _) => {
            if v == from {
                *v = to.to_string();
            }
        }
        Cond::And(cs) | Cond::Or(cs) => {
            for c in cs {
                substitute_cond(c, from, to);
            }
        }
        Cond::Not(c) => substitute_cond(c, from, to),
    }
}

fn substitute_ctor(c: &mut Constructor, from: &str, to: &str) {
    for (_, e) in &mut c.attrs {
        substitute_expr(e, from, to);
    }
    for item in &mut c.children {
        match item {
            ConstructorItem::Text(_) => {}
            ConstructorItem::Splice(e) => substitute_expr(e, from, to),
            ConstructorItem::Element(el) => substitute_ctor(el, from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use weblab_xml::{CallLabel, Document};

    fn doc() -> Document {
        let mut d = Document::new("R");
        let root = d.root();
        for i in 0..3 {
            let tmu = d.append_element(root, "TextMediaUnit").unwrap();
            d.register_resource(tmu, format!("tmu{i}"), Some(CallLabel::new("N", 1)))
                .unwrap();
            let tc = d.append_element(tmu, "TextContent").unwrap();
            d.register_resource(tc, format!("tc{i}"), None).unwrap();
            let a = d.append_element(tmu, "Annotation").unwrap();
            d.register_resource(a, format!("an{i}"), Some(CallLabel::new("L", 2)))
                .unwrap();
            let l = d.append_element(a, "Language").unwrap();
            d.append_text(l, "en").unwrap();
        }
        d
    }

    const EXAMPLE9: &str = "for $s1 in //TextMediaUnit, $s2 in $s1/TextContent, \
         $t1 in //TextMediaUnit, $t2 in $t1/Annotation \
         let $x1 := $s1/@id, $x2 := $t1/@id \
         where $t2/Language and $x1 = $x2 \
         return <prov from=\"{$t2/@id}\" to=\"{$s2/@id}\"/>";

    #[test]
    fn fusion_removes_the_second_loop() {
        let q = parse_query(EXAMPLE9).unwrap();
        let opt = fuse_id_joins(&q);
        assert_eq!(opt.for_clauses.len(), 3);
        // $t2 now iterates relative to $s1 — the Example 9 optimised form
        let t2 = opt.for_clauses.iter().find(|f| f.var == "t2").unwrap();
        assert_eq!(t2.path.start, PathStart::Var("s1".into()));
        // the join conjunct is gone
        let printed = opt.to_string();
        assert!(!printed.contains("$x1 = $x2"));
    }

    #[test]
    fn fusion_preserves_results() {
        let d = doc();
        let q = parse_query(EXAMPLE9).unwrap();
        let opt = fuse_id_joins(&q);
        let mut base = evaluate(&q, &d.view()).link_pairs();
        let mut fused = evaluate(&opt, &d.view()).link_pairs();
        base.sort();
        fused.sort();
        assert_eq!(base, fused);
        assert_eq!(base.len(), 3); // one per TMU
    }

    #[test]
    fn fusion_cleans_up_dead_lets_and_duplicate_conjuncts() {
        let q = parse_query(EXAMPLE9).unwrap();
        let opt = fuse_id_joins(&q);
        // $x2 := $t1/@id became $x2 := $s1/@id and is unused after the join
        // conjunct disappeared
        assert!(opt.let_clauses.iter().all(|lc| lc.var != "x2"));
        assert!(opt.let_clauses.iter().all(|lc| lc.var != "x1"));
        // no duplicated conjuncts survive
        if let Some(w) = &opt.where_clause {
            let cs = w.clone().conjuncts();
            for (i, a) in cs.iter().enumerate() {
                assert!(!cs[i + 1..].contains(a), "duplicate conjunct {a}");
            }
        }
    }

    #[test]
    fn fusion_skips_different_paths() {
        let q = parse_query(
            "for $a in //X, $b in //Y \
             let $i := $a/@id, $j := $b/@id \
             where $i = $j \
             return <prov from=\"{$i}\" to=\"{$j}\"/>",
        )
        .unwrap();
        let opt = fuse_id_joins(&q);
        assert_eq!(opt.for_clauses.len(), 2); // untouched
    }

    #[test]
    fn fusion_skips_non_id_attributes() {
        let q = parse_query(
            "for $a in //X, $b in //X \
             let $i := $a/@k, $j := $b/@k \
             where $i = $j \
             return <prov from=\"{$i}\" to=\"{$j}\"/>",
        )
        .unwrap();
        assert_eq!(fuse_id_joins(&q).for_clauses.len(), 2);
    }

    #[test]
    fn direct_attr_equality_also_fuses() {
        let q = parse_query(
            "for $a in //X, $b in //X \
             where $a/@id = $b/@id \
             return <prov from=\"{$a/@id}\" to=\"{$b/@id}\"/>",
        )
        .unwrap();
        assert_eq!(fuse_id_joins(&q).for_clauses.len(), 1);
    }
}
