//! Abstract syntax of XPath patterns (Definition 4 of the paper).
//!
//! A pattern is a sequence of steps `step₁/…/step_k`, each step being
//! `axis :: filter [predicate]* [α]?` where the axis is `child` (`/`) or
//! `descendant` (`//`), the filter is a tag name or `*`, predicates are
//! Core-XPath qualifiers, and `α` is an optional sequence of *variable
//! assignments* `$x := @attr` (plus the Section 5 extensions:
//! `$p := position()` and Skolem-term constraints `f($x) := @attr`).
//!
//! Every pattern has an implicit final assignment `$r := @id`: the result
//! node must be an identified resource and `$r` carries its URI
//! (condition (3) of Definition 4).

use std::fmt;

use crate::value::Value;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — children of the context node.
    Child,
    /// `//` — proper descendants of the context node (descendant axis; the
    /// leading `//` of a pattern reaches every node of the document because
    /// evaluation starts above the root).
    Descendant,
    /// `descendant-or-self` — used by the inherited-provenance rewriting of
    /// Section 4 ("adding to all XPath patterns an additional step
    /// `descendant-or-self::*`").
    DescendantOrSelf,
}

/// Node filter of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// Match elements with this tag name.
    Name(String),
    /// `*` — match any element.
    Wildcard,
}

impl NodeTest {
    /// Does `name` satisfy this test?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard => true,
        }
    }
}

/// Source of a variable assignment inside `[… := …]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BindingSource {
    /// `@attr` — the attribute's value on the step's node. Implies the
    /// existence constraint `[@attr]` (condition (2) of Definition 4).
    Attr(String),
    /// `position()` — the node's 1-based position among the siblings matched
    /// by this step's node test (Section 5 extension).
    Position,
}

/// Left-hand side of an assignment item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AssignTarget {
    /// `$x := …` — bind the variable.
    Var(String),
    /// `f($x,…) := …` — Skolem constraint: the source value must equal the
    /// rendered term `f(bindings…)` (Section 5 aggregation mappings).
    Skolem {
        /// Function symbol.
        fun: String,
        /// Variables whose bindings are the term's arguments.
        args: Vec<String>,
    },
}

/// An assignment item `target := source`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// What is being bound or constrained.
    pub target: AssignTarget,
    /// Where the value comes from.
    pub source: BindingSource,
}

/// A value-producing expression inside a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueExpr {
    /// `@attr` of the context node (virtual attributes `@id`, `@s`, `@t`
    /// resolve to resource metadata).
    Attr(String),
    /// A previously bound variable `$x`.
    Var(String),
    /// A literal string or integer.
    Literal(Value),
    /// `position()` of the context node.
    Position,
    /// Text content of the first element reached by a relative path, e.g.
    /// `Annotation/Language` in `[Annotation/Language='fr']`.
    PathText(RelPath),
    /// Attribute at the end of a relative path, e.g. `Annotation/@conf`.
    PathAttr(RelPath, String),
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on an ordering outcome / equality outcome.
    pub fn test(self, eq: bool, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => eq,
            CmpOp::Ne => !eq,
            CmpOp::Lt => ord == Some(Less),
            CmpOp::Le => matches!(ord, Some(Less) | Some(Equal)),
            CmpOp::Gt => ord == Some(Greater),
            CmpOp::Ge => matches!(ord, Some(Greater) | Some(Equal)),
        }
    }
}

/// A relative path used inside predicates: a chain of name tests separated
/// by `/` or `//`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelPath {
    /// Steps of the path: (descendant?, name test).
    pub steps: Vec<(bool, NodeTest)>,
}

/// A Core-XPath qualifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `[RelPath]` — some node is reachable by the path.
    Exists(RelPath),
    /// `[@attr]` — the attribute is present.
    AttrExists(String),
    /// `[expr op expr]`.
    Compare(ValueExpr, CmpOp, ValueExpr),
    /// `[3]` — positional shorthand: the node is the i-th sibling matched by
    /// the step's node test (1-based).
    PositionIs(usize),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// `[created-before(t)]` — the node's effective creation instant is
    /// strictly before `t`. The effective instant of a node is its resource
    /// label's timestamp, or 0 when the node is unlabelled (initial
    /// content). Inserted by the temporal rewriting of Section 4.
    CreatedBefore(u64),
    /// `[produced-by(s, t)]` — the node carries the label `(s, t)`.
    /// Inserted into target patterns by the temporal rewriting.
    ProducedBy(String, u64),
}

/// One step of a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// Axis connecting to the previous step (or to the virtual root for the
    /// first step).
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Qualifiers, all of which must hold.
    pub predicates: Vec<Predicate>,
    /// Variable assignments / Skolem constraints.
    pub assignments: Vec<Assignment>,
}

impl Step {
    /// A bare step with no predicates or assignments.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicates: Vec::new(),
            assignments: Vec::new(),
        }
    }
}

/// An XPath pattern `ϕ(x̄)` (Definition 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// The steps, first to last.
    pub steps: Vec<Step>,
}

impl Pattern {
    /// The set of binding variables `x̄`, in first-occurrence order
    /// (excluding the implicit result variable `$r`).
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        for step in &self.steps {
            for a in &step.assignments {
                if let AssignTarget::Var(v) = &a.target {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
        }
        vars
    }

    /// Variables *referenced* (as `$x` in predicates or Skolem arguments)
    /// but not bound by this pattern — these must be supplied by the
    /// environment (i.e. bound by the source pattern of a mapping rule).
    pub fn free_variables(&self) -> Vec<String> {
        let bound = self.variables();
        let mut free = Vec::new();
        let mut visit_expr = |e: &ValueExpr, free: &mut Vec<String>| {
            if let ValueExpr::Var(v) = e {
                if !bound.contains(v) && !free.contains(v) {
                    free.push(v.clone());
                }
            }
        };
        fn visit_pred(
            p: &Predicate,
            free: &mut Vec<String>,
            visit_expr: &mut impl FnMut(&ValueExpr, &mut Vec<String>),
        ) {
            match p {
                Predicate::Compare(a, _, b) => {
                    visit_expr(a, free);
                    visit_expr(b, free);
                }
                Predicate::And(ps) | Predicate::Or(ps) => {
                    for q in ps {
                        visit_pred(q, free, visit_expr);
                    }
                }
                Predicate::Not(q) => visit_pred(q, free, visit_expr),
                _ => {}
            }
        }
        for step in &self.steps {
            for p in &step.predicates {
                visit_pred(p, &mut free, &mut visit_expr);
            }
            for a in &step.assignments {
                if let AssignTarget::Skolem { args, .. } = &a.target {
                    for v in args {
                        if !bound.contains(v) && !free.contains(v) {
                            free.push(v.clone());
                        }
                    }
                }
            }
        }
        free
    }

    /// The final step (patterns are non-empty by construction of the
    /// parser; an empty pattern has no result).
    pub fn last_step(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// A 64-bit structural fingerprint. Two patterns with equal ASTs hash
    /// identically, so (fingerprint, state mark) keys the inference
    /// engine's shared pattern-evaluation cache. Stable only within a
    /// process — never persist it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------
// Display: concrete syntax round-trip
// ---------------------------------------------------------------------

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
        }
    }
}

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (desc, test)) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "{}", if *desc { "//" } else { "/" })?;
            } else if *desc {
                // leading descendant inside a relative path
                write!(f, ".//")?;
            }
            write!(f, "{test}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ValueExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueExpr::Attr(a) => write!(f, "@{a}"),
            ValueExpr::Var(v) => write!(f, "${v}"),
            ValueExpr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            ValueExpr::Literal(v) => write!(f, "{v}"),
            ValueExpr::Position => write!(f, "position()"),
            ValueExpr::PathText(p) => write!(f, "{p}"),
            ValueExpr::PathAttr(p, a) => write!(f, "{p}/@{a}"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_inner(f)
    }
}

impl Predicate {
    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Exists(p) => write!(f, "{p}"),
            Predicate::AttrExists(a) => write!(f, "@{a}"),
            Predicate::Compare(l, op, r) => write!(f, "{l} {op} {r}"),
            Predicate::PositionIs(i) => write!(f, "{i}"),
            Predicate::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    p.fmt_inner(f)?;
                }
                Ok(())
            }
            Predicate::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    p.fmt_inner(f)?;
                }
                Ok(())
            }
            Predicate::Not(p) => {
                write!(f, "not(")?;
                p.fmt_inner(f)?;
                write!(f, ")")
            }
            Predicate::CreatedBefore(t) => write!(f, "created-before({t})"),
            Predicate::ProducedBy(s, t) => write!(f, "produced-by('{s}', {t})"),
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            AssignTarget::Var(v) => write!(f, "${v} := ")?,
            AssignTarget::Skolem { fun, args } => {
                write!(f, "{fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "${a}")?;
                }
                write!(f, ") := ")?;
            }
        }
        match &self.source {
            BindingSource::Attr(a) => write!(f, "@{a}"),
            BindingSource::Position => write!(f, "position()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        for a in &self.assignments {
            write!(f, "[{a}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            let sep = match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
                Axis::DescendantOrSelf => "/descendant-or-self::",
            };
            write!(f, "{sep}{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_in_first_occurrence_order() {
        let mut s1 = Step::new(Axis::Descendant, NodeTest::Name("T".into()));
        s1.assignments.push(Assignment {
            target: AssignTarget::Var("x".into()),
            source: BindingSource::Attr("id".into()),
        });
        let mut s2 = Step::new(Axis::Child, NodeTest::Name("C".into()));
        s2.assignments.push(Assignment {
            target: AssignTarget::Var("y".into()),
            source: BindingSource::Position,
        });
        let p = Pattern {
            steps: vec![s1, s2],
        };
        assert_eq!(p.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn free_variables_are_unbound_references() {
        let mut s = Step::new(Axis::Descendant, NodeTest::Name("C".into()));
        s.predicates.push(Predicate::Compare(
            ValueExpr::Attr("id".into()),
            CmpOp::Eq,
            ValueExpr::Var("x".into()),
        ));
        let p = Pattern { steps: vec![s] };
        assert_eq!(p.free_variables(), vec!["x".to_string()]);
        assert!(p.variables().is_empty());
    }

    #[test]
    fn skolem_args_are_free_when_unbound() {
        let mut s = Step::new(Axis::Descendant, NodeTest::Name("C".into()));
        s.assignments.push(Assignment {
            target: AssignTarget::Skolem {
                fun: "f".into(),
                args: vec!["x".into()],
            },
            source: BindingSource::Attr("b".into()),
        });
        let p = Pattern { steps: vec![s] };
        assert_eq!(p.free_variables(), vec!["x".to_string()]);
    }
}
