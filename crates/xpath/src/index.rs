//! Element-name indexing for pattern evaluation.
//!
//! The dominant cost of evaluating `//Name…` patterns is the full document
//! scan of the leading descendant step. An [`ElementIndex`] maps element
//! names to their nodes in document order, turning that scan into a lookup
//! — the paper's "existing query optimization techniques … indexing"
//! remark made concrete. The provenance engine builds one index per final
//! document and reuses it across every rule and call of an inference run.

use std::collections::HashMap;

use weblab_obs::Counter;
use weblab_xml::{DocView, NodeId, StateMark};

/// Index constructions (one pre-order document scan each).
static INDEX_BUILDS: Counter = Counter::new("xpath.index.builds");
/// Bucket lookups served (name or wildcard) in place of document scans.
static INDEX_LOOKUPS: Counter = Counter::new("xpath.index.lookups");

/// Name → nodes (document order) index over one document state.
#[derive(Debug, Clone)]
pub struct ElementIndex {
    mark: StateMark,
    by_name: HashMap<String, Vec<NodeId>>,
    all: Vec<NodeId>,
}

impl ElementIndex {
    /// Build the index by one pre-order scan of `view`.
    pub fn build(view: &DocView<'_>) -> Self {
        let mut by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut all = Vec::new();
        for node in view.descendants(view.root()) {
            if let Some(name) = view.name(node) {
                by_name.entry(name.to_string()).or_default().push(node);
                all.push(node);
            }
        }
        INDEX_BUILDS.inc();
        ElementIndex {
            mark: view.mark(),
            by_name,
            all,
        }
    }

    /// The state this index covers.
    pub fn mark(&self) -> StateMark {
        self.mark
    }

    /// All elements named `name`, in document order, restricted to nodes
    /// that exist at `view`'s state (the index may cover a later state of
    /// the same document — ids below the view's mark are still exact).
    pub fn nodes_named(&self, name: &str, view: &DocView<'_>) -> Vec<NodeId> {
        INDEX_LOOKUPS.inc();
        let source = self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
        Self::restrict(source, view)
    }

    /// All elements, in document order, restricted to `view`'s state.
    pub fn all_elements(&self, view: &DocView<'_>) -> Vec<NodeId> {
        INDEX_LOOKUPS.inc();
        Self::restrict(&self.all, view)
    }

    fn restrict(source: &[NodeId], view: &DocView<'_>) -> Vec<NodeId> {
        source
            .iter()
            .copied()
            .filter(|n| view.contains(*n))
            .collect()
    }

    /// Number of distinct element names.
    pub fn name_count(&self) -> usize {
        self.by_name.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::Document;

    #[test]
    fn index_matches_scan() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        let _b = d.append_element(a, "B").unwrap();
        let a2 = d.append_element(root, "A").unwrap();
        let idx = ElementIndex::build(&d.view());
        assert_eq!(idx.nodes_named("A", &d.view()), vec![a, a2]);
        assert_eq!(idx.nodes_named("Z", &d.view()), Vec::<weblab_xml::NodeId>::new());
        assert_eq!(idx.all_elements(&d.view()).len(), 4);
        assert_eq!(idx.name_count(), 3);
    }

    #[test]
    fn index_restricts_to_earlier_states() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        let mark = d.mark();
        let _a2 = d.append_element(root, "A").unwrap();
        let idx = ElementIndex::build(&d.view());
        assert_eq!(idx.nodes_named("A", &d.view()).len(), 2);
        assert_eq!(idx.nodes_named("A", &d.view_at(mark)), vec![a]);
    }
}
