//! Values flowing through pattern variables and binding tables.

use std::fmt;

/// A value bound to a pattern variable or compared in a predicate.
///
/// WebLab attribute values are strings; timestamps are integers; Skolem
/// terms `f(v₁,…,vₙ)` (Section 5 of the paper) are first-class so that
/// aggregation mappings can join on constructed identities.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A string (attribute value, URI, service name).
    Str(String),
    /// An integer (timestamps, positions).
    Int(i64),
    /// An applied Skolem term `f(args…)`.
    Skolem {
        /// Function symbol.
        fun: String,
        /// Argument values.
        args: Vec<Value>,
    },
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Construct a Skolem term.
    pub fn skolem(fun: impl Into<String>, args: Vec<Value>) -> Self {
        Value::Skolem {
            fun: fun.into(),
            args,
        }
    }

    /// Render to the canonical string used for cross-representation joins.
    ///
    /// A Skolem term renders as `f(a,b)`; a raw string renders as itself.
    /// Equality of canonical strings is the join semantics for Skolemised
    /// mappings: a service that materialises `f(a)` as the literal text
    /// `"f(a)"` joins with the constructed term.
    pub fn canonical(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Skolem { .. } => self.to_string(),
        }
    }

    /// Semantic equality used by predicate and join evaluation: values are
    /// compared by canonical form, so `Int(5)` equals `Str("5")` and a
    /// Skolem term equals its rendered text.
    pub fn sem_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            _ => self.canonical() == other.canonical(),
        }
    }

    /// Ordering comparison: numeric when both sides parse as integers,
    /// lexicographic otherwise. Returns `None` for Skolem terms, which are
    /// unordered.
    pub fn sem_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        let as_int = |v: &Value| -> Option<i64> {
            match v {
                Value::Int(i) => Some(*i),
                Value::Str(s) => s.parse().ok(),
                Value::Skolem { .. } => None,
            }
        };
        match (self, other) {
            (Value::Skolem { .. }, _) | (_, Value::Skolem { .. }) => None,
            _ => match (as_int(self), as_int(other)) {
                (Some(a), Some(b)) => Some(a.cmp(&b)),
                _ => Some(self.canonical().cmp(&other.canonical())),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Skolem { fun, args } => {
                write!(f, "{fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn canonical_rendering() {
        assert_eq!(Value::str("x").canonical(), "x");
        assert_eq!(Value::int(7).canonical(), "7");
        assert_eq!(
            Value::skolem("f", vec![Value::str("a"), Value::int(2)]).canonical(),
            "f(a,2)"
        );
    }

    #[test]
    fn semantic_equality_bridges_representations() {
        assert!(Value::int(5).sem_eq(&Value::str("5")));
        assert!(Value::skolem("f", vec![Value::str("a")]).sem_eq(&Value::str("f(a)")));
        assert!(!Value::str("a").sem_eq(&Value::str("b")));
    }

    #[test]
    fn ordering_is_numeric_when_possible() {
        assert_eq!(
            Value::str("9").sem_cmp(&Value::str("10")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sem_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::skolem("f", vec![]).sem_cmp(&Value::int(1)),
            None
        );
    }

    #[test]
    fn nested_skolem_display() {
        let v = Value::skolem("g", vec![Value::skolem("f", vec![Value::str("x")])]);
        assert_eq!(v.to_string(), "g(f(x))");
    }
}
