//! Pattern rewritings of Section 4 of the paper.
//!
//! *Inferring Direct Provenance*: to evaluate a mapping rule for a service
//! call `c = (s, t_i)` directly on the **final** document state `d_n`
//! (instead of reconstructing the intermediate states), the paper rewrites
//! the patterns:
//!
//! * the source pattern `ϕ_S` gets the condition `[@t < t_i]` — only
//!   content that existed *before* the call can have been used by it;
//! * the target pattern `ϕ_T` gets `[@s = s and @t = t_i]` on its final
//!   step — only content *produced by* the call is a target.
//!
//! The paper observes that the temporal tests on intermediate steps are
//! redundant (a node's creation instant is ≥ its ancestors'), so we only
//! constrain the final step. The constraints use the *effective* creation
//! time (own label, else nearest labelled ancestor, else 0 — see
//! [`crate::eval::effective_time`]), which makes the rewriting exact for
//! plain descendants of labelled resources too.
//!
//! *Inferring inherited provenance*: appending a `descendant-or-self::*`
//! step extends a rule's endpoints to the resources nested inside the
//! matched ones (link `8 → 6` of the paper's running example).

use crate::ast::{Axis, NodeTest, Pattern, Predicate, Step};
use weblab_xml::Timestamp;

/// Rewrite a source pattern for posthoc evaluation at call instant `t`:
/// the result node must have been created strictly before `t`.
pub fn add_source_constraints(pattern: &Pattern, t: Timestamp) -> Pattern {
    let mut p = pattern.clone();
    if let Some(last) = p.steps.last_mut() {
        last.predicates.push(Predicate::CreatedBefore(t));
    }
    p
}

/// Rewrite a target pattern for posthoc evaluation of call `(service, t)`:
/// the result node must carry (or inherit) exactly that label.
pub fn add_target_constraints(pattern: &Pattern, service: &str, t: Timestamp) -> Pattern {
    let mut p = pattern.clone();
    if let Some(last) = p.steps.last_mut() {
        last.predicates
            .push(Predicate::ProducedBy(service.to_string(), t));
    }
    p
}

/// Extend a pattern with a trailing `descendant-or-self::*` step so that
/// embeddings also reach the resources nested inside the matched ones
/// (Section 4, "Inferring inherited provenance").
///
/// The new final step carries the implicit `$r := @id`, so only identified
/// descendants contribute result tuples.
pub fn extend_descendant_or_self(pattern: &Pattern) -> Pattern {
    let mut p = pattern.clone();
    p.steps
        .push(Step::new(Axis::DescendantOrSelf, NodeTest::Wildcard));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_pattern;
    use crate::parser::parse_pattern;
    use weblab_xml::{CallLabel, Document};

    fn doc() -> Document {
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        let a = d.append_element(root, "T").unwrap();
        d.register_resource(a, "r2", Some(CallLabel::new("S1", 1)))
            .unwrap();
        let b = d.append_element(root, "T").unwrap();
        d.register_resource(b, "r3", Some(CallLabel::new("S2", 2)))
            .unwrap();
        let inner = d.append_element(b, "U").unwrap();
        d.register_resource(inner, "r4", Some(CallLabel::new("S2", 2)))
            .unwrap();
        d
    }

    #[test]
    fn source_constraint_filters_by_time() {
        let d = doc();
        let p = parse_pattern("//T").unwrap();
        let before2 = add_source_constraints(&p, 2);
        let t = eval_pattern(&before2, &d.view());
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].uri, "r2");
    }

    #[test]
    fn target_constraint_selects_one_call() {
        let d = doc();
        let p = parse_pattern("//T").unwrap();
        let target = add_target_constraints(&p, "S2", 2);
        let t = eval_pattern(&target, &d.view());
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].uri, "r3");
    }

    #[test]
    fn rewriting_round_trips_through_syntax() {
        let p = parse_pattern("//T[$x := @id]/C").unwrap();
        let s = add_source_constraints(&p, 3);
        let printed = s.to_string();
        assert!(printed.contains("created-before(3)"));
        assert_eq!(
            crate::parser::parse_pattern(&printed).unwrap().to_string(),
            printed
        );
    }

    #[test]
    fn descendant_or_self_extension_reaches_nested_resources() {
        let d = doc();
        let p = parse_pattern("//T[2]").unwrap();
        let base = eval_pattern(&p, &d.view());
        assert_eq!(base.rows.len(), 1);
        assert_eq!(base.rows[0].uri, "r3");
        let ext = extend_descendant_or_self(&p);
        let t = eval_pattern(&ext, &d.view());
        let mut got: Vec<_> = t.rows.iter().map(|r| r.uri.clone()).collect();
        got.sort();
        assert_eq!(got, vec!["r3", "r4"]);
    }
}
