//! Embedding evaluation — Definition 6 of the paper.
//!
//! An embedding of a pattern `ϕ(x̄)` into a document state `d` is a tree
//! homomorphism mapping pattern steps to nodes of `d`, preserving the
//! structural axes and predicates and binding every variable to the
//! corresponding attribute value. The evaluator enumerates embeddings step
//! by step, threading a binding environment, and collects the result as a
//! [`BindingTable`].
//!
//! ## Virtual attributes
//!
//! Resource metadata surfaces as the paper's virtual attributes:
//! `@id` → the node's URI, `@s` / `@t` → the producing service call's name
//! and timestamp. Explicit attributes of the same name shadow the virtual
//! ones. The *effective* creation instant used by the temporal predicates
//! (`created-before`, `produced-by`) is the node's own label or, failing
//! that, the label of its nearest labelled ancestor (new fragments inherit
//! the instant of the call that appended them); unlabelled initial content
//! has effective instant 0.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use weblab_obs::Counter;
use weblab_xml::{DocView, NodeId};

use crate::ast::{
    AssignTarget, Axis, BindingSource, NodeTest, Pattern, Predicate, RelPath, ValueExpr,
};
use crate::binding::{BindingRow, BindingTable, SkolemColumn};
use crate::index::ElementIndex;
use crate::value::Value;

/// Full pattern evaluations (one per `eval_pattern_indexed` call).
static PATTERN_EVALS: Counter = Counter::new("xpath.pattern.evals");
/// Candidate nodes visited across all steps of all evaluations.
static NODES_VISITED: Counter = Counter::new("xpath.eval.nodes_visited");
/// Step-predicate evaluations (top-level conjuncts on candidates).
static PREDICATE_EVALS: Counter = Counter::new("xpath.eval.predicate_evals");

/// Options controlling pattern evaluation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Require the result node to carry a URI (the implicit `$r := @id` of
    /// Definition 4). Disable for generic XPath evaluation inside the
    /// XQuery engine.
    pub require_uri: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { require_uri: true }
    }
}

/// A binding environment: variable name → value. Small; patterns bind a
/// handful of variables at most.
pub type Env = Vec<(String, Value)>;

/// Internal persistent environment: a parent-linked chain of binding
/// frames. A step that binds nothing extends a context by cloning an `Rc`
/// instead of the whole environment, and sibling embeddings share their
/// common prefix.
struct Frame {
    parent: Option<Rc<Frame>>,
    slots: Vec<(String, Value)>,
}

impl Frame {
    fn from_env(env: &Env) -> Rc<Frame> {
        Rc::new(Frame {
            parent: None,
            slots: env.clone(),
        })
    }

    /// Innermost binding of `name` (later frames and later slots shadow
    /// earlier ones, matching push-order lookup on a flat `Env`).
    fn get(&self, name: &str) -> Option<&Value> {
        let mut frame = self;
        loop {
            if let Some(v) = frame
                .slots
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
            {
                return Some(v);
            }
            match &frame.parent {
                Some(p) => frame = p,
                None => return None,
            }
        }
    }
}

/// Lookup across the bindings a candidate is accumulating this step plus
/// the inherited frame chain.
fn lookup<'a>(slots: &'a [(String, Value)], frame: &'a Frame, name: &str) -> Option<&'a Value> {
    slots
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .or_else(|| frame.get(name))
}

/// Evaluate `pattern` over `view` with default options and empty
/// environment — the pattern result `R_ϕ(d)` of Definition 7.
pub fn eval_pattern(pattern: &Pattern, view: &DocView<'_>) -> BindingTable {
    eval_pattern_with(pattern, view, &Env::new(), &EvalOptions::default())
}

/// Evaluate with an initial environment (free variables supplied by a
/// mapping-rule join or by the XQuery engine) and explicit options.
pub fn eval_pattern_with(
    pattern: &Pattern,
    view: &DocView<'_>,
    env: &Env,
    opts: &EvalOptions,
) -> BindingTable {
    eval_pattern_indexed(pattern, view, env, opts, None)
}

/// Evaluate with an optional [`ElementIndex`] accelerating the leading
/// descendant step (build the index once per document, reuse across many
/// pattern evaluations).
pub fn eval_pattern_indexed(
    pattern: &Pattern,
    view: &DocView<'_>,
    env: &Env,
    opts: &EvalOptions,
    index: Option<&ElementIndex>,
) -> BindingTable {
    let mut columns = pattern.variables();
    // Synthetic columns for skolem-constrained assignments, named by their
    // display form, in pattern order.
    let mut skolem_columns = Vec::new();
    for step in &pattern.steps {
        for a in &step.assignments {
            if let AssignTarget::Skolem { fun, args } = &a.target {
                let name = format!(
                    "{fun}({})",
                    args.iter()
                        .map(|a| format!("${a}"))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                skolem_columns.push(SkolemColumn {
                    column: columns.len(),
                    fun: fun.clone(),
                    args: args.clone(),
                });
                columns.push(name);
            }
        }
    }

    let mut table = BindingTable::with_columns(columns);
    table.skolem_columns = skolem_columns;

    // Metrics are accumulated locally (plain integers on the stack) and
    // flushed to the global counters once per evaluation, so the enabled
    // path costs two atomic adds per eval rather than one per node.
    let mut nodes_visited: u64 = 0;
    let mut predicate_evals: u64 = 0;

    // contexts: None = virtual node above the root.
    let mut contexts: Vec<(Option<NodeId>, Rc<Frame>)> = vec![(None, Frame::from_env(env))];
    for step in &pattern.steps {
        let mut next: Vec<(Option<NodeId>, Rc<Frame>)> = Vec::new();
        let step_ctx = StepCtx::new(step);
        for (ctx, frame) in &contexts {
            for_each_candidate(view, *ctx, step.axis, &step.test, index, |cand| {
                nodes_visited += 1;
                let Some(name) = view.name(cand) else {
                    return; // text nodes never match name tests
                };
                if !step.test.matches(name) {
                    return;
                }
                if !step.predicates.iter().all(|p| {
                    predicate_evals += 1;
                    eval_predicate(p, view, cand, &step_ctx, frame)
                }) {
                    return;
                }
                // Bindings this candidate adds; empty for most steps, in
                // which case the context is extended by an `Rc` clone.
                let mut slots: Vec<(String, Value)> = Vec::new();
                for a in &step.assignments {
                    let Some(v) = binding_value(view, cand, &step_ctx, frame, &a.source)
                    else {
                        return; // condition (2): attribute must exist
                    };
                    match &a.target {
                        AssignTarget::Var(var) => {
                            if let Some(existing) = lookup(&slots, frame, var) {
                                if !existing.sem_eq(&v) {
                                    return;
                                }
                            } else {
                                slots.push((var.clone(), v));
                            }
                        }
                        AssignTarget::Skolem { fun, args } => {
                            // If every argument is already bound, check the
                            // constraint right away; otherwise defer to the
                            // join by recording the raw value.
                            let bound: Vec<_> = args
                                .iter()
                                .filter_map(|x| lookup(&slots, frame, x))
                                .collect();
                            if bound.len() == args.len() {
                                let term = Value::skolem(
                                    fun.clone(),
                                    bound.into_iter().cloned().collect(),
                                );
                                if !term.sem_eq(&v) {
                                    return;
                                }
                            }
                            let col = format!(
                                "{fun}({})",
                                args.iter()
                                    .map(|a| format!("${a}"))
                                    .collect::<Vec<_>>()
                                    .join(",")
                            );
                            slots.push((col, v));
                        }
                    }
                }
                let new_frame = if slots.is_empty() {
                    Rc::clone(frame)
                } else {
                    Rc::new(Frame {
                        parent: Some(Rc::clone(frame)),
                        slots,
                    })
                };
                next.push((Some(cand), new_frame));
            });
        }
        contexts = next;
        if contexts.is_empty() {
            break;
        }
    }

    // Dedup without cloning rows: bucket row indices by hash, compare
    // against the rows already in the table.
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
    for (node, frame) in contexts {
        let Some(node) = node else { continue };
        let uri = match view.uri(node) {
            Some(u) => u.to_string(),
            None if opts.require_uri => continue, // implicit $r := @id
            None => String::new(),
        };
        let values: Vec<Value> = table
            .columns
            .iter()
            .map(|c| frame.get(c).cloned().unwrap_or(Value::Str(String::new())))
            .collect();
        let row = BindingRow { node, uri, values };
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        row.hash(&mut hasher);
        let bucket = seen.entry(hasher.finish()).or_default();
        if bucket.iter().any(|&i| table.rows[i] == row) {
            continue;
        }
        bucket.push(table.rows.len());
        table.rows.push(row);
    }

    PATTERN_EVALS.inc();
    NODES_VISITED.add(nodes_visited);
    PREDICATE_EVALS.add(predicate_evals);
    table
}

/// Visit the candidate nodes reached from `ctx` along `axis` at state
/// `view`, without materialising the node set. Root-anchored descendant
/// steps consult the element index when one is supplied, replacing the
/// whole-document scan with a name lookup.
fn for_each_candidate(
    view: &DocView<'_>,
    ctx: Option<NodeId>,
    axis: Axis,
    test: &NodeTest,
    index: Option<&ElementIndex>,
    mut f: impl FnMut(NodeId),
) {
    match (ctx, axis) {
        (None, Axis::Child) => f(view.root()),
        (None, Axis::Descendant) | (None, Axis::DescendantOrSelf) => match (index, test) {
            (Some(idx), NodeTest::Name(name)) => idx.nodes_named(name, view).into_iter().for_each(f),
            (Some(idx), NodeTest::Wildcard) => idx.all_elements(view).into_iter().for_each(f),
            // every node of the state, in document order
            (None, _) => view.descendants(view.root()).for_each(f),
        },
        (Some(n), Axis::Child) => view.children(n).iter().copied().for_each(f),
        (Some(n), Axis::Descendant) => view.descendants(n).skip(1).for_each(f),
        (Some(n), Axis::DescendantOrSelf) => view.descendants(n).for_each(f),
    }
}

/// Step context for position computation: the node test plus the step's
/// *position-free* predicates.
///
/// XPath applies a step's predicates sequentially, and `position()` inside
/// a later predicate counts within the node-set filtered by the earlier
/// ones. The paper's Section 5 relies on this: `//A[B][$p := position()]`
/// numbers the `A` siblings *that have a `B` child*, while
/// `//A[$p := position()]` numbers all `A` siblings. Since the pattern AST
/// keeps predicates as an unordered conjunction, we approximate the
/// sequential rule by counting among siblings that satisfy every
/// position-free predicate of the step — which coincides with XPath
/// whenever position() appears after the structural filters, the only
/// shape the paper's mapping language produces.
struct StepCtx<'s> {
    test: &'s NodeTest,
    filter: Vec<&'s Predicate>,
}

impl<'s> StepCtx<'s> {
    fn new(step: &'s crate::ast::Step) -> Self {
        StepCtx {
            test: &step.test,
            filter: step
                .predicates
                .iter()
                .filter(|p| !mentions_position(p))
                .collect(),
        }
    }
}

/// Does a predicate reference position()?
fn mentions_position(p: &Predicate) -> bool {
    match p {
        Predicate::PositionIs(_) => true,
        Predicate::Compare(l, _, r) => {
            matches!(l, ValueExpr::Position) || matches!(r, ValueExpr::Position)
        }
        Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(mentions_position),
        Predicate::Not(q) => mentions_position(q),
        _ => false,
    }
}

/// 1-based position of `node` among the siblings that satisfy the step
/// context (node test + position-free predicates), relative to the
/// evaluated state.
fn position_of(view: &DocView<'_>, node: NodeId, ctx: &StepCtx<'_>, env: &Frame) -> i64 {
    let Some(parent) = view.parent(node) else {
        return 1;
    };
    let mut pos = 0;
    for &sib in view.children(parent) {
        let name_ok = view
            .name(sib)
            .map(|n| ctx.test.matches(n))
            .unwrap_or(false);
        if name_ok
            && ctx
                .filter
                .iter()
                .all(|p| eval_predicate(p, view, sib, ctx, env))
        {
            pos += 1;
            if sib == node {
                return pos;
            }
        }
    }
    1
}

/// Resolve `@attr` on a node, explicit attributes shadowing the virtual
/// `@id` / `@s` / `@t`.
fn attr_value(view: &DocView<'_>, node: NodeId, attr: &str) -> Option<Value> {
    if let Some(v) = view.attr(node, attr) {
        return Some(Value::Str(v.to_string()));
    }
    match attr {
        "id" => view.uri(node).map(|u| Value::Str(u.to_string())),
        "s" => view.label(node).map(|l| Value::Str(l.service.clone())),
        "t" => view.label(node).map(|l| Value::Int(l.time as i64)),
        _ => None,
    }
}

/// Effective creation instant: own label, else nearest labelled ancestor,
/// else 0 (initial content).
pub fn effective_time(view: &DocView<'_>, node: NodeId) -> u64 {
    if let Some(l) = view.label(node) {
        return l.time;
    }
    for anc in view.ancestors(node) {
        if let Some(l) = view.label(anc) {
            return l.time;
        }
    }
    0
}

/// Effective producing label: own, else nearest labelled ancestor.
pub fn effective_label<'d>(
    view: &DocView<'d>,
    node: NodeId,
) -> Option<&'d weblab_xml::CallLabel> {
    if let Some(l) = view.label(node) {
        return Some(l);
    }
    view.ancestors(node).find_map(|a| view.label(a))
}

fn binding_value(
    view: &DocView<'_>,
    node: NodeId,
    ctx: &StepCtx<'_>,
    env: &Frame,
    source: &BindingSource,
) -> Option<Value> {
    match source {
        BindingSource::Attr(a) => attr_value(view, node, a),
        BindingSource::Position => Some(Value::Int(position_of(view, node, ctx, env))),
    }
}

/// All values an expression can take at `node` (existential semantics for
/// path expressions, single value otherwise).
fn expr_values(
    expr: &ValueExpr,
    view: &DocView<'_>,
    node: NodeId,
    ctx: &StepCtx<'_>,
    env: &Frame,
) -> Vec<Value> {
    match expr {
        ValueExpr::Attr(a) => attr_value(view, node, a).into_iter().collect(),
        ValueExpr::Var(v) => env.get(v).cloned().into_iter().collect(),
        ValueExpr::Literal(v) => vec![v.clone()],
        ValueExpr::Position => vec![Value::Int(position_of(view, node, ctx, env))],
        ValueExpr::PathText(p) => rel_path_nodes(p, view, node)
            .into_iter()
            .map(|n| Value::Str(view.text_content(n)))
            .collect(),
        ValueExpr::PathAttr(p, a) => rel_path_nodes(p, view, node)
            .into_iter()
            .filter_map(|n| attr_value(view, n, a))
            .collect(),
    }
}

/// Nodes reached by a relative path from `node`.
fn rel_path_nodes(path: &RelPath, view: &DocView<'_>, node: NodeId) -> Vec<NodeId> {
    let mut frontier = vec![node];
    for (desc, test) in &path.steps {
        let mut next = Vec::new();
        for ctx in frontier {
            if *desc {
                for d in view.descendants(ctx).skip(1) {
                    if view.name(d).map(|n| test.matches(n)).unwrap_or(false) {
                        next.push(d);
                    }
                }
            } else {
                for &c in view.children(ctx) {
                    if view.name(c).map(|n| test.matches(n)).unwrap_or(false) {
                        next.push(c);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn eval_predicate(
    pred: &Predicate,
    view: &DocView<'_>,
    node: NodeId,
    ctx: &StepCtx<'_>,
    env: &Frame,
) -> bool {
    match pred {
        Predicate::Exists(p) => !rel_path_nodes(p, view, node).is_empty(),
        Predicate::AttrExists(a) => attr_value(view, node, a).is_some(),
        Predicate::Compare(l, op, r) => {
            let lv = expr_values(l, view, node, ctx, env);
            let rv = expr_values(r, view, node, ctx, env);
            // existential semantics over node-set operands (XPath general
            // comparison)
            lv.iter().any(|a| {
                rv.iter()
                    .any(|b| op.test(a.sem_eq(b), a.sem_cmp(b)))
            })
        }
        Predicate::PositionIs(i) => position_of(view, node, ctx, env) == *i as i64,
        Predicate::And(ps) => ps.iter().all(|p| eval_predicate(p, view, node, ctx, env)),
        Predicate::Or(ps) => ps.iter().any(|p| eval_predicate(p, view, node, ctx, env)),
        Predicate::Not(p) => !eval_predicate(p, view, node, ctx, env),
        Predicate::CreatedBefore(t) => effective_time(view, node) < *t,
        Predicate::ProducedBy(s, t) => effective_label(view, node)
            .map(|l| l.service == *s && l.time == *t)
            .unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use weblab_xml::{CallLabel, Document};

    /// Build the paper's document d₃ (Figure 4) with the node numbering of
    /// Figure 1(b):
    /// R(r1) → M(2), N(r3), T(r4){ C(r5), A(r6){L(7)} }, T(r8){ C(r9), A(r10){L(11)} }
    pub(crate) fn paper_document() -> (Document, Vec<weblab_xml::StateMark>) {
        let mut d = Document::new("R");
        let r1 = d.root();
        d.register_resource(r1, "r1", None).unwrap();
        let _m2 = d.append_element(r1, "M").unwrap();
        let n3 = d.append_element(r1, "N").unwrap();
        let d0 = d.mark();

        // c1 = (Normaliser, 1): promote 3 → r3, add T r4 with C r5
        d.register_resource(n3, "r3", Some(CallLabel::new("Source", 0)))
            .unwrap();
        let t4 = d.append_element(r1, "T").unwrap();
        d.register_resource(t4, "r4", Some(CallLabel::new("Normaliser", 1)))
            .unwrap();
        let c5 = d.append_element(t4, "C").unwrap();
        d.register_resource(c5, "r5", Some(CallLabel::new("Normaliser", 1)))
            .unwrap();
        let d1 = d.mark();

        // c2 = (LanguageExtractor, 2): add A r6 with L 7 under r4
        let a6 = d.append_element(t4, "A").unwrap();
        d.register_resource(a6, "r6", Some(CallLabel::new("LanguageExtractor", 2)))
            .unwrap();
        let l7 = d.append_element(a6, "L").unwrap();
        d.append_text(l7, "en").unwrap();
        let d2 = d.mark();

        // c3 = (Translator, 3): add T r8 { C r9, A r10 { L 11 } }
        let t8 = d.append_element(r1, "T").unwrap();
        d.register_resource(t8, "r8", Some(CallLabel::new("Translator", 3)))
            .unwrap();
        let c9 = d.append_element(t8, "C").unwrap();
        d.register_resource(c9, "r9", Some(CallLabel::new("Translator", 3)))
            .unwrap();
        let a10 = d.append_element(t8, "A").unwrap();
        d.register_resource(a10, "r10", Some(CallLabel::new("Translator", 3)))
            .unwrap();
        let l11 = d.append_element(a10, "L").unwrap();
        d.append_text(l11, "fr").unwrap();
        let d3 = d.mark();

        (d, vec![d0, d1, d2, d3])
    }

    fn uris(t: &BindingTable) -> Vec<(String, String)> {
        t.rows
            .iter()
            .map(|r| (r.uri.clone(), r.values.first().map(|v| v.to_string()).unwrap_or_default()))
            .collect()
    }

    #[test]
    fn example5_r_phi1_d1() {
        // ϕ1($x) = //T[$x:=@id]/C over d1 → {(r5, r4)}
        let (d, marks) = paper_document();
        let p = parse_pattern("//T[$x := @id]/C").unwrap();
        let t = eval_pattern(&p, &d.view_at(marks[1]));
        assert_eq!(uris(&t), vec![("r5".into(), "r4".into())]);
    }

    #[test]
    fn example5_r_phi3_d2() {
        // ϕ3($x) = //T[$x:=@id]/A[L] over d2 → {(r6, r4)}
        let (d, marks) = paper_document();
        let p = parse_pattern("//T[$x := @id]/A[L]").unwrap();
        let t = eval_pattern(&p, &d.view_at(marks[2]));
        assert_eq!(uris(&t), vec![("r6".into(), "r4".into())]);
    }

    #[test]
    fn example5_r_phi4_d2_and_d3() {
        // ϕ4($x) = /R[$x:=@id]//T[A/L] over d2 → {(r4, r1)};
        // over d3 → {(r4, r1), (r8, r1)}
        let (d, marks) = paper_document();
        let p = parse_pattern("/R[$x := @id]//T[A/L]").unwrap();
        let t2 = eval_pattern(&p, &d.view_at(marks[2]));
        assert_eq!(uris(&t2), vec![("r4".into(), "r1".into())]);
        let t3 = eval_pattern(&p, &d.view_at(marks[3]));
        assert_eq!(
            uris(&t3),
            vec![("r4".into(), "r1".into()), ("r8".into(), "r1".into())]
        );
    }

    #[test]
    fn phi2_is_equivalent_rewriting_of_phi1() {
        // Definition 4 condition (3): ϕ2 = //T[@id][$x:=@id]/C[$r:=@id]
        // is an equivalent rewriting of ϕ1. Our $r is implicit; binding a
        // variable named r exercises the explicit form.
        let (d, marks) = paper_document();
        let p1 = parse_pattern("//T[$x := @id]/C").unwrap();
        let p2 = parse_pattern("//T[@id][$x := @id]/C[$r := @id]").unwrap();
        let t1 = eval_pattern(&p1, &d.view_at(marks[1]));
        let t2 = eval_pattern(&p2, &d.view_at(marks[1]));
        assert_eq!(t1.rows.len(), t2.rows.len());
        for (a, b) in t1.rows.iter().zip(&t2.rows) {
            assert_eq!(a.uri, b.uri);
            assert_eq!(a.values[0], b.values[0]);
            // explicit $r equals the implicit result binding
            assert_eq!(b.values[t2.column_index("r").unwrap()], Value::str(b.uri.clone()));
        }
    }

    #[test]
    fn unidentified_result_nodes_are_dropped() {
        // //M has no uri in any state → empty result under require_uri
        let (d, marks) = paper_document();
        let p = parse_pattern("//M").unwrap();
        assert!(eval_pattern(&p, &d.view_at(marks[3])).is_empty());
        let opts = EvalOptions { require_uri: false };
        let t = eval_pattern_with(&p, &d.view_at(marks[3]), &Env::new(), &opts);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn positional_predicate_selects_first_tmu() {
        // Figure 3 M1 target: //T[1] — the first TextMediaUnit (= r4)
        let (d, marks) = paper_document();
        let p = parse_pattern("//T[1]").unwrap();
        let t = eval_pattern(&p, &d.view_at(marks[3]));
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].uri, "r4");
        // and //T[2] selects r8
        let p2 = parse_pattern("//T[2]").unwrap();
        let t2 = eval_pattern(&p2, &d.view_at(marks[3]));
        assert_eq!(t2.rows[0].uri, "r8");
    }

    #[test]
    fn text_comparison_predicates() {
        // language selection as in Figure 3 M3
        let (d, marks) = paper_document();
        let fr = parse_pattern("//T[A/L = 'fr']").unwrap();
        let en = parse_pattern("//T[A/L = 'en']").unwrap();
        let v3 = d.view_at(marks[3]);
        assert_eq!(eval_pattern(&fr, &v3).rows[0].uri, "r8");
        assert_eq!(eval_pattern(&en, &v3).rows[0].uri, "r4");
    }

    #[test]
    fn temporal_predicates_use_effective_time() {
        let (d, marks) = paper_document();
        let v3 = d.view_at(marks[3]);
        // resources created before t=2: r3 (t0), r4, r5 (t1); r1 has no
        // label → effective 0
        let p = parse_pattern("//*[created-before(2)]").unwrap();
        let t = eval_pattern(&p, &v3);
        let mut got: Vec<_> = t.rows.iter().map(|r| r.uri.clone()).collect();
        got.sort();
        assert_eq!(got, vec!["r1", "r3", "r4", "r5"]);
        // produced-by is inherited by plain descendants: L(11) inherits the
        // label of r10 = (Translator, 3); L(7) inherits (LanguageExtractor, 2)
        // from r6 and is excluded.
        let p2 = parse_pattern("//L[produced-by('Translator', 3)]").unwrap();
        let opts = EvalOptions { require_uri: false };
        let t2 = eval_pattern_with(&p2, &v3, &Env::new(), &opts);
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn virtual_attributes_resolve() {
        let (d, marks) = paper_document();
        let v = d.view_at(marks[3]);
        let p = parse_pattern("//T[@s = 'Normaliser']").unwrap();
        let t = eval_pattern(&p, &v);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].uri, "r4");
        let p2 = parse_pattern("//T[@t >= 2]").unwrap();
        let t2 = eval_pattern(&p2, &v);
        assert_eq!(t2.rows[0].uri, "r8");
    }

    #[test]
    fn env_supplies_free_variables() {
        let (d, marks) = paper_document();
        let v = d.view_at(marks[3]);
        let p = parse_pattern("//T[@id = $x]").unwrap();
        let env: Env = vec![("x".into(), Value::str("r8"))];
        let t = eval_pattern_with(&p, &v, &env, &EvalOptions::default());
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].uri, "r8");
    }

    #[test]
    fn shared_variable_must_agree_within_pattern() {
        // bind $x twice on a path where values differ → no embedding
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        d.set_attr(a, "k", "1").unwrap();
        let b = d.append_element(a, "B").unwrap();
        d.set_attr(b, "k", "2").unwrap();
        d.register_resource(b, "rb", None).unwrap();
        let p = parse_pattern("//A[$x := @k]/B[$x := @k]").unwrap();
        assert!(eval_pattern(&p, &d.view()).is_empty());
        // and when they agree, the embedding exists
        d.set_attr(b, "k", "1").unwrap();
        assert_eq!(eval_pattern(&p, &d.view()).len(), 1);
    }

    #[test]
    fn skolem_assignment_binds_raw_value() {
        let mut d = Document::new("R");
        let root = d.root();
        let c = d.append_element(root, "C").unwrap();
        d.set_attr(c, "b", "f(a1)").unwrap();
        d.register_resource(c, "rc", None).unwrap();
        let p = parse_pattern("//C[f($x) := @b]").unwrap();
        let t = eval_pattern(&p, &d.view());
        assert_eq!(t.len(), 1);
        assert_eq!(t.columns, vec!["f($x)".to_string()]);
        assert_eq!(t.skolem_columns.len(), 1);
        assert_eq!(t.rows[0].values[0], Value::str("f(a1)"));
    }

    #[test]
    fn skolem_checked_eagerly_when_args_bound() {
        let mut d = Document::new("R");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        d.set_attr(a, "a", "a1").unwrap();
        let c = d.append_element(a, "C").unwrap();
        d.set_attr(c, "b", "f(a1)").unwrap();
        d.register_resource(c, "rc", None).unwrap();
        let p = parse_pattern("//A[$x := @a]/C[f($x) := @b]").unwrap();
        assert_eq!(eval_pattern(&p, &d.view()).len(), 1);
        // wrong skolem value → no embedding
        d.set_attr(c, "b", "f(zz)").unwrap();
        assert!(eval_pattern(&p, &d.view()).is_empty());
    }

    #[test]
    fn position_binding_is_state_relative() {
        let mut d = Document::new("R");
        let root = d.root();
        let a1 = d.append_element(root, "A").unwrap();
        d.register_resource(a1, "ra1", None).unwrap();
        let m0 = d.mark();
        let a2 = d.append_element(root, "A").unwrap();
        d.register_resource(a2, "ra2", None).unwrap();
        let p = parse_pattern("//A[$p := position()]").unwrap();
        let t_final = eval_pattern(&p, &d.view());
        assert_eq!(t_final.rows.len(), 2);
        assert_eq!(t_final.rows[1].values[0], Value::int(2));
        let t0 = eval_pattern(&p, &d.view_at(m0));
        assert_eq!(t0.rows.len(), 1);
        assert_eq!(t0.rows[0].values[0], Value::int(1));
    }

    #[test]
    fn position_counts_within_filtered_siblings() {
        // Section 5: //A[B][$p := position()] numbers the A siblings that
        // have a B child; //A[$p := position()] numbers all A siblings.
        let mut d = Document::new("Root");
        let root = d.root();
        for (i, with_b) in [(0, true), (1, false), (2, true)] {
            let a = d.append_element(root, "A").unwrap();
            d.register_resource(a, format!("a{i}"), None).unwrap();
            if with_b {
                let b = d.append_element(a, "B").unwrap();
                d.register_resource(b, format!("b{i}"), None).unwrap();
            }
        }
        let filtered = parse_pattern("//A[B][$p := position()]/B").unwrap();
        let t = eval_pattern(&filtered, &d.view());
        let got: Vec<(String, String)> = t
            .rows
            .iter()
            .map(|r| (r.uri.clone(), r.values[0].to_string()))
            .collect();
        // a2 is the SECOND A-with-B even though it is the third A
        assert_eq!(
            got,
            vec![("b0".into(), "1".into()), ("b2".into(), "2".into())]
        );
        let unfiltered = parse_pattern("//A[$p := position()]/B").unwrap();
        let t2 = eval_pattern(&unfiltered, &d.view());
        let got2: Vec<(String, String)> = t2
            .rows
            .iter()
            .map(|r| (r.uri.clone(), r.values[0].to_string()))
            .collect();
        assert_eq!(
            got2,
            vec![("b0".into(), "1".into()), ("b2".into(), "3".into())]
        );
    }

    #[test]
    fn descendant_or_self_step() {
        let (d, marks) = paper_document();
        let v = d.view_at(marks[3]);
        // all identified descendants-or-self of T nodes
        let p = parse_pattern("//T/descendant-or-self::*").unwrap();
        let t = eval_pattern(&p, &v);
        let mut got: Vec<_> = t.rows.iter().map(|r| r.uri.clone()).collect();
        got.sort();
        assert_eq!(got, vec!["r10", "r4", "r5", "r6", "r8", "r9"]);
    }

    #[test]
    fn wildcard_descendant_counts_all_resources() {
        let (d, marks) = paper_document();
        let p = parse_pattern("//*").unwrap();
        assert_eq!(eval_pattern(&p, &d.view_at(marks[0])).len(), 1); // r1
        assert_eq!(eval_pattern(&p, &d.view_at(marks[3])).len(), 8);
    }

    #[test]
    fn not_and_or_predicates() {
        let (d, marks) = paper_document();
        let v = d.view_at(marks[3]);
        let p = parse_pattern("//T[not(A/L = 'fr')]").unwrap();
        assert_eq!(eval_pattern(&p, &v).rows[0].uri, "r4");
        let q = parse_pattern("//T[A/L = 'fr' or A/L = 'en']").unwrap();
        assert_eq!(eval_pattern(&q, &v).len(), 2);
    }
}
