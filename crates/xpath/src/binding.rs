//! Binding tables — pattern results `R_ϕ(d)` (Definition 7 of the paper).
//!
//! Evaluating a pattern `ϕ(x̄)` over a document state yields the *set* of
//! binding tuples `x̄/ε = (id, v₁, …, vₙ)`, one per embedding `ε`. The
//! table keeps, per row, the matched result node (needed to intersect with
//! `out(c_i)` and to build graph edges), the implicit `$r` binding (the
//! node's URI) and the values of the explicit variables.

use std::collections::HashSet;
use std::fmt;

use weblab_xml::NodeId;

use crate::value::Value;

/// Declaration of a Skolem-constrained column produced by a target pattern
/// assignment `f($x,…) := @attr` (Section 5).
///
/// The evaluator binds the raw attribute value into a synthetic column; the
/// mapping-rule join later equates it with the rendered term
/// `f(source bindings…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkolemColumn {
    /// Index of the synthetic column in [`BindingTable::columns`].
    pub column: usize,
    /// Function symbol of the term.
    pub fun: String,
    /// Variables whose (source-side) bindings are the term's arguments.
    pub args: Vec<String>,
}

/// A single binding tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BindingRow {
    /// The node matched by the last step of the pattern.
    pub node: NodeId,
    /// The implicit result binding `$r` — the node's URI.
    pub uri: String,
    /// Values of the explicit columns, aligned with
    /// [`BindingTable::columns`].
    pub values: Vec<Value>,
}

/// The result table of a pattern evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingTable {
    /// Explicit column names (binding variables, in pattern order, followed
    /// by any synthetic Skolem columns).
    pub columns: Vec<String>,
    /// Skolem constraints over synthetic columns.
    pub skolem_columns: Vec<SkolemColumn>,
    /// The tuples (set semantics — no duplicates).
    pub rows: Vec<BindingRow>,
}

impl BindingTable {
    /// Empty table with the given column names.
    pub fn with_columns(columns: Vec<String>) -> Self {
        BindingTable {
            columns,
            skolem_columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Insert a row, keeping set semantics.
    ///
    /// Prefer [`BindingTable::dedup`] after bulk pushes; this linear-scan
    /// variant is for small tables and tests.
    pub fn insert(&mut self, row: BindingRow) {
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
    }

    /// Remove duplicate rows (set semantics of Definition 7) while keeping
    /// first-occurrence order.
    pub fn dedup(&mut self) {
        let mut seen: HashSet<BindingRow> = HashSet::with_capacity(self.rows.len());
        self.rows.retain(|r| seen.insert(r.clone()));
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value of column `name` in `row`, if the column exists.
    pub fn value<'a>(&self, row: &'a BindingRow, name: &str) -> Option<&'a Value> {
        self.column_index(name).and_then(|i| row.values.get(i))
    }
}

impl fmt::Display for BindingTable {
    /// Render as the paper renders its `R_ϕ(d_j)` tables: a header row
    /// `$r | $x …` followed by one line per tuple.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r")?;
        for c in &self.columns {
            write!(f, " | ${c}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{}", row.uri)?;
            for v in &row.values {
                write!(f, " | {v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(uri: &str, vals: Vec<Value>) -> BindingRow {
        BindingRow {
            node: NodeId::from_index(0),
            uri: uri.into(),
            values: vals,
        }
    }

    #[test]
    fn insert_enforces_set_semantics() {
        let mut t = BindingTable::with_columns(vec!["x".into()]);
        t.insert(row("r5", vec![Value::str("r4")]));
        t.insert(row("r5", vec![Value::str("r4")]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dedup_preserves_order() {
        let mut t = BindingTable::with_columns(vec!["x".into()]);
        t.rows.push(row("a", vec![Value::str("1")]));
        t.rows.push(row("b", vec![Value::str("2")]));
        t.rows.push(row("a", vec![Value::str("1")]));
        t.dedup();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows[0].uri, "a");
        assert_eq!(t.rows[1].uri, "b");
    }

    #[test]
    fn column_lookup() {
        let t = BindingTable::with_columns(vec!["x".into(), "y".into()]);
        assert_eq!(t.column_index("y"), Some(1));
        assert_eq!(t.column_index("z"), None);
        let r = row("r", vec![Value::int(1), Value::int(2)]);
        assert_eq!(t.value(&r, "y"), Some(&Value::int(2)));
    }

    #[test]
    fn display_matches_paper_layout() {
        let mut t = BindingTable::with_columns(vec!["x".into()]);
        t.insert(row("r5", vec![Value::str("r4")]));
        assert_eq!(t.to_string(), "$r | $x\nr5 | r4\n");
    }
}
