//! # weblab-xpath — XPath patterns with variables for WebLab PROV
//!
//! Implements Definition 4–7 of *"WebLab PROV: Computing fine-grained
//! provenance links for XML artifacts"* (EDBT 2013):
//!
//! * **XPath patterns** ([`Pattern`], [`Step`]): Core XPath (child and
//!   descendant axes, qualifier predicates — no functions) enriched with
//!   *variable assignments* `[$x := @attr]` that collect attribute values
//!   into binding variables, plus the Section 5 extensions —
//!   `[$p := position()]` bindings and Skolem-term constraints
//!   `[f($x) := @attr]` for aggregation mappings.
//! * **Embeddings** ([`eval_pattern`]): tree homomorphisms from the pattern
//!   into a document state, preserving structure and predicates and binding
//!   variables (Definition 6).
//! * **Pattern results** ([`BindingTable`]): the set of binding tuples
//!   produced by all embeddings (Definition 7), with the implicit result
//!   variable `$r` bound to the matched resource's URI.
//! * **Rewritings** ([`add_source_constraints`], [`add_target_constraints`],
//!   [`extend_descendant_or_self`]): the Section 4 transformations that let
//!   mapping rules be evaluated posthoc on the final document state, using
//!   the `@s`/`@t` service-call metadata stamped on resource nodes.
//!
//! The concrete syntax follows the paper, e.g.
//!
//! ```text
//! //TextMediaUnit[$x := @id]/TextContent
//! //TextMediaUnit[Annotation/Language = 'fr']
//! /Resource//NativeContent
//! ```
//!
//! ```
//! use weblab_xpath::{parse_pattern, eval_pattern};
//! use weblab_xml::{Document, CallLabel};
//!
//! let mut doc = Document::new("Resource");
//! let root = doc.root();
//! doc.register_resource(root, "r1", None).unwrap();
//! let tmu = doc.append_element(root, "TextMediaUnit").unwrap();
//! doc.register_resource(tmu, "r4", Some(CallLabel::new("Normaliser", 1))).unwrap();
//! let tc = doc.append_element(tmu, "TextContent").unwrap();
//! doc.register_resource(tc, "r5", Some(CallLabel::new("Normaliser", 1))).unwrap();
//!
//! let pattern = parse_pattern("//TextMediaUnit[$x := @id]/TextContent").unwrap();
//! let result = eval_pattern(&pattern, &doc.view());
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0].uri, "r5");          // $r
//! assert_eq!(result.rows[0].values[0].to_string(), "r4"); // $x
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod binding;
mod eval;
mod index;
mod parser;
mod rewrite;
mod value;

pub use ast::{
    AssignTarget, Assignment, Axis, BindingSource, CmpOp, NodeTest, Pattern, Predicate, RelPath,
    Step, ValueExpr,
};
pub use binding::{BindingRow, BindingTable, SkolemColumn};
pub use eval::{
    effective_label, effective_time, eval_pattern, eval_pattern_indexed, eval_pattern_with, Env,
    EvalOptions,
};
pub use index::ElementIndex;
pub use parser::{parse_pattern, ParseError};
pub use rewrite::{add_source_constraints, add_target_constraints, extend_descendant_or_self};
pub use value::Value;
