//! Concrete syntax parser for XPath patterns.
//!
//! Grammar (the paper's notation, Figures 3 and Section 5):
//!
//! ```text
//! pattern    := (('/' | '//') step)+
//! step       := nametest item*
//! nametest   := NAME | '*'
//! item       := '[' (assignment | expr) ']'
//! assignment := ('$' NAME | NAME '(' $args ')') ':=' ('@' NAME | 'position()')
//! expr       := andexpr ('or' andexpr)*
//! andexpr    := unary ('and' unary)*
//! unary      := 'not' '(' expr ')' | atom
//! atom       := INTEGER                          -- positional [1]
//!             | value (CMP value)?               -- comparison or existence
//!             | 'created-before' '(' INT ')'     -- temporal (Section 4)
//!             | 'produced-by' '(' STR ',' INT ')'
//! value      := '@' NAME | '$' NAME | STRING | INTEGER
//!             | 'position()' | relpath ('/@' NAME)?
//! relpath    := nametest (('/' | '//') nametest)*
//! ```

use std::fmt;

use crate::ast::{
    Assignment, AssignTarget, Axis, BindingSource, CmpOp, NodeTest, Pattern, Predicate, RelPath,
    Step, ValueExpr,
};
use crate::value::Value;

/// Pattern syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern from its concrete syntax, e.g.
/// `//TextMediaUnit[$x := @id]/TextContent`.
pub fn parse_pattern(input: &str) -> Result<Pattern, ParseError> {
    let mut p = P::new(input);
    let pat = p.pattern()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after pattern"));
    }
    Ok(pat)
}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Self {
        P { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn skip_ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn peek(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Eat a keyword followed by a non-name character.
    fn eat_kw(&mut self, kw: &str) -> bool {
        let r = self.rest();
        if let Some(after) = r.strip_prefix(kw) {
            if after
                .chars()
                .next()
                .map(|c| !is_name_char(c))
                .unwrap_or(true)
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let r = self.rest();
        let end = r.find(|c: char| !is_name_char(c)).unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        self.pos += end;
        Ok(r[..end].to_string())
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        let r = self.rest();
        let neg = r.starts_with('-');
        let body = if neg { &r[1..] } else { r };
        let digits = body
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(body.len());
        if digits == 0 {
            return Err(self.err("expected an integer"));
        }
        let end = digits + usize::from(neg);
        let v: i64 = r[..end].parse().map_err(|_| self.err("integer overflow"))?;
        self.pos += end;
        Ok(v)
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        let quote = if self.eat("'") {
            '\''
        } else if self.eat("\"") {
            '"'
        } else {
            return Err(self.err("expected a string literal"));
        };
        let r = self.rest();
        let end = r
            .find(quote)
            .ok_or_else(|| self.err("unterminated string literal"))?;
        let s = r[..end].to_string();
        self.pos += end + 1;
        Ok(s)
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut steps = Vec::new();
        self.skip_ws();
        loop {
            let axis = if self.eat("/descendant-or-self::") {
                Axis::DescendantOrSelf
            } else if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                return Err(self.err("pattern must start with '/' or '//'"));
            } else {
                break;
            };
            steps.push(self.step(axis)?);
            self.skip_ws();
            if !self.peek("/") {
                break;
            }
        }
        Ok(Pattern { steps })
    }

    fn step(&mut self, axis: Axis) -> Result<Step, ParseError> {
        self.skip_ws();
        let test = if self.eat("*") {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(self.name()?)
        };
        let mut step = Step::new(axis, test);
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            self.skip_ws();
            if let Some(assign) = self.try_assignment()? {
                step.assignments.push(assign);
            } else {
                step.predicates.push(self.expr()?);
            }
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
        }
        Ok(step)
    }

    /// Look ahead for `… := …`; parse it as an assignment if found.
    fn try_assignment(&mut self) -> Result<Option<Assignment>, ParseError> {
        let save = self.pos;
        let target = if self.eat("$") {
            match self.name() {
                Ok(v) => Some(AssignTarget::Var(v)),
                Err(_) => {
                    self.pos = save;
                    None
                }
            }
        } else if self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_alphabetic())
            .unwrap_or(false)
        {
            // maybe a skolem term f($x,...)
            let fun = self.name()?;
            self.skip_ws();
            if self.eat("(") {
                let mut args = Vec::new();
                loop {
                    self.skip_ws();
                    if !self.eat("$") {
                        self.pos = save;
                        break;
                    }
                    args.push(self.name()?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat(")") {
                        break;
                    }
                    self.pos = save;
                    break;
                }
                if self.pos == save {
                    None
                } else {
                    Some(AssignTarget::Skolem { fun, args })
                }
            } else {
                self.pos = save;
                None
            }
        } else {
            None
        };

        let Some(target) = target else {
            self.pos = save;
            return Ok(None);
        };
        self.skip_ws();
        if !self.eat(":=") {
            self.pos = save;
            return Ok(None);
        }
        self.skip_ws();
        let source = if self.eat("@") {
            BindingSource::Attr(self.name()?)
        } else if self.eat_kw("position") {
            self.skip_ws();
            if !(self.eat("(") && {
                self.skip_ws();
                self.eat(")")
            }) {
                return Err(self.err("expected '()' after position"));
            }
            BindingSource::Position
        } else {
            return Err(self.err("expected '@attr' or 'position()' after ':='"));
        };
        Ok(Some(Assignment { target, source }))
    }

    fn expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.and_expr()?];
        loop {
            self.skip_ws();
            if self.eat_kw("or") {
                terms.push(self.and_expr()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Predicate::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.unary()?];
        loop {
            self.skip_ws();
            if self.eat_kw("and") {
                terms.push(self.unary()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Predicate::And(terms)
        })
    }

    fn unary(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        if self.eat_kw("not") {
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.err("expected '(' after not"));
            }
            let inner = self.expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat_kw("created-before") {
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.err("expected '('"));
            }
            self.skip_ws();
            let t = self.integer()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::CreatedBefore(t as u64));
        }
        if self.eat_kw("produced-by") {
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.err("expected '('"));
            }
            self.skip_ws();
            let s = self.string_literal()?;
            self.skip_ws();
            if !self.eat(",") {
                return Err(self.err("expected ','"));
            }
            self.skip_ws();
            let t = self.integer()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::ProducedBy(s, t as u64));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        // bare integer → positional predicate
        if self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            let save = self.pos;
            let i = self.integer()?;
            self.skip_ws();
            if self.peek("]") {
                if i < 1 {
                    return Err(self.err("positional predicate must be >= 1"));
                }
                return Ok(Predicate::PositionIs(i as usize));
            }
            // an integer literal in a comparison: rewind and parse as value
            self.pos = save;
        }
        let lhs = self.value_expr()?;
        self.skip_ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else {
            None
        };
        match op {
            Some(op) => {
                self.skip_ws();
                let rhs = self.value_expr()?;
                Ok(Predicate::Compare(lhs, op, rhs))
            }
            None => match lhs {
                ValueExpr::Attr(a) => Ok(Predicate::AttrExists(a)),
                ValueExpr::PathText(p) => Ok(Predicate::Exists(p)),
                other => Err(self.err(format!(
                    "expected a comparison operator after {other}"
                ))),
            },
        }
    }

    fn value_expr(&mut self) -> Result<ValueExpr, ParseError> {
        self.skip_ws();
        if self.eat("@") {
            return Ok(ValueExpr::Attr(self.name()?));
        }
        if self.eat("$") {
            return Ok(ValueExpr::Var(self.name()?));
        }
        if self.peek("'") || self.peek("\"") {
            return Ok(ValueExpr::Literal(Value::Str(self.string_literal()?)));
        }
        if self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_digit() || c == '-')
            .unwrap_or(false)
        {
            return Ok(ValueExpr::Literal(Value::Int(self.integer()?)));
        }
        if self.eat_kw("position") {
            self.skip_ws();
            if !(self.eat("(") && {
                self.skip_ws();
                self.eat(")")
            }) {
                return Err(self.err("expected '()' after position"));
            }
            return Ok(ValueExpr::Position);
        }
        // relative path, possibly ending in /@attr
        let path = self.rel_path()?;
        if self.eat("/@") {
            let a = self.name()?;
            return Ok(ValueExpr::PathAttr(path, a));
        }
        Ok(ValueExpr::PathText(path))
    }

    fn rel_path(&mut self) -> Result<RelPath, ParseError> {
        let mut steps = Vec::new();
        let leading_desc = self.eat(".//");
        let first = if self.eat("*") {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(self.name()?)
        };
        steps.push((leading_desc, first));
        loop {
            // lookahead: '/@' ends the path (attribute access handled above)
            if self.peek("/@") {
                break;
            }
            let desc = if self.eat("//") {
                true
            } else if self.eat("/") {
                false
            } else {
                break;
            };
            let t = if self.eat("*") {
                NodeTest::Wildcard
            } else {
                NodeTest::Name(self.name()?)
            };
            steps.push((desc, t));
        }
        Ok(RelPath { steps })
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> String {
        parse_pattern(src).unwrap().to_string()
    }

    #[test]
    fn paper_example3_patterns_parse() {
        // ϕ1 .. ϕ4 of Example 3
        for p in [
            "//T[$x := @id]/C",
            "//T[@id][$x := @id]/C[$r := @id]",
            "//T[$x := @id]/A[L]",
            "/R[$x := @id]//T[A/L]",
        ] {
            parse_pattern(p).unwrap();
        }
    }

    #[test]
    fn figure3_mappings_parse() {
        for p in [
            "/Resource//NativeContent",
            "//TextMediaUnit[1]",
            "//TextMediaUnit[$x := @id]/TextContent",
            "//TextMediaUnit[$x := @id]/Annotation[Language]",
            "//TextMediaUnit[Annotation/Language = 'fr']",
            "//TextMediaUnit[Annotation/Language = 'en']",
        ] {
            parse_pattern(p).unwrap();
        }
    }

    #[test]
    fn display_round_trip_is_stable() {
        for p in [
            "//TextMediaUnit[$x := @id]/TextContent",
            "/R[$x := @id]//T[A/L]",
            "//T[1]",
            "//A[B][$p := position()]/B",
            "//C[$p = position()]",
            "//A[$x := @a]",
            "//C[f($x) := @b]",
            "//X[@id = $x]",
            "//X[@t < 3]",
            "//X[created-before(3)]",
            "//X[produced-by('Normaliser', 1)]",
            "//X[@a = '1' and @b = '2']",
            "//X[not(@a = '1')]",
            "//X[@a = '1' or B/C]",
        ] {
            let printed = round_trip(p);
            // printing then re-parsing must be a fixpoint
            assert_eq!(round_trip(&printed), printed, "source: {p}");
        }
    }

    #[test]
    fn skolem_assignment_parses() {
        let p = parse_pattern("//C[f($x,$y) := @b]").unwrap();
        let step = &p.steps[0];
        assert_eq!(step.assignments.len(), 1);
        match &step.assignments[0].target {
            AssignTarget::Skolem { fun, args } => {
                assert_eq!(fun, "f");
                assert_eq!(args, &vec!["x".to_string(), "y".to_string()]);
            }
            other => panic!("unexpected target {other:?}"),
        }
    }

    #[test]
    fn position_binding_and_predicate() {
        let p = parse_pattern("//A[B][$p := position()]/B").unwrap();
        assert_eq!(p.steps[0].predicates.len(), 1);
        assert_eq!(p.steps[0].assignments.len(), 1);
        let q = parse_pattern("//C[$p = position()]").unwrap();
        assert!(matches!(
            q.steps[0].predicates[0],
            Predicate::Compare(ValueExpr::Var(_), CmpOp::Eq, ValueExpr::Position)
        ));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_pattern("//T[").unwrap_err();
        assert!(e.offset >= 4);
        assert!(parse_pattern("T/Q").is_err()); // must start with / or //
        assert!(parse_pattern("//T[0]").is_err()); // position must be >= 1
        assert!(parse_pattern("//T[$x :=]").is_err());
    }

    #[test]
    fn wildcard_and_nested_paths() {
        let p = parse_pattern("//*[A//B]").unwrap();
        assert!(matches!(p.steps[0].test, NodeTest::Wildcard));
        match &p.steps[0].predicates[0] {
            Predicate::Exists(rp) => {
                assert_eq!(rp.steps.len(), 2);
                assert!(rp.steps[1].0); // descendant
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_attr_value() {
        let p = parse_pattern("//X[A/B/@conf >= 5]").unwrap();
        match &p.steps[0].predicates[0] {
            Predicate::Compare(ValueExpr::PathAttr(rp, a), CmpOp::Ge, _) => {
                assert_eq!(rp.steps.len(), 2);
                assert_eq!(a, "conf");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn descendant_or_self_axis_round_trips() {
        let p = parse_pattern("//T/descendant-or-self::*").unwrap();
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(p.to_string(), "//T/descendant-or-self::*");
    }
}
