//! Provenance-guided incremental recomputation ("replay").
//!
//! The reachability links of the provenance graph exist to answer *what
//! must change when an input changes*. This module is the executable form
//! of that answer: given a prior execution `e = d₀.c₁…cₙ.dₙ`, a
//! structure-preserving change to the initial state `d₀`, and the **dirty
//! cone** — the set of resource URIs transitively impacted by the changed
//! artifacts (`impacted_by` over the reachability index) — replay
//! re-executes *only* the steps whose produced resources intersect the
//! cone. Every clean step's fragment is **spliced** forward from the prior
//! document instead: its node range is copied with ids remapped and its
//! resource registrations replayed, exactly like a parallel-branch merge,
//! so the trace record it yields is indistinguishable from a fresh call.
//!
//! Because dirty steps run at their *original* instants (`CallRecord::time`
//! is reused, like a retry), the `(service, time)` labels — and therefore
//! the generated URIs — coincide with a full re-run's, which is what makes
//! the headline contract provable: **the replayed document, trace and
//! provenance links are byte-identical to re-running the whole workflow on
//! the changed input**, as long as every reused service is deterministic.
//!
//! ## Graded proof modes
//!
//! Determinism of the reused services is exactly the assumption the splice
//! rests on, so replay can *verify* it, at a cost, per reused step:
//!
//! * [`ProofMode::Trusted`] — no verification; the cone is trusted. This
//!   is the fast path the X16 benchmark measures.
//! * [`ProofMode::Exact`] — each reused step is additionally re-executed
//!   in a **sandbox fork** of the document (the same
//!   `materialize_state`/rollback machinery retries use) and the fresh
//!   fragment must be byte-identical to the spliced one; any divergence —
//!   i.e. a nondeterministic service — fails the replay loudly.
//! * [`ProofMode::Concordant`] — the sandbox comparison grades each
//!   fragment with a similarity score in `[0, 1]` (Dice coefficient over
//!   the fragments' canonical node lines) and accepts nondeterministic
//!   services whose grade clears a tolerance knob, reporting the
//!   per-fragment grades in [`ReplayOutcome::grades`].
//!
//! The `replay.{cone_size,reused,recomputed,splices}` counters and the
//! `replay.verify_ns` / `replay.grade_pct` histograms pin the behaviour
//! for the metrics suite.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use weblab_obs::{Counter, Histogram};
use weblab_prov::{CallRecord, ExecutionTrace};
use weblab_xml::{Document, NodeId, StateMark, Timestamp};

use crate::orchestrator::{next_time, ExecutionOutcome, Orchestrator, Workflow, WorkflowStep};
use crate::service::WorkflowError;

/// Dirty-cone sizes handed to replay (sum over replays).
static REPLAY_CONE_SIZE: Counter = Counter::new("replay.cone_size");
/// Prior calls reused (spliced forward) instead of re-executed.
static REPLAY_REUSED: Counter = Counter::new("replay.reused");
/// Prior calls re-executed because their outputs intersect the cone.
static REPLAY_RECOMPUTED: Counter = Counter::new("replay.recomputed");
/// Fragments spliced from the prior document (one per reused call).
static REPLAY_SPLICES: Counter = Counter::new("replay.splices");
/// Wall time spent in sandbox verification per reused step, nanoseconds.
static REPLAY_VERIFY_NS: Histogram = Histogram::new("replay.verify_ns");
/// Per-fragment verification grades, in percent (100 = byte-identical).
static REPLAY_GRADE_PCT: Histogram = Histogram::new("replay.grade_pct");

/// How strictly a replay must prove that splicing was sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProofMode {
    /// Trust the cone: no re-execution of reused steps (the fast path).
    Trusted,
    /// Sandbox-re-execute every reused step and require byte/hash identity
    /// of the fresh fragment against the spliced one.
    Exact,
    /// Sandbox-re-execute and grade similarity; accept fragments whose
    /// grade is at least `tolerance` (in `[0, 1]`).
    Concordant {
        /// Minimum acceptable similarity grade.
        tolerance: f64,
    },
}

/// Verification verdict for one reused fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentGrade {
    /// Service of the reused call.
    pub service: String,
    /// Call instant of the reused call.
    pub time: Timestamp,
    /// Similarity of the sandbox re-execution to the spliced fragment
    /// (1.0 = byte-identical).
    pub grade: f64,
    /// Whether the fragments were byte-identical.
    pub identical: bool,
}

/// Result of an incremental replay.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// The new execution's trace (plus attempt log for recomputed steps) —
    /// shaped exactly like a full re-run's [`ExecutionOutcome`].
    pub outcome: ExecutionOutcome,
    /// Size of the dirty cone the replay was given.
    pub cone_size: usize,
    /// Prior calls reused via splicing.
    pub reused: usize,
    /// Prior calls re-executed.
    pub recomputed: usize,
    /// Fragments spliced from the prior document.
    pub splices: usize,
    /// Per-fragment verification grades (empty under
    /// [`ProofMode::Trusted`]).
    pub grades: Vec<FragmentGrade>,
    /// Prior node id → new node id: seeded with the initial-state
    /// correspondence, extended per spliced node and per
    /// positionally-aligned recomputed node.
    idmap: HashMap<NodeId, NodeId>,
}

impl ReplayOutcome {
    /// Map a node id of the *prior* document to its id in the replayed
    /// document: initial-state and spliced nodes always have an image,
    /// recomputed nodes only when their fragment kept its shape. `None`
    /// otherwise.
    pub fn map_node(&self, n: NodeId) -> Option<NodeId> {
        self.idmap.get(&n).copied()
    }
}

fn replay_error(message: impl Into<String>) -> WorkflowError {
    WorkflowError::Service {
        service: "replay".into(),
        message: message.into(),
    }
}

/// Owner partition of the prior document's nodes: `usize::MAX` marks the
/// initial state, any other value indexes the owning call in `calls`. A
/// node's owner is its innermost ancestor-or-self resource whose label
/// names a recorded call; labels outside the trace (the `(Source, 0)`
/// stamps of ingested artifacts) inherit like unlabelled nodes. Parents
/// are always created before children in the append-only arena, so one
/// ascending pass suffices — both for in-memory documents (arena order =
/// creation order) and for documents re-parsed from disk (arena order =
/// document order), which is what makes replay independent of persisted
/// state marks.
fn assign_owners(prior_doc: &Document, calls: &[CallRecord]) -> Vec<usize> {
    let call_of: HashMap<(&str, Timestamp), usize> = calls
        .iter()
        .enumerate()
        .map(|(i, c)| ((c.service.as_str(), c.time), i))
        .collect();
    let mut owner = vec![usize::MAX; prior_doc.node_count()];
    for idx in 0..prior_doc.node_count() {
        let id = NodeId::from_index(idx);
        let own = prior_doc
            .resource(id)
            .and_then(|m| m.label.as_ref())
            .and_then(|l| call_of.get(&(l.service.as_str(), l.time)).copied());
        owner[idx] = match own {
            Some(k) => k,
            None => prior_doc
                .node(id)
                .ok()
                .and_then(|n| n.parent())
                .map(|p| owner[p.index()])
                .unwrap_or(usize::MAX),
        };
    }
    owner
}

/// Service calls one step contributes to the trace (branches flattened).
fn service_count(step: &WorkflowStep) -> usize {
    match step {
        WorkflowStep::Service(_) => 1,
        WorkflowStep::Parallel(branches) => branches
            .iter()
            .map(|b| b.steps().iter().map(service_count).sum::<usize>())
            .sum(),
    }
}

/// Canonical per-node lines of the fragment `input..output`, with new
/// nodes encoded relative to the fragment base so fragments at different
/// arena offsets compare equal; pre-existing parents keep absolute ids
/// (the compared documents share an identical prefix).
fn fragment_signature(doc: &Document, input: StateMark, output: StateMark) -> Vec<String> {
    let base = input.node_count();
    let enc = |n: NodeId| {
        if n.index() < base {
            format!("o{}", n.index())
        } else {
            format!("n{}", n.index() - base)
        }
    };
    let mut lines = Vec::new();
    for idx in base..output.node_count() {
        let id = NodeId::from_index(idx);
        let node = doc.node(id).expect("fragment node exists");
        let parent = node.parent().map(enc).unwrap_or_else(|| "-".into());
        let attrs: Vec<String> = node
            .attrs()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let line = match node.kind() {
            weblab_xml::NodeKind::Element { name } => {
                format!("e {name} p{parent} [{}]", attrs.join(","))
            }
            weblab_xml::NodeKind::Text { value } => format!("t {value:?} p{parent}"),
        };
        lines.push(line);
    }
    let registered = output.resource_count() - input.resource_count();
    for n in doc.new_resources_since(input).into_iter().take(registered) {
        let meta = doc.resource(n).expect("registered");
        let label = meta
            .label
            .as_ref()
            .map(|l| format!("{}@{}", l.service, l.time))
            .unwrap_or_else(|| "-".into());
        lines.push(format!("r {} {} @{}", meta.uri, label, enc(n)));
    }
    lines
}

/// Dice coefficient over two line multisets: `2·|A ∩ B| / (|A| + |B|)`.
fn dice(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for l in a {
        *counts.entry(l.as_str()).or_default() += 1;
    }
    let mut common = 0i64;
    for l in b {
        let c = counts.entry(l.as_str()).or_default();
        if *c > 0 {
            *c -= 1;
            common += 1;
        }
    }
    (2.0 * common as f64) / (a.len() + b.len()) as f64
}

impl Orchestrator {
    /// Incrementally re-execute `workflow` over `doc` (the changed initial
    /// state), reusing fragments of the prior execution
    /// (`prior_doc`/`prior_trace`) for every step whose produced resources
    /// avoid the `dirty` cone. See the module docs for the contract.
    ///
    /// Requirements: `prior_trace` must be complete (one record per
    /// service step — no skipped steps), and `doc` must preserve the
    /// node/resource counts of the prior initial state (the change is a
    /// content change, not a structural one). Call hooks fire for spliced
    /// calls exactly as for executed ones, so a live provenance maintainer
    /// sees the replayed execution as a normal one.
    pub fn replay(
        &self,
        workflow: &Workflow,
        doc: &mut Document,
        prior_doc: &Document,
        prior_trace: &ExecutionTrace,
        dirty: &HashSet<String>,
        proof: ProofMode,
    ) -> Result<ReplayOutcome, WorkflowError> {
        let total: usize = workflow.steps().iter().map(service_count).sum();
        if prior_trace.calls.len() != total {
            return Err(replay_error(format!(
                "prior trace records {} calls but the workflow has {} service steps; \
                 replay needs a complete trace",
                prior_trace.calls.len(),
                total
            )));
        }
        let owner = assign_owners(prior_doc, &prior_trace.calls);
        let initial: Vec<NodeId> = (0..prior_doc.node_count())
            .filter(|&i| owner[i] == usize::MAX)
            .map(NodeId::from_index)
            .collect();
        let initial_resources = initial
            .iter()
            .filter(|&&n| prior_doc.resource(n).is_some())
            .count();
        let mark = doc.mark();
        if mark.node_count() != initial.len() || mark.resource_count() != initial_resources {
            return Err(replay_error(format!(
                "changed document has {} nodes / {} resources but the prior initial state \
                 had {} / {}; replay requires a structure-preserving change",
                mark.node_count(),
                mark.resource_count(),
                initial.len(),
                initial_resources
            )));
        }
        // Seed the id map with the initial-state correspondence: the prior
        // document's initial nodes, in ascending id order, line up with the
        // changed document's nodes one-to-one (same shape, changed content).
        let mut idmap: HashMap<NodeId, NodeId> = HashMap::new();
        for (i, &p) in initial.iter().enumerate() {
            let new_id = NodeId::from_index(i);
            let (a, b) = (
                prior_doc.node(p).map_err(WorkflowError::Xml)?,
                doc.node(new_id).map_err(WorkflowError::Xml)?,
            );
            let compatible = match (a.kind(), b.kind()) {
                (
                    weblab_xml::NodeKind::Element { name: x },
                    weblab_xml::NodeKind::Element { name: y },
                ) => x == y,
                (weblab_xml::NodeKind::Text { .. }, weblab_xml::NodeKind::Text { .. }) => true,
                _ => false,
            };
            if !compatible {
                return Err(replay_error(format!(
                    "changed document diverges from the prior initial state at node {i} \
                     (prior {p:?}); replay requires a structure-preserving change",
                )));
            }
            idmap.insert(p, new_id);
        }
        // Each call's fragment, in ascending id order (creation order in
        // memory, document order after a re-parse — both are parents-first
        // and child-order-preserving, which is all splicing needs).
        let mut fragments: Vec<Vec<NodeId>> = vec![Vec::new(); prior_trace.calls.len()];
        for (idx, &o) in owner.iter().enumerate() {
            if o != usize::MAX {
                fragments[o].push(NodeId::from_index(idx));
            }
        }
        REPLAY_CONE_SIZE.add(dirty.len() as u64);

        let mut result = ReplayOutcome {
            cone_size: dirty.len(),
            ..ReplayOutcome::default()
        };
        let mut time = prior_trace
            .calls
            .first()
            .map(|c| c.time)
            .unwrap_or_else(|| next_time(doc));
        let mut cursor = 0usize;

        for step in workflow.steps() {
            let n = service_count(step);
            let first_call = cursor;
            let range = &prior_trace.calls[cursor..cursor + n];
            cursor += n;
            let step_dirty = range.iter().any(|c| {
                c.produced.iter().any(|&pn| {
                    prior_doc
                        .resource(pn)
                        .map(|m| dirty.contains(&m.uri))
                        .unwrap_or(false)
                })
            });
            if std::env::var("WEBLAB_REPLAY_DEBUG").is_ok() {
                eprintln!(
                    "[replay-debug] step calls {:?} dirty={step_dirty}",
                    range.iter().map(|c| (&c.service, c.time)).collect::<Vec<_>>()
                );
            }
            if step_dirty {
                // Re-execute at the original instants (like a retry), so
                // labels and generated URIs coincide with a full re-run.
                time = range[0].time;
                let new_from = result.outcome.trace.calls.len();
                self.exec_steps(
                    std::slice::from_ref(step),
                    doc,
                    &mut time,
                    "",
                    &mut result.outcome,
                    true,
                )?;
                let new_calls = &result.outcome.trace.calls[new_from..];
                result.recomputed += new_calls.len();
                // Positionally align the recomputed fragments with the
                // prior ones so later spliced calls can attach to nodes a
                // dirty call recreated.
                if new_calls.len() == range.len() {
                    for (k, fresh) in new_calls.iter().enumerate() {
                        let prior_nodes = &fragments[first_call + k];
                        let fresh_count =
                            fresh.output.node_count() - fresh.input.node_count();
                        if prior_nodes.len() == fresh_count {
                            for (off, &p) in prior_nodes.iter().enumerate() {
                                idmap.insert(
                                    p,
                                    NodeId::from_index(fresh.input.node_count() + off),
                                );
                            }
                        }
                    }
                }
                time = range.last().expect("non-empty step").time + 1;
            } else {
                // A sandbox fork of the pre-step state, taken before the
                // splice, when this step must be verified.
                let verify_fork = if proof != ProofMode::Trusted {
                    Some(doc.materialize_state(doc.mark()))
                } else {
                    None
                };
                let splice_from = result.outcome.trace.calls.len();
                for (k, call) in range.iter().enumerate() {
                    splice_call(
                        doc,
                        prior_doc,
                        call,
                        &fragments[first_call + k],
                        &mut idmap,
                        &mut result.outcome,
                    )?;
                    result.reused += 1;
                    result.splices += 1;
                    for hook in &self.call_hooks {
                        hook(
                            doc,
                            &result.outcome.trace,
                            result.outcome.trace.calls.len() - 1,
                        );
                    }
                }
                time = range.last().map(|c| c.time + 1).unwrap_or(time);
                if let Some(mut fork) = verify_fork {
                    let t0 = Instant::now();
                    let mut vt = range.first().map(|c| c.time).unwrap_or(time);
                    let mut sandbox = ExecutionOutcome::default();
                    self.exec_steps(
                        std::slice::from_ref(step),
                        &mut fork,
                        &mut vt,
                        "",
                        &mut sandbox,
                        false,
                    )?;
                    let spliced = &result.outcome.trace.calls[splice_from..];
                    if sandbox.trace.calls.len() != spliced.len() {
                        return Err(replay_error(format!(
                            "replay divergence: verification re-run of a reused step \
                             recorded {} calls where the splice carried {}",
                            sandbox.trace.calls.len(),
                            spliced.len()
                        )));
                    }
                    for (s, f) in spliced.iter().zip(&sandbox.trace.calls) {
                        let sa = fragment_signature(doc, s.input, s.output);
                        let fb = fragment_signature(&fork, f.input, f.output);
                        let identical = sa == fb;
                        let grade = if identical { 1.0 } else { dice(&sa, &fb) };
                        REPLAY_GRADE_PCT.record((grade * 100.0).round() as u64);
                        match proof {
                            ProofMode::Exact if !identical => {
                                return Err(replay_error(format!(
                                    "replay divergence: service {} at t{} re-executed \
                                     differently under --proof exact (grade {grade:.2}); \
                                     the service is nondeterministic or the dirty cone \
                                     under-approximates its dependencies",
                                    s.service, s.time
                                )));
                            }
                            ProofMode::Concordant { tolerance } if grade < tolerance => {
                                return Err(replay_error(format!(
                                    "replay divergence: service {} at t{} grades {grade:.2}, \
                                     below the {tolerance:.2} concordance tolerance",
                                    s.service, s.time
                                )));
                            }
                            _ => {}
                        }
                        result.grades.push(FragmentGrade {
                            service: s.service.clone(),
                            time: s.time,
                            grade,
                            identical,
                        });
                    }
                    REPLAY_VERIFY_NS
                        .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
            }
        }
        REPLAY_REUSED.add(result.reused as u64);
        REPLAY_RECOMPUTED.add(result.recomputed as u64);
        REPLAY_SPLICES.add(result.splices as u64);
        result.outcome.eager_links.sort();
        result.outcome.eager_links.dedup();
        result.idmap = idmap;
        Ok(result)
    }
}

/// Splice one reused call forward: copy its node range from the prior
/// document (ids remapped), replay its resource registrations, and record
/// a call with marks taken around the splice — the exact shape of a
/// parallel-branch merge, so downstream consumers cannot tell a spliced
/// call from an executed one.
fn splice_call(
    doc: &mut Document,
    prior_doc: &Document,
    call: &CallRecord,
    nodes: &[NodeId],
    idmap: &mut HashMap<NodeId, NodeId>,
    outcome: &mut ExecutionOutcome,
) -> Result<(), WorkflowError> {
    let map_id = |idmap: &HashMap<NodeId, NodeId>, n: NodeId| -> Result<NodeId, WorkflowError> {
        idmap.get(&n).copied().ok_or_else(|| {
            replay_error(format!(
                "cannot splice {} at t{}: it attaches to a node a recomputed \
                 step reshaped; widen the dirty cone",
                call.service, call.time
            ))
        })
    };
    let new_input = doc.mark();
    for &id in nodes {
        let node = prior_doc.node(id).expect("prior fragment node exists");
        let copy = match node.kind() {
            weblab_xml::NodeKind::Element { name } => doc.create_element(name.clone()),
            weblab_xml::NodeKind::Text { value } => doc.create_text(value.clone()),
        };
        for (k, v) in node.attrs() {
            if node.name().is_some() {
                doc.set_attr(copy, k.clone(), v.clone())?;
            }
        }
        if let Some(parent) = node.parent() {
            let p = map_id(idmap, parent)?;
            doc.attach(p, copy)?;
        }
        idmap.insert(id, copy);
    }
    // Replay the call's registrations in their recorded order: `produced`
    // is exactly the set of resources the call registered (services
    // register nodes they created; nothing in-tree promotes pre-existing
    // nodes), and both the recorder and the persisted trace format keep
    // its registration order.
    for &n in &call.produced {
        let meta = prior_doc.resource(n).expect("produced node is registered");
        let target = map_id(idmap, n)?;
        doc.register_resource(target, meta.uri.clone(), meta.label.clone())?;
    }
    let new_output = doc.mark();
    let mut record = call.clone();
    record.input = new_input;
    record.output = new_output;
    record.produced = call
        .produced
        .iter()
        .map(|&n| map_id(idmap, n))
        .collect::<Result<Vec<_>, _>>()?;
    outcome.trace.calls.push(record);
    Ok(())
}
