//! Black-box services and call contexts.
//!
//! A WebLab service is a black box that receives the single workflow
//! document and *extends* it — never deleting or modifying existing content
//! (the append semantics of Section 2). Services register the resources
//! they create through the [`CallContext`], which stamps them with the
//! call's label `(service, time)` and a generated URI; this is the metadata
//! the provenance engine later reads back as the virtual `@id`/`@s`/`@t`
//! attributes.

use std::fmt;

use weblab_xml::{CallLabel, Document, NodeId, Timestamp};

/// Error raised by a service call or by the orchestrator's validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The service itself failed.
    Service {
        /// Service name.
        service: String,
        /// Failure description.
        message: String,
    },
    /// The service violated the append-only contract (detected by the
    /// orchestrator's containment check).
    AppendViolation {
        /// Service name.
        service: String,
    },
    /// An underlying document operation failed.
    Xml(weblab_xml::Error),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Service { service, message } => {
                write!(f, "service {service} failed: {message}")
            }
            WorkflowError::AppendViolation { service } => {
                write!(f, "service {service} violated append-only semantics")
            }
            WorkflowError::Xml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<weblab_xml::Error> for WorkflowError {
    fn from(e: weblab_xml::Error) -> Self {
        WorkflowError::Xml(e)
    }
}

/// Per-call context handed to a service: the call's identity plus URI
/// generation for the resources it creates.
#[derive(Debug)]
pub struct CallContext {
    service: String,
    time: Timestamp,
    counter: u64,
    doc_uri_prefix: String,
}

impl CallContext {
    /// Create a context for call `(service, time)`.
    pub fn new(service: impl Into<String>, time: Timestamp) -> Self {
        CallContext {
            service: service.into(),
            time,
            counter: 0,
            doc_uri_prefix: "weblab://res".into(),
        }
    }

    /// The call's service name.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The call's instant.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The call's label.
    pub fn label(&self) -> CallLabel {
        CallLabel::new(self.service.clone(), self.time)
    }

    /// Generate a fresh URI unique within the execution.
    pub fn fresh_uri(&mut self) -> String {
        self.counter += 1;
        format!("{}/{}-t{}-{}", self.doc_uri_prefix, self.service, self.time, self.counter)
    }

    /// Register `node` as a resource produced by this call.
    pub fn register(&mut self, doc: &mut Document, node: NodeId) -> Result<String, WorkflowError> {
        let uri = self.fresh_uri();
        doc.register_resource(node, uri.clone(), Some(self.label()))?;
        Ok(uri)
    }

    /// Register `node` as a resource credited to another origin (used for
    /// *promotions* of pre-existing content, e.g. node 3 → r3 credited to
    /// `(Source, t₀)` in Figure 4).
    pub fn register_promoted(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        origin: CallLabel,
    ) -> Result<String, WorkflowError> {
        let uri = self.fresh_uri();
        doc.register_resource(node, uri.clone(), Some(origin))?;
        Ok(uri)
    }
}

/// A black-box workflow service.
pub trait Service: Send + Sync {
    /// Stable service name `s ∈ S` (also the key into the rule registry).
    fn name(&self) -> &str;

    /// Extend the document. The orchestrator snapshots the state before and
    /// after and records the trace; implementations must only append.
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError>;
}

impl Service for std::sync::Arc<dyn Service> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        self.as_ref().call(doc, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_uris_are_unique_and_labelled() {
        let mut ctx = CallContext::new("Normaliser", 3);
        let a = ctx.fresh_uri();
        let b = ctx.fresh_uri();
        assert_ne!(a, b);
        assert!(a.contains("Normaliser"));
        assert!(a.contains("t3"));
        assert_eq!(ctx.label(), CallLabel::new("Normaliser", 3));
    }

    #[test]
    fn register_stamps_label() {
        let mut doc = Document::new("Resource");
        let root = doc.root();
        let n = doc.append_element(root, "X").unwrap();
        let mut ctx = CallContext::new("S", 1);
        let uri = ctx.register(&mut doc, n).unwrap();
        assert_eq!(doc.view().uri(n), Some(uri.as_str()));
        assert_eq!(doc.view().label(n), Some(&CallLabel::new("S", 1)));
    }

    #[test]
    fn promoted_registration_keeps_origin_label() {
        let mut doc = Document::new("Resource");
        let root = doc.root();
        let n = doc.append_element(root, "X").unwrap();
        let mut ctx = CallContext::new("Normaliser", 5);
        ctx.register_promoted(&mut doc, n, CallLabel::new("Source", 0))
            .unwrap();
        assert_eq!(doc.view().label(n), Some(&CallLabel::new("Source", 0)));
    }
}
