//! Fault-tolerance policies for workflow execution.
//!
//! The paper's services are black boxes that "append XML fragments to a
//! single growing document" — and black boxes fail mid-call. The policies
//! here decide what the [`crate::Orchestrator`] does when they do:
//!
//! * [`FailurePolicy`] — per-step disposition once a call (and its retries)
//!   has failed: abort the execution, skip the step, or retry it.
//! * [`RetryPolicy`] — how many attempts a step gets and how long to back
//!   off between them. The backoff schedule is *deterministic*: it is
//!   derived from the in-tree SplitMix64 generator seeded by the policy
//!   seed, the service name and the attempt number, so re-running an
//!   execution reproduces the exact same delays (and so tests can assert
//!   them).
//! * [`FaultPolicy`] — the orchestrator-level bundle: a default disposition
//!   and retry policy plus per-service overrides.
//!
//! Whatever the policy, every failed attempt is rolled back to the state
//! mark taken before the call (`Document::truncate_to_mark`), so a retried
//! or skipped service can never violate the append-only containment
//! invariant `d_{i-1} ⊑_uri d_i` or leak half-registered resources.

use std::collections::HashMap;

use crate::rng::SplitMix64;

/// What to do once a service call has exhausted its attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the whole execution (the pre-fault-tolerance behaviour). The
    /// failed call is still rolled back, so the document is left at the
    /// last consistent state.
    #[default]
    Abort,
    /// Roll back the failed call and continue with the next step, leaving a
    /// gap at the call's instant.
    Skip,
    /// Retry the call up to [`RetryPolicy::max_attempts`] times, rolling
    /// back between attempts; abort if the final attempt fails.
    Retry,
}

impl FailurePolicy {
    /// Parse a policy name as accepted by the CLI's `--on-failure` flag.
    pub fn parse(s: &str) -> Option<FailurePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "abort" => Some(FailurePolicy::Abort),
            "skip" => Some(FailurePolicy::Skip),
            "retry" => Some(FailurePolicy::Retry),
            _ => None,
        }
    }
}

/// Attempt budget and deterministic backoff schedule for one service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts a call gets, the first one included. `0` is treated
    /// as `1`.
    pub max_attempts: u32,
    /// Base backoff before the first retry, in nanoseconds; doubles per
    /// further retry (exponential backoff). `0` disables waiting entirely —
    /// the schedule is all zeros.
    pub base_backoff_ns: u64,
    /// Upper bound on any single backoff, in nanoseconds. `0` means
    /// unbounded.
    pub max_backoff_ns: u64,
    /// Seed for the jitter stream. Two policies with equal fields produce
    /// identical schedules.
    pub backoff_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ns: 0,
            max_backoff_ns: 0,
            backoff_seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// A policy granting `max_attempts` total attempts with no waiting
    /// between them.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based: the delay between
    /// attempt `retry` failing and attempt `retry + 1` starting) of calls
    /// to `service`.
    ///
    /// Exponential base doubling plus a jitter of up to one base interval,
    /// drawn from SplitMix64 seeded by `(backoff_seed, service, retry)` —
    /// fully deterministic per policy.
    pub fn backoff_ns(&self, service: &str, retry: u32) -> u64 {
        if self.base_backoff_ns == 0 || retry == 0 {
            return 0;
        }
        // fold the service name into the seed (FNV-1a style)
        let mut h = self.backoff_seed ^ 0xcbf2_9ce4_8422_2325;
        for b in service.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = SplitMix64::seed_from_u64(h.wrapping_add(retry as u64));
        let exp = self
            .base_backoff_ns
            .saturating_mul(1u64 << (retry - 1).min(20));
        let jitter = rng.next_u64() % self.base_backoff_ns;
        let delay = exp.saturating_add(jitter);
        if self.max_backoff_ns == 0 {
            delay
        } else {
            delay.min(self.max_backoff_ns)
        }
    }

    /// The full deterministic schedule for `service`: one delay per
    /// possible retry (`max_attempts - 1` entries).
    pub fn backoff_schedule(&self, service: &str) -> Vec<u64> {
        (1..self.max_attempts.max(1))
            .map(|r| self.backoff_ns(service, r))
            .collect()
    }
}

/// Per-service override slots inside a [`FaultPolicy`].
#[derive(Debug, Clone, Default)]
struct ServiceOverride {
    on_failure: Option<FailurePolicy>,
    retry: Option<RetryPolicy>,
}

/// The orchestrator-level fault-tolerance configuration: a default
/// disposition and retry policy, plus per-service overrides keyed by
/// service name.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy {
    /// Default disposition for every step without an override.
    pub on_failure: FailurePolicy,
    /// Default retry policy for every step without an override.
    pub retry: RetryPolicy,
    per_service: HashMap<String, ServiceOverride>,
}

impl FaultPolicy {
    /// The pre-fault-tolerance behaviour: abort on first failure (but roll
    /// the failed call back). This is the default.
    pub fn abort() -> Self {
        FaultPolicy::default()
    }

    /// Retry every failing step under `retry`, aborting only when the
    /// final attempt fails.
    pub fn retrying(retry: RetryPolicy) -> Self {
        FaultPolicy {
            on_failure: FailurePolicy::Retry,
            retry,
            per_service: HashMap::new(),
        }
    }

    /// Skip every failing step after rolling it back.
    pub fn skipping() -> Self {
        FaultPolicy {
            on_failure: FailurePolicy::Skip,
            ..FaultPolicy::default()
        }
    }

    /// Override the disposition for one service.
    pub fn override_failure(
        mut self,
        service: impl Into<String>,
        policy: FailurePolicy,
    ) -> Self {
        self.per_service
            .entry(service.into())
            .or_default()
            .on_failure = Some(policy);
        self
    }

    /// Override the retry policy for one service.
    pub fn override_retry(mut self, service: impl Into<String>, retry: RetryPolicy) -> Self {
        self.per_service.entry(service.into()).or_default().retry = Some(retry);
        self
    }

    /// Effective disposition for `service`.
    pub fn failure_for(&self, service: &str) -> FailurePolicy {
        self.per_service
            .get(service)
            .and_then(|o| o.on_failure)
            .unwrap_or(self.on_failure)
    }

    /// Effective retry policy for `service`.
    pub fn retry_for(&self, service: &str) -> &RetryPolicy {
        self.per_service
            .get(service)
            .and_then(|o| o.retry.as_ref())
            .unwrap_or(&self.retry)
    }

    /// Total attempts a call to `service` gets under this policy: its retry
    /// budget when its disposition is [`FailurePolicy::Retry`], otherwise a
    /// single attempt.
    pub fn max_attempts_for(&self, service: &str) -> u32 {
        match self.failure_for(service) {
            FailurePolicy::Retry => self.retry_for(service).max_attempts.max(1),
            FailurePolicy::Abort | FailurePolicy::Skip => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 1_000,
            max_backoff_ns: 0,
            backoff_seed: 7,
        };
        let a = p.backoff_schedule("Normaliser");
        let b = p.backoff_schedule("Normaliser");
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // each delay is exponential base + jitter < base
        assert!((1_000..2_000).contains(&a[0]), "{a:?}");
        assert!((2_000..3_000).contains(&a[1]), "{a:?}");
        assert!((4_000..5_000).contains(&a[2]), "{a:?}");
        // different services draw different jitter
        let other = p.backoff_schedule("Translator");
        assert_ne!(a, other);
    }

    #[test]
    fn zero_base_means_no_waiting() {
        let p = RetryPolicy::with_max_attempts(5);
        assert_eq!(p.backoff_schedule("S"), vec![0, 0, 0, 0]);
    }

    #[test]
    fn backoff_respects_cap() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_ns: 1_000,
            max_backoff_ns: 2_500,
            backoff_seed: 1,
        };
        for d in p.backoff_schedule("S") {
            assert!(d <= 2_500, "{d}");
        }
    }

    #[test]
    fn overrides_take_precedence() {
        let fp = FaultPolicy::retrying(RetryPolicy::with_max_attempts(3))
            .override_failure("Fragile", FailurePolicy::Skip)
            .override_retry("Stubborn", RetryPolicy::with_max_attempts(7));
        assert_eq!(fp.failure_for("Other"), FailurePolicy::Retry);
        assert_eq!(fp.max_attempts_for("Other"), 3);
        assert_eq!(fp.failure_for("Fragile"), FailurePolicy::Skip);
        // Skip disposition means a single attempt even with a retry budget
        assert_eq!(fp.max_attempts_for("Fragile"), 1);
        assert_eq!(fp.max_attempts_for("Stubborn"), 7);
    }

    #[test]
    fn failure_policy_parses_cli_names() {
        assert_eq!(FailurePolicy::parse("abort"), Some(FailurePolicy::Abort));
        assert_eq!(FailurePolicy::parse("Skip"), Some(FailurePolicy::Skip));
        assert_eq!(FailurePolicy::parse("RETRY"), Some(FailurePolicy::Retry));
        assert_eq!(FailurePolicy::parse("explode"), None);
    }
}
