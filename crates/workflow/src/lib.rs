//! # weblab-workflow — black-box services and workflow executions
//!
//! The execution substrate of the WebLab PROV reproduction: sequential
//! service workflows over a single growing XML document (Definition 2 of
//! the paper), with the append-only contract enforced and every call
//! recorded into the execution trace the provenance engine consumes.
//!
//! * [`Service`] / [`CallContext`] — the black-box service abstraction;
//!   services append fragments and register the resources they create,
//!   which stamps the `(service, timestamp)` labels of Definition 3.
//! * [`Orchestrator`] / [`Workflow`] — sequential execution with strictly
//!   increasing call instants, trace recording, and an optional *eager*
//!   mode that computes provenance during execution (the intrusive
//!   baseline the paper argues against).
//! * [`FaultPolicy`] / [`RetryPolicy`] / [`FailurePolicy`] — fault
//!   tolerance: deterministic retry/backoff schedules, per-attempt rollback
//!   to the pre-call state mark, and abort/skip/retry dispositions, with
//!   every attempt logged in [`ExecutionOutcome::attempts`].
//! * [`services`] — media-mining analogues (Normaliser, LanguageExtractor,
//!   Translator, Tokeniser, EntityExtractor, Summariser, SentimentAnalyser,
//!   KeywordExtractor, Indexer) with their mapping rules
//!   ([`services::default_rules`]).
//! * [`generator`] — synthetic corpora and parametric scaling workloads.
//!
//! ```
//! use weblab_workflow::{Orchestrator, Workflow};
//! use weblab_workflow::services::{self, Normaliser, LanguageExtractor, Translator};
//! use weblab_workflow::generator::generate_corpus;
//! use weblab_prov::{infer_provenance, EngineOptions};
//!
//! let mut doc = generate_corpus(42, 2, 30);
//! let wf = Workflow::new()
//!     .then(Normaliser)
//!     .then(LanguageExtractor)
//!     .then(Translator::default());
//! let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
//! let graph = infer_provenance(
//!     &doc, &outcome.trace, &services::default_rules(), &EngineOptions::default());
//! assert!(graph.is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
mod orchestrator;
mod policy;
mod replay;
pub mod rng;
mod service;
pub mod services;
pub mod text;

pub use orchestrator::{
    next_time, AttemptRecord, AttemptStatus, CallHook, ExecutionOutcome, Orchestrator,
    Workflow, WorkflowStep,
};
pub use policy::{FailurePolicy, FaultPolicy, RetryPolicy};
pub use replay::{FragmentGrade, ProofMode, ReplayOutcome};
pub use service::{CallContext, Service, WorkflowError};
