//! Synthetic corpora and workloads for the benchmark harness.
//!
//! The paper's platform "features many workflow executions of different
//! sizes" but publishes none; this module generates the synthetic
//! equivalents that the X1–X7 experiments sweep over:
//!
//! * [`generate_corpus`] — initial documents with a configurable number of
//!   `NativeContent` resources and text sizes (drives the media-mining
//!   pipeline);
//! * [`SyntheticService`] / [`synthetic_workload`] — a parametric service
//!   that appends `Item` resources referencing earlier items, giving
//!   precise control over workflow length, fan-out and join selectivity.

use std::sync::Mutex;

use crate::rng::SplitMix64;
use weblab_prov::RuleSet;
use weblab_xml::{CallLabel, Document};

use crate::orchestrator::Workflow;
use crate::service::{CallContext, Service, WorkflowError};

const EN_WORDS: &[&str] = &[
    "the", "data", "service", "workflow", "document", "analysis", "text", "language", "result",
    "media", "unit", "good", "war", "peace", "Paris", "Geneva", "report", "source", "archive",
    "mining",
];

const FR_WORDS: &[&str] = &[
    "le", "la", "les", "texte", "dans", "langue", "pour", "avec", "document", "analyse",
    "service", "donnees", "resultat", "guerre", "paix", "Paris", "est", "sont", "un", "une",
];

/// Generate pseudo-natural text of `words` words in the given language.
pub fn generate_text(rng: &mut SplitMix64, words: usize, lang: &str) -> String {
    let pool = if lang == "fr" { FR_WORDS } else { EN_WORDS };
    let mut out = Vec::with_capacity(words);
    for i in 0..words {
        out.push(pool[rng.gen_range(0..pool.len())].to_string());
        if i % 9 == 8 {
            let last = out.last_mut().unwrap();
            last.push('.');
        }
    }
    out.join(" ")
}

/// Build an initial corpus document: a `Resource` root with `MetaData` and
/// `n_native` identified `NativeContent` resources labelled `(Source, 0)`.
pub fn generate_corpus(seed: u64, n_native: usize, words_each: usize) -> Document {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut d = Document::new("Resource");
    let root = d.root();
    d.register_resource(root, "weblab://doc/0", None).unwrap();
    let meta = d.append_element(root, "MetaData").unwrap();
    d.set_attr(meta, "acquired", "2013-03-18").unwrap();
    for i in 0..n_native {
        let lang = if rng.gen_bool(0.5) { "fr" } else { "en" };
        let n = d.append_element(root, "NativeContent").unwrap();
        d.set_attr(n, "mime", "text/plain").unwrap();
        d.register_resource(
            n,
            format!("weblab://src/{i}"),
            Some(CallLabel::new("Source", 0)),
        )
        .unwrap();
        d.append_text(n, generate_text(&mut rng, words_each, lang))
            .unwrap();
    }
    d
}

/// Build a mixed-media corpus: text, image and audio `NativeContent`
/// resources (the platform mines "text, image, audio and video"). Image
/// and audio payloads carry embedded captions/transcripts that the OCR and
/// speech services "extract".
pub fn generate_mixed_corpus(seed: u64, n_each: usize, words_each: usize) -> Document {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut d = Document::new("Resource");
    let root = d.root();
    d.register_resource(root, "weblab://doc/mixed", None).unwrap();
    let mut i = 0;
    for mime in ["text/plain", "image/png", "audio/ogg"] {
        for _ in 0..n_each {
            let lang = if rng.gen_bool(0.5) { "fr" } else { "en" };
            let n = d.append_element(root, "NativeContent").unwrap();
            d.set_attr(n, "mime", mime).unwrap();
            d.register_resource(
                n,
                format!("weblab://src/{i}"),
                Some(CallLabel::new("Source", 0)),
            )
            .unwrap();
            d.append_text(n, generate_text(&mut rng, words_each, lang))
                .unwrap();
            i += 1;
        }
    }
    d
}

/// A parametric black-box service for scaling experiments: each call
/// appends `fanout` `Item` resources under the root; each item's `@ref`
/// points at a uniformly random item from an *earlier* call (when one
/// exists), so the canonical rule
/// `//Item[$x := @key] => //Item[@ref = $x]` yields exactly one provenance
/// link per item appended after the first call. (Same-call references are
/// deliberately avoided: Definition 9 only links a call's outputs to
/// resources of its *input* state.)
pub struct SyntheticService {
    rng: Mutex<SplitMix64>,
    fanout: usize,
    payload_words: usize,
}

impl SyntheticService {
    /// Create a service with the given per-call fan-out and payload size.
    pub fn new(seed: u64, fanout: usize, payload_words: usize) -> Self {
        SyntheticService {
            rng: Mutex::new(SplitMix64::seed_from_u64(seed)),
            fanout,
            payload_words,
        }
    }

    /// The mapping rule matching this service's output shape.
    pub fn rule() -> &'static str {
        "//Item[$x := @key] => //Item[@ref = $x]"
    }
}

impl Service for SyntheticService {
    fn name(&self) -> &str {
        "Synthetic"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let mut rng = self.rng.lock().expect("rng poisoned");
        let v = doc.view();
        let root = doc.root();
        let existing: Vec<String> = v
            .descendants(root)
            .filter(|&n| v.name(n) == Some("Item"))
            .filter_map(|n| v.attr(n, "key").map(|s| s.to_string()))
            .collect();
        for _ in 0..self.fanout {
            let item = doc.append_element(root, "Item")?;
            let uri = ctx.register(doc, item)?;
            doc.set_attr(item, "key", uri)?;
            if !existing.is_empty() {
                let r = existing[rng.gen_range(0..existing.len())].clone();
                doc.set_attr(item, "ref", r)?;
            }
            if self.payload_words > 0 {
                let words = generate_text(&mut rng, self.payload_words, "en");
                doc.append_text(item, words)?;
            }
        }
        Ok(())
    }
}

/// Build an `n_calls`-step synthetic workflow plus its rule set and an
/// empty initial document — the standard scaling workload of experiments
/// X1–X3.
pub fn synthetic_workload(
    seed: u64,
    n_calls: usize,
    fanout: usize,
    payload_words: usize,
) -> (Document, Workflow, RuleSet) {
    let mut wf = Workflow::new();
    for i in 0..n_calls {
        wf = wf.then(SyntheticService::new(
            seed.wrapping_add(i as u64),
            fanout,
            payload_words,
        ));
    }
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Synthetic", SyntheticService::rule())
        .unwrap();
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/synthetic", None)
        .unwrap();
    (doc, wf, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::Orchestrator;
    use weblab_prov::{infer_provenance, EngineOptions, Strategy};

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = generate_corpus(42, 3, 20);
        let b = generate_corpus(42, 3, 20);
        assert_eq!(
            weblab_xml::to_xml_string(&a.view()),
            weblab_xml::to_xml_string(&b.view())
        );
        assert_eq!(a.resource_nodes().len(), 4); // root + 3 native
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(1, 2, 30);
        let b = generate_corpus(2, 2, 30);
        assert_ne!(
            weblab_xml::to_xml_string(&a.view()),
            weblab_xml::to_xml_string(&b.view())
        );
    }

    #[test]
    fn mixed_media_pipeline_covers_all_modalities() {
        use crate::services::{Normaliser, OcrExtractor, SpeechTranscriber};
        let mut doc = generate_mixed_corpus(5, 2, 20);
        let wf = crate::Workflow::new()
            .then(Normaliser)
            .then(OcrExtractor)
            .then(SpeechTranscriber);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        assert_eq!(outcome.trace.len(), 3);
        // two units per modality, each produced by the right service
        for call in &outcome.trace.calls {
            assert_eq!(call.produced.len(), 4, "{}", call.service); // 2 units + 2 contents
        }
        // provenance links every unit to its own native content
        let g = infer_provenance(
            &doc,
            &outcome.trace,
            &crate::services::default_rules(),
            &EngineOptions::default(),
        );
        let unit_links = g
            .links
            .iter()
            .filter(|l| l.to_uri.starts_with("weblab://src/"))
            .count();
        assert_eq!(unit_links, 6);
        assert!(g.is_acyclic());
    }

    #[test]
    fn synthetic_workload_produces_expected_links() {
        let (mut doc, wf, rules) = synthetic_workload(7, 5, 3, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        assert_eq!(outcome.trace.len(), 5);
        let g = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        // every item after the first call references an earlier-call item
        assert_eq!(g.links.len(), (5 - 1) * 3);
        assert!(g.is_acyclic());
    }

    #[test]
    fn synthetic_strategies_agree() {
        let (mut doc, wf, rules) = synthetic_workload(11, 6, 2, 5);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let base = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        for strategy in [
            Strategy::StateReplay { materialize: false },
            Strategy::GroupedSinglePass,
        ] {
            let g = infer_provenance(
                &doc,
                &outcome.trace,
                &rules,
                &EngineOptions {
                    strategy,
                    ..Default::default()
                },
            );
            assert_eq!(g.links, base.links);
        }
    }
}
