//! Minimal deterministic PRNG for synthetic-workload generation.
//!
//! The build environment has no registry access, so the `rand` crate is
//! unavailable; corpus generation only needs a seedable, reproducible
//! uniform source, which SplitMix64 (Steele, Lea & Flood 2014) provides in
//! a dozen lines. The exact output stream differs from `StdRng`, but all
//! consumers only rely on determinism per seed, not on a specific stream.

use std::ops::Range;

/// SplitMix64 generator: one `u64` of state, full 2^64 period.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `range`; panics on an empty range.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SplitMix64::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
