//! Tiny deterministic text-processing helpers behind the media-mining
//! service analogues.
//!
//! The originals behind the paper's platform are commercial NLP components;
//! these replacements are deliberately simple (stop-word language
//! detection, dictionary translation, lexicon sentiment) but produce the
//! same *document shapes*, which is all the black-box provenance model ever
//! observes.

/// Common French function words used for language detection and as the
/// toy translation dictionary's domain.
pub const FRENCH_WORDS: &[(&str, &str)] = &[
    ("le", "the"),
    ("la", "the"),
    ("les", "the"),
    ("un", "a"),
    ("une", "a"),
    ("et", "and"),
    ("est", "is"),
    ("sont", "are"),
    ("dans", "in"),
    ("pour", "for"),
    ("avec", "with"),
    ("texte", "text"),
    ("document", "document"),
    ("analyse", "analysis"),
    ("langue", "language"),
    ("service", "service"),
    ("donnees", "data"),
    ("resultat", "result"),
    ("guerre", "war"),
    ("paix", "peace"),
];

/// English function words for detection.
pub const ENGLISH_MARKERS: &[&str] = &[
    "the", "a", "and", "is", "are", "in", "for", "with", "of", "to",
];

/// Detect `"fr"` or `"en"` by counting marker words; ties resolve to `"en"`.
pub fn detect_language(text: &str) -> &'static str {
    let mut fr = 0usize;
    let mut en = 0usize;
    for w in text.split_whitespace() {
        let w = w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
        if FRENCH_WORDS.iter().any(|(f, _)| *f == w) {
            fr += 1;
        }
        if ENGLISH_MARKERS.contains(&w.as_str()) {
            en += 1;
        }
    }
    if fr > en {
        "fr"
    } else {
        "en"
    }
}

/// Word-by-word dictionary translation FR → EN; unknown words pass through
/// with a `*` marker so translations are visibly distinct from originals.
pub fn translate_fr_en(text: &str) -> String {
    text.split_whitespace()
        .map(|w| {
            let key = w.to_lowercase();
            FRENCH_WORDS
                .iter()
                .find(|(f, _)| *f == key)
                .map(|(_, e)| (*e).to_string())
                .unwrap_or_else(|| format!("{w}*"))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Normalise raw content: collapse whitespace and strip control
/// characters, preserving case (capitalisation carries signal for the
/// downstream entity extractor).
pub fn normalise(text: &str) -> String {
    text.split_whitespace()
        .map(|w| w.trim_matches(char::is_control))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Naive named-entity extraction: maximal runs of capitalised words,
/// excluding sentence-initial singletons that are common words.
pub fn extract_entities(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut run: Vec<&str> = Vec::new();
    for w in text.split_whitespace() {
        let w = w.trim_matches(|c: char| !c.is_alphanumeric());
        let capitalised = w
            .chars()
            .next()
            .map(|c| c.is_uppercase())
            .unwrap_or(false);
        if capitalised {
            run.push(w);
        } else {
            if !run.is_empty() && !run.is_empty() {
                out.push(run.join(" "));
            }
            run.clear();
        }
    }
    if !run.is_empty() {
        out.push(run.join(" "));
    }
    out.dedup();
    out
}

/// First sentence (up to the first `.`/`!`/`?`), capped at `max_words`.
pub fn summarise(text: &str, max_words: usize) -> String {
    let first = text
        .split(['.', '!', '?'])
        .next()
        .unwrap_or(text);
    first
        .split_whitespace()
        .take(max_words)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Lexicon sentiment in `[-1, 1]` (per-word average).
pub fn sentiment(text: &str) -> f64 {
    const POSITIVE: &[&str] = &["good", "great", "peace", "paix", "excellent", "success"];
    const NEGATIVE: &[&str] = &["bad", "war", "guerre", "failure", "terrible", "crisis"];
    let mut score = 0i64;
    let mut count = 0i64;
    for w in text.split_whitespace() {
        let w = w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
        if POSITIVE.contains(&w.as_str()) {
            score += 1;
        } else if NEGATIVE.contains(&w.as_str()) {
            score -= 1;
        }
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        score as f64 / count as f64
    }
}

/// Top-`k` most frequent words of length ≥ 4 (deterministic order: by
/// frequency, then alphabetically).
pub fn keywords(text: &str, k: usize) -> Vec<String> {
    use std::collections::HashMap;
    let mut freq: HashMap<String, usize> = HashMap::new();
    for w in text.split_whitespace() {
        let w = w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
        if w.len() >= 4 {
            *freq.entry(w).or_default() += 1;
        }
    }
    let mut pairs: Vec<(String, usize)> = freq.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.into_iter().take(k).map(|(w, _)| w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_detection() {
        assert_eq!(detect_language("le texte est dans la langue"), "fr");
        assert_eq!(detect_language("the text is in the language"), "en");
        assert_eq!(detect_language(""), "en");
    }

    #[test]
    fn translation_marks_unknown_words() {
        assert_eq!(translate_fr_en("le texte xyz"), "the text xyz*");
    }

    #[test]
    fn normalisation_is_idempotent() {
        let once = normalise("  Some\tTEXT  here ");
        assert_eq!(once, "Some TEXT here");
        assert_eq!(normalise(&once), once);
    }

    #[test]
    fn entity_runs_are_maximal() {
        let e = extract_entities("talks with Jean Dupont in Paris about data");
        assert_eq!(e, vec!["Jean Dupont", "Paris"]);
    }

    #[test]
    fn summary_stops_at_sentence_end() {
        assert_eq!(summarise("First part. Second part.", 10), "First part");
        assert_eq!(summarise("one two three four", 2), "one two");
    }

    #[test]
    fn sentiment_is_bounded() {
        assert!(sentiment("war war war") < 0.0);
        assert!(sentiment("peace is good") > 0.0);
        assert_eq!(sentiment(""), 0.0);
    }

    #[test]
    fn keyword_extraction_orders_by_frequency() {
        let k = keywords("data data analysis pipeline data analysis", 2);
        assert_eq!(k, vec!["data", "analysis"]);
    }
}
