//! Workflow orchestration (Definition 2) with trace recording.
//!
//! The orchestrator drives a control flow `c₁ … cₙ` over a single document,
//! producing the data flow `d₀ ⊑ d₁ ⊑ … ⊑ dₙ` and the execution trace the
//! provenance engine consumes. It assigns strictly increasing call
//! instants, validates the append-only contract after every call, and
//! optionally computes provenance links *during* execution (the intrusive
//! "eager" mode the paper argues against — kept as the X3 baseline).
//!
//! ## Parallel executions (Section 8 extension)
//!
//! The paper sketches the extension to "more complex execution patterns
//! including nesting and parallel service executions … by adding
//! additional meta-data for identifying different control flow channels".
//! [`Workflow::then_parallel`] adds a block of branches that logically run
//! concurrently: each branch executes on a *fork* of the document taken at
//! the block entry (so sibling branches cannot see each other's output,
//! exactly as concurrent processes could not), and its new fragments are
//! then merged back into the main arena, call by call, preserving resource
//! metadata. Every call record carries its *channel* (a path of branch
//! indices); the provenance engine uses channel compatibility to restrict
//! which resources a parallel call may depend on.

use std::fmt;
use std::sync::Arc;

use weblab_obs::{Counter, Gauge, Histogram, Span};
use weblab_prov::{
    document_state_provenance, EngineOptions, ExecutionTrace, ProvLink, RuleSet,
};
use weblab_xml::{Document, NodeId, Timestamp};

use crate::policy::{FailurePolicy, FaultPolicy};
use crate::service::{CallContext, Service, WorkflowError};

/// Service calls completed successfully (recorded in the trace).
static WORKFLOW_CALLS: Counter = Counter::new("workflow.calls");
/// Service-call attempts that failed (service error or append-only
/// violation); every failed attempt ticks once, retries included.
static WORKFLOW_ERRORS: Counter = Counter::new("workflow.errors");
/// Failed attempts whose document effects were rolled back to the pre-call
/// mark.
static WORKFLOW_ROLLBACKS: Counter = Counter::new("workflow.rollbacks");
/// Retries performed (attempt n+1 started after attempt n failed).
static WORKFLOW_RETRIES: Counter = Counter::new("workflow.retries");
/// Steps abandoned under [`FailurePolicy::Skip`] after their final attempt
/// failed.
static WORKFLOW_SKIPS: Counter = Counter::new("workflow.skips");
/// Scheduled backoff before retries, in nanoseconds.
static BACKOFF_NS: Histogram = Histogram::new("workflow.backoff_ns");
/// Nodes appended per call — the size of each call's new fragment.
static FRAGMENT_NODES: Histogram = Histogram::new("workflow.fragment_nodes");
/// Service calls currently executing. Balanced by the span's drop on every
/// exit path, so it must read 0 after any execution — including a failed
/// one (the failure-injection metrics test pins this).
static CALLS_INFLIGHT: Gauge = Gauge::new("workflow.calls.inflight");

/// One step of a workflow: a service call or a parallel block.
pub enum WorkflowStep {
    /// A single black-box service call.
    Service(Box<dyn Service>),
    /// Branches that logically execute in parallel on forks of the
    /// document taken at block entry, merged back afterwards.
    Parallel(Vec<Workflow>),
}

/// A workflow: an ordered list of steps (Definition 2, plus the Section 8
/// parallel extension).
#[derive(Default)]
pub struct Workflow {
    steps: Vec<WorkflowStep>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Workflow::default()
    }

    /// Append a service step.
    pub fn then(mut self, service: impl Service + 'static) -> Self {
        self.steps.push(WorkflowStep::Service(Box::new(service)));
        self
    }

    /// Append a boxed service step.
    pub fn then_boxed(mut self, service: Box<dyn Service>) -> Self {
        self.steps.push(WorkflowStep::Service(service));
        self
    }

    /// Append a parallel block of branches.
    pub fn then_parallel(mut self, branches: Vec<Workflow>) -> Self {
        self.steps.push(WorkflowStep::Parallel(branches));
        self
    }

    /// Number of steps (a parallel block counts as one step).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the workflow has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps, for same-crate engines (the replay planner walks them
    /// alongside a prior trace).
    pub(crate) fn steps(&self) -> &[WorkflowStep] {
        &self.steps
    }

    /// Service names in control-flow order; parallel blocks are rendered
    /// as `[branch0 | branch1 | …]`.
    pub fn step_names(&self) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| match s {
                WorkflowStep::Service(svc) => svc.name().to_string(),
                WorkflowStep::Parallel(branches) => {
                    let inner: Vec<String> = branches
                        .iter()
                        .map(|b| b.step_names().join(","))
                        .collect();
                    format!("[{}]", inner.join(" | "))
                }
            })
            .collect()
    }
}

/// How one attempt at a service call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptStatus {
    /// The attempt completed; its fragment is part of the document and the
    /// call is recorded in the trace.
    Succeeded,
    /// The attempt failed; its document effects were rolled back to the
    /// pre-call mark.
    RolledBack {
        /// The failure, rendered.
        error: String,
    },
    /// All attempts failed and the step was abandoned under
    /// [`FailurePolicy::Skip`], leaving a gap at the call's instant.
    Skipped,
}

/// Record of one attempt at a service call — including rolled-back ones,
/// which never appear in the [`ExecutionTrace`] itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Service name.
    pub service: String,
    /// The call instant the attempt ran at (retries reuse the instant of
    /// the attempt they replace).
    pub time: Timestamp,
    /// 1-based attempt number within the step.
    pub attempt: u32,
    /// Control-flow channel of the step.
    pub channel: String,
    /// How the attempt ended.
    pub status: AttemptStatus,
    /// Backoff scheduled before this attempt started, in nanoseconds
    /// (0 for first attempts).
    pub backoff_ns: u64,
}

/// Result of an execution: the trace plus, in eager mode, the provenance
/// links computed along the way.
#[derive(Debug, Default)]
pub struct ExecutionOutcome {
    /// Trace of the calls (`out(c_i)`, state marks, labels).
    pub trace: ExecutionTrace,
    /// Links computed during execution (eager mode only).
    pub eager_links: Vec<ProvLink>,
    /// Every attempt made, in execution order — successful calls, failed
    /// and rolled-back attempts, and skip markers alike. On a fault-free
    /// run this is one `Succeeded` entry per trace call.
    pub attempts: Vec<AttemptRecord>,
}

/// Observer invoked after every *committed* service call, with the
/// document state at the call's completion, the trace so far, and the
/// index of the new [`weblab_prov::CallRecord`] within it.
///
/// Commit semantics: the hook never fires for rolled-back attempts (their
/// document effects are gone when the retry or abort happens) nor for
/// skipped steps (nothing was recorded), and calls made inside parallel
/// branches fire only once their fork has been merged back into the main
/// arena — with the merged record, whose node ids are main-arena ids. A
/// provenance maintainer subscribed here therefore only ever sees durable
/// state.
pub type CallHook = Arc<dyn Fn(&Document, &ExecutionTrace, usize) + Send + Sync>;

/// The workflow execution engine.
#[derive(Clone, Default)]
pub struct Orchestrator {
    /// Compute provenance during execution using these rules (the
    /// intrusive mode; `None` = non-invasive, provenance is inferred
    /// posthoc from the trace).
    pub eager_rules: Option<RuleSet>,
    /// Fault-tolerance configuration (default: abort on first failure,
    /// after rolling the failed call back).
    pub fault: FaultPolicy,
    /// Call-completion observers (e.g. a live provenance maintainer plus a
    /// serving layer's index updater), fired in subscription order after
    /// every committed call.
    pub call_hooks: Vec<CallHook>,
}

impl fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Orchestrator")
            .field("eager_rules", &self.eager_rules)
            .field("fault", &self.fault)
            .field("call_hooks", &self.call_hooks.len())
            .finish()
    }
}

impl Orchestrator {
    /// A non-invasive orchestrator (provenance inferred after the fact).
    pub fn new() -> Self {
        Orchestrator::default()
    }

    /// An orchestrator that evaluates mapping rules after every call — the
    /// paper's rejected-but-measured eager alternative.
    pub fn eager(rules: RuleSet) -> Self {
        Orchestrator {
            eager_rules: Some(rules),
            ..Orchestrator::default()
        }
    }

    /// Replace the fault-tolerance policy (builder style).
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Subscribe a call-completion observer (builder style). See
    /// [`CallHook`] for the commit semantics. Hooks *fan in*: subscribing
    /// several observers is supported, and each committed call notifies all
    /// of them in subscription order.
    pub fn with_call_hook(mut self, hook: CallHook) -> Self {
        self.call_hooks.push(hook);
        self
    }

    /// Subscribe a call-completion observer on an existing orchestrator
    /// (the non-builder form of [`Orchestrator::with_call_hook`]).
    pub fn add_call_hook(&mut self, hook: CallHook) {
        self.call_hooks.push(hook);
    }

    /// Execute `workflow` over `doc`, starting call instants after any
    /// label already present in the document.
    pub fn execute(
        &self,
        workflow: &Workflow,
        doc: &mut Document,
    ) -> Result<ExecutionOutcome, WorkflowError> {
        let start = next_time(doc);
        self.execute_starting_at(workflow, doc, start)
    }

    /// Execute with an explicit first call instant (used by the platform
    /// to keep instants strictly increasing across multiple `execute`
    /// invocations on the same execution, even when earlier calls produced
    /// no labelled resources).
    pub fn execute_starting_at(
        &self,
        workflow: &Workflow,
        doc: &mut Document,
        start: Timestamp,
    ) -> Result<ExecutionOutcome, WorkflowError> {
        self.execute_resumable(workflow, doc, start, 0, &mut |_, _, _, _| {})
    }

    /// Execute with checkpoint/resume support: skip the first `completed`
    /// top-level steps (they ran before a crash and their effects are
    /// already in `doc`), and invoke `checkpoint` after every top-level
    /// step that completes, with the number of steps now completed, the
    /// document, the outcome so far, and the next call instant. The
    /// platform's persist layer plugs in here to write durable checkpoints
    /// a crashed execution can be reloaded from.
    ///
    /// A parallel block counts as one step: it either completes as a whole
    /// or is re-run as a whole on resume.
    pub fn execute_resumable<F>(
        &self,
        workflow: &Workflow,
        doc: &mut Document,
        start: Timestamp,
        completed: usize,
        checkpoint: &mut F,
    ) -> Result<ExecutionOutcome, WorkflowError>
    where
        F: FnMut(usize, &Document, &ExecutionOutcome, Timestamp),
    {
        let mut outcome = ExecutionOutcome::default();
        let mut time = start;
        for (i, step) in workflow.steps.iter().enumerate().skip(completed) {
            self.exec_steps(
                std::slice::from_ref(step),
                doc,
                &mut time,
                "",
                &mut outcome,
                true,
            )?;
            checkpoint(i + 1, doc, &outcome, time);
        }
        outcome.eager_links.sort();
        outcome.eager_links.dedup();
        Ok(outcome)
    }

    /// `notify` gates the call hook: true on the main document, false
    /// inside branch forks (a fork's calls only become durable — and get
    /// main-arena node ids — when the fork is merged, at which point the
    /// caller fires the hook per merged record).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_steps(
        &self,
        steps: &[WorkflowStep],
        doc: &mut Document,
        time: &mut Timestamp,
        channel: &str,
        outcome: &mut ExecutionOutcome,
        notify: bool,
    ) -> Result<(), WorkflowError> {
        for step in steps {
            match step {
                WorkflowStep::Service(service) => {
                    self.exec_service(service.as_ref(), doc, time, channel, outcome, notify)?;
                }
                WorkflowStep::Parallel(branches) => {
                    let fork_mark = doc.mark();
                    for (bi, branch) in branches.iter().enumerate() {
                        let child_channel = if channel.is_empty() {
                            bi.to_string()
                        } else {
                            format!("{channel}.{bi}")
                        };
                        // a fork of the document at block entry: the branch
                        // cannot observe sibling output
                        let mut fork = doc.materialize_state(fork_mark);
                        let mut branch_outcome = ExecutionOutcome::default();
                        self.exec_steps(
                            &branch.steps,
                            &mut fork,
                            time,
                            &child_channel,
                            &mut branch_outcome,
                            false,
                        )?;
                        let merged_from = outcome.trace.calls.len();
                        merge_branch(doc, &fork, fork_mark, branch_outcome, outcome)?;
                        if notify {
                            for idx in merged_from..outcome.trace.calls.len() {
                                for hook in &self.call_hooks {
                                    hook(doc, &outcome.trace, idx);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Run one service step under the fault policy: attempt the call up to
    /// its attempt budget, rolling the document (and thereby the timestamp
    /// counter — retries reuse the same instant) back to the pre-call mark
    /// after every failure, so no failed attempt can leak nodes or
    /// half-registered resources into the containment chain.
    fn exec_service(
        &self,
        service: &dyn Service,
        doc: &mut Document,
        time: &mut Timestamp,
        channel: &str,
        outcome: &mut ExecutionOutcome,
        notify: bool,
    ) -> Result<(), WorkflowError> {
        let name = service.name();
        let disposition = self.fault.failure_for(name);
        let retry = self.fault.retry_for(name);
        let max_attempts = self.fault.max_attempts_for(name);
        let mut attempt = 1u32;
        loop {
            let backoff_ns = if attempt > 1 {
                retry.backoff_ns(name, attempt - 1)
            } else {
                0
            };
            if backoff_ns > 0 {
                BACKOFF_NS.record(backoff_ns);
                std::thread::sleep(std::time::Duration::from_nanos(backoff_ns));
            }
            if weblab_obs::enabled() {
                weblab_obs::counter(&format!("workflow.service.{name}.attempts")).inc();
            }
            let rollback_mark = doc.mark();
            match self.attempt_service(service, doc, *time, channel, outcome) {
                Ok(()) => {
                    outcome.attempts.push(AttemptRecord {
                        service: name.to_string(),
                        time: *time,
                        attempt,
                        channel: channel.to_string(),
                        status: AttemptStatus::Succeeded,
                        backoff_ns,
                    });
                    // the attempt is committed: its fragment is durable and
                    // its trace record final — fire the call hook (but not
                    // for fork-local records, which are only durable once
                    // merged)
                    if notify {
                        for hook in &self.call_hooks {
                            hook(doc, &outcome.trace, outcome.trace.calls.len() - 1);
                        }
                    }
                    *time += 1;
                    return Ok(());
                }
                Err(e) => {
                    WORKFLOW_ERRORS.inc();
                    doc.truncate_to_mark(rollback_mark)
                        .expect("rollback mark was just taken on this document");
                    WORKFLOW_ROLLBACKS.inc();
                    outcome.attempts.push(AttemptRecord {
                        service: name.to_string(),
                        time: *time,
                        attempt,
                        channel: channel.to_string(),
                        status: AttemptStatus::RolledBack {
                            error: e.to_string(),
                        },
                        backoff_ns,
                    });
                    if attempt < max_attempts {
                        WORKFLOW_RETRIES.inc();
                        attempt += 1;
                        continue;
                    }
                    return match disposition {
                        FailurePolicy::Skip => {
                            WORKFLOW_SKIPS.inc();
                            outcome.attempts.push(AttemptRecord {
                                service: name.to_string(),
                                time: *time,
                                attempt,
                                channel: channel.to_string(),
                                status: AttemptStatus::Skipped,
                                backoff_ns: 0,
                            });
                            // reserve the failed call's instant so the gap
                            // is visible in the trace's label sequence
                            *time += 1;
                            Ok(())
                        }
                        FailurePolicy::Abort | FailurePolicy::Retry => Err(e),
                    };
                }
            }
        }
    }

    /// One attempt at a service call: run it, validate append-only
    /// containment, record the trace entry and (in eager mode) the links.
    fn attempt_service(
        &self,
        service: &dyn Service,
        doc: &mut Document,
        time: Timestamp,
        channel: &str,
        outcome: &mut ExecutionOutcome,
    ) -> Result<(), WorkflowError> {
        let input = doc.mark();
        let mut ctx = CallContext::new(service.name(), time);
        // Per-service wall-time histogram, named dynamically. The lookup
        // (format + intern) only happens while collection is enabled; the
        // span itself then balances `workflow.calls.inflight` on every exit
        // path, errors included.
        let span = weblab_obs::enabled().then(|| {
            let hist = weblab_obs::histogram(&format!(
                "workflow.service.{}.duration_ns",
                service.name()
            ));
            Span::start_with_inflight(hist, &CALLS_INFLIGHT)
        });
        let called = service.call(doc, &mut ctx);
        drop(span);
        called?;
        let output = doc.mark();
        validate_append_only(doc, input, output, service.name())?;
        WORKFLOW_CALLS.inc();
        FRAGMENT_NODES.record((output.node_count() - input.node_count()) as u64);
        outcome.trace.record_call_on_channel(
            doc,
            service.name(),
            time,
            input,
            output,
            channel,
        );
        if let Some(rules) = &self.eager_rules {
            let call = outcome.trace.calls.last().expect("just recorded");
            let produced: std::collections::HashSet<NodeId> =
                call.produced.iter().copied().collect();
            let opts = EngineOptions::default();
            let in_view = doc.view_at(input.with_resources_of(output));
            let out_view = doc.view_at(output);
            for rule in rules.rules_for(service.name()) {
                outcome.eager_links.extend(
                    document_state_provenance(rule, &in_view, &out_view, opts.join)
                        .into_iter()
                        .filter(|l| produced.contains(&l.from)),
                );
            }
        }
        Ok(())
    }
}

/// Merge a completed branch fork back into the main arena: per branch
/// call, copy its node range (ids remapped), replay its resource
/// registrations, and record a channel-tagged call in the main trace with
/// marks taken around its own merge. Eager links computed inside the fork
/// are remapped alongside.
fn merge_branch(
    main: &mut Document,
    fork: &Document,
    fork_mark: weblab_xml::StateMark,
    branch_outcome: ExecutionOutcome,
    outcome: &mut ExecutionOutcome,
) -> Result<(), WorkflowError> {
    use std::collections::HashMap;
    let mut idmap: HashMap<NodeId, NodeId> = HashMap::new();
    let fork_nodes = fork_mark.node_count();
    let map_id = |idmap: &HashMap<NodeId, NodeId>, n: NodeId| -> NodeId {
        if n.index() < fork_nodes {
            n // pre-fork nodes keep their ids (materialize preserves them)
        } else {
            *idmap.get(&n).expect("branch node merged before use")
        }
    };

    let fork_resources: Vec<NodeId> = fork.resource_nodes().to_vec();
    for call in &branch_outcome.trace.calls {
        let main_input = main.mark();
        // copy this call's node range
        for idx in call.input.node_count()..call.output.node_count() {
            let id = NodeId::from_index(idx);
            let node = fork.node(id).expect("fork node exists");
            let copy = match node.kind() {
                weblab_xml::NodeKind::Element { name } => main.create_element(name.clone()),
                weblab_xml::NodeKind::Text { value } => main.create_text(value.clone()),
            };
            for (k, v) in node.attrs() {
                if node.name().is_some() {
                    main.set_attr(copy, k.clone(), v.clone())?;
                }
            }
            if let Some(parent) = node.parent() {
                main.attach(map_id(&idmap, parent), copy)?;
            }
            idmap.insert(id, copy);
        }
        // replay this call's resource registrations (including promotions
        // of pre-fork nodes)
        for &n in &fork_resources[call.input.resource_count()..call.output.resource_count()] {
            let meta = fork.resource(n).expect("registered");
            main.register_resource(map_id(&idmap, n), meta.uri.clone(), meta.label.clone())?;
        }
        let main_output = main.mark();
        let mut record = call.clone();
        record.input = main_input;
        record.output = main_output;
        record.produced = call.produced.iter().map(|&n| map_id(&idmap, n)).collect();
        outcome.trace.calls.push(record);
    }
    for mut link in branch_outcome.eager_links {
        link.from = map_id(&idmap, link.from);
        link.to = map_id(&idmap, link.to);
        outcome.eager_links.push(link);
    }
    Ok(())
}

/// First unused call instant: one past the largest label in the document.
pub fn next_time(doc: &Document) -> Timestamp {
    doc.resource_nodes()
        .iter()
        .filter_map(|&n| doc.resource(n).and_then(|m| m.label.as_ref()))
        .map(|l| l.time)
        .max()
        .map(|t| t + 1)
        .unwrap_or(1)
}

/// The arena makes deletions impossible, but a service could still mutate
/// attributes of pre-existing nodes through `set_attr`. Verifying full
/// containment would require a snapshot; instead the orchestrator checks
/// the cheap structural half (monotone node/resource counts) and relies on
/// the arena for the rest.
fn validate_append_only(
    doc: &Document,
    input: weblab_xml::StateMark,
    output: weblab_xml::StateMark,
    service: &str,
) -> Result<(), WorkflowError> {
    if output.node_count() < input.node_count()
        || output.resource_count() < input.resource_count()
    {
        return Err(WorkflowError::AppendViolation {
            service: service.into(),
        });
    }
    let _ = doc;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, EngineOptions};

    struct AppendOne;
    impl Service for AppendOne {
        fn name(&self) -> &str {
            "AppendOne"
        }
        fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
            let root = doc.root();
            let n = doc.append_element(root, "Item")?;
            ctx.register(doc, n)?;
            Ok(())
        }
    }

    #[test]
    fn execute_records_one_call_per_step() {
        let wf = Workflow::new().then(AppendOne).then(AppendOne);
        let mut doc = Document::new("Resource");
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        assert_eq!(outcome.trace.len(), 2);
        assert_eq!(outcome.trace.calls[0].time, 1);
        assert_eq!(outcome.trace.calls[1].time, 2);
        assert_eq!(outcome.trace.calls[0].produced.len(), 1);
        assert_eq!(doc.view().children(doc.root()).len(), 2);
    }

    #[test]
    fn time_continues_after_existing_labels() {
        let mut doc = Document::new("Resource");
        let root = doc.root();
        let n = doc.append_element(root, "Old").unwrap();
        doc.register_resource(n, "old", Some(weblab_xml::CallLabel::new("X", 7)))
            .unwrap();
        assert_eq!(next_time(&doc), 8);
        let wf = Workflow::new().then(AppendOne);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        assert_eq!(outcome.trace.calls[0].time, 8);
    }

    struct LinkedAppend;
    impl Service for LinkedAppend {
        fn name(&self) -> &str {
            "LinkedAppend"
        }
        fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
            let root = doc.root();
            // reference the previous item's uri (if any) through @ref
            let prev_uri = doc
                .resource_nodes()
                .iter()
                .rev()
                .find_map(|&n| doc.view().uri(n).map(|u| u.to_string()));
            let n = doc.append_element(root, "Item")?;
            if let Some(u) = prev_uri {
                doc.set_attr(n, "ref", u)?;
            }
            ctx.register(doc, n)?;
            Ok(())
        }
    }

    #[test]
    fn eager_links_match_posthoc_inference() {
        let mut rules = RuleSet::new();
        rules
            .add_parsed("LinkedAppend", "//Item[$x := @id] => //Item[@ref = $x]")
            .unwrap();
        let wf = Workflow::new()
            .then(LinkedAppend)
            .then(LinkedAppend)
            .then(LinkedAppend);
        let mut doc = Document::new("Resource");
        let outcome = Orchestrator::eager(rules.clone())
            .execute(&wf, &mut doc)
            .unwrap();
        let posthoc = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        assert_eq!(outcome.eager_links, posthoc.links);
        assert_eq!(outcome.eager_links.len(), 2); // item2→item1, item3→item2
    }

    #[test]
    fn step_names_reflect_control_flow() {
        let wf = Workflow::new().then(AppendOne).then(LinkedAppend);
        assert_eq!(wf.step_names(), vec!["AppendOne", "LinkedAppend"]);
        assert_eq!(wf.len(), 2);
        assert!(!wf.is_empty());
    }

    /// Parallel branches run on forks, but `time` is threaded sequentially
    /// through them, so two branches can never mint the same `(s, t)` label
    /// — this pins the invariant that the merge relies on.
    #[test]
    fn parallel_branches_never_mint_colliding_labels() {
        let wf = Workflow::new()
            .then(AppendOne)
            .then_parallel(vec![
                Workflow::new().then(AppendOne).then(AppendOne),
                Workflow::new().then(AppendOne),
            ])
            .then(AppendOne);
        let mut doc = Document::new("Resource");
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &n in doc.resource_nodes() {
            if let Some(label) = doc.resource(n).and_then(|m| m.label.as_ref()) {
                assert!(
                    seen.insert((label.service.clone(), label.time)),
                    "duplicate label {label} minted across parallel branches"
                );
            }
        }
        assert_eq!(seen.len(), 5);
        let times: Vec<_> = outcome.trace.calls.iter().map(|c| c.time).collect();
        let mut dedup = times.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(times.len(), dedup.len(), "trace instants collide: {times:?}");
    }

    struct FailNTimes {
        fail: u32,
        seen: std::sync::atomic::AtomicU32,
    }
    impl Service for FailNTimes {
        fn name(&self) -> &str {
            "FailNTimes"
        }
        fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
            let root = doc.root();
            let n = doc.append_element(root, "Item")?;
            ctx.register(doc, n)?;
            let attempt = self
                .seen
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                + 1;
            if attempt <= self.fail {
                return Err(WorkflowError::Service {
                    service: "FailNTimes".into(),
                    message: format!("injected failure on attempt {attempt}"),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn retry_rolls_back_and_reuses_the_call_instant() {
        let wf = Workflow::new().then(AppendOne).then(FailNTimes {
            fail: 2,
            seen: std::sync::atomic::AtomicU32::new(0),
        });
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new().with_fault(crate::policy::FaultPolicy::retrying(
            crate::policy::RetryPolicy::with_max_attempts(3),
        ));
        let outcome = orch.execute(&wf, &mut doc).unwrap();
        // trace has exactly the two successful calls, at consecutive instants
        assert_eq!(outcome.trace.len(), 2);
        assert_eq!(outcome.trace.calls[1].time, 2);
        // attempt log shows the two rolled-back tries at the same instant
        let statuses: Vec<(u32, bool)> = outcome
            .attempts
            .iter()
            .filter(|a| a.service == "FailNTimes")
            .map(|a| (a.attempt, a.status == AttemptStatus::Succeeded))
            .collect();
        assert_eq!(statuses, vec![(1, false), (2, false), (3, true)]);
        assert!(outcome
            .attempts
            .iter()
            .filter(|a| a.service == "FailNTimes")
            .all(|a| a.time == 2));
        // exactly one FailNTimes item survived the rollbacks
        assert_eq!(doc.view().children(doc.root()).len(), 2);
    }

    #[test]
    fn exhausted_retries_abort_with_the_last_error() {
        let wf = Workflow::new().then(FailNTimes {
            fail: 9,
            seen: std::sync::atomic::AtomicU32::new(0),
        });
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new().with_fault(crate::policy::FaultPolicy::retrying(
            crate::policy::RetryPolicy::with_max_attempts(2),
        ));
        let before = doc.mark();
        let err = orch.execute(&wf, &mut doc).unwrap_err();
        assert!(matches!(err, WorkflowError::Service { .. }));
        // both attempts rolled back: the document is untouched
        assert_eq!(doc.mark(), before);
    }

    #[test]
    fn skip_policy_leaves_a_gap_and_continues() {
        let wf = Workflow::new()
            .then(FailNTimes {
                fail: 9,
                seen: std::sync::atomic::AtomicU32::new(0),
            })
            .then(AppendOne);
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new().with_fault(crate::policy::FaultPolicy::skipping());
        let outcome = orch.execute(&wf, &mut doc).unwrap();
        // the failed step is absent from the trace, but its instant is
        // reserved: AppendOne runs at t=2
        assert_eq!(outcome.trace.len(), 1);
        assert_eq!(outcome.trace.calls[0].service, "AppendOne");
        assert_eq!(outcome.trace.calls[0].time, 2);
        assert!(outcome
            .attempts
            .iter()
            .any(|a| a.status == AttemptStatus::Skipped));
    }

    #[test]
    fn resume_skips_completed_steps() {
        // run the full workflow once, checkpointing after each step
        let wf = Workflow::new().then(AppendOne).then(AppendOne).then(AppendOne);
        let orch = Orchestrator::new();
        let mut full = Document::new("Resource");
        let mut marks = Vec::new();
        let mut times = Vec::new();
        orch.execute_resumable(&wf, &mut full, 1, 0, &mut |done, d, _, t| {
            marks.push((done, d.mark()));
            times.push(t);
        })
        .unwrap();
        assert_eq!(marks.len(), 3);
        // replay: rebuild the state after step 1, then resume from there
        let mut resumed = Document::new("Resource");
        orch.execute_resumable(
            &Workflow::new().then(AppendOne),
            &mut resumed,
            1,
            0,
            &mut |_, _, _, _| {},
        )
        .unwrap();
        let outcome = orch
            .execute_resumable(&wf, &mut resumed, times[0], 1, &mut |_, _, _, _| {})
            .unwrap();
        assert_eq!(outcome.trace.len(), 2); // only the remaining steps ran
        assert_eq!(resumed.mark(), full.mark());
        assert_eq!(serialize_both(&full), serialize_both(&resumed));
    }

    fn serialize_both(doc: &Document) -> String {
        weblab_xml::to_xml_string(&doc.view())
    }

    #[test]
    fn call_hooks_fan_in_to_every_subscriber_in_order() {
        let events: Arc<std::sync::Mutex<Vec<(u8, usize)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let first = Arc::clone(&events);
        let second = Arc::clone(&events);
        let wf = Workflow::new().then(AppendOne).then(AppendOne);
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new()
            .with_call_hook(Arc::new(move |_, _, idx| {
                first.lock().unwrap().push((1, idx));
            }))
            .with_call_hook(Arc::new(move |_, _, idx| {
                second.lock().unwrap().push((2, idx));
            }));
        let outcome = orch.execute(&wf, &mut doc).unwrap();
        assert_eq!(outcome.trace.len(), 2);
        // both subscribers saw both commits, in subscription order per call
        assert_eq!(
            *events.lock().unwrap(),
            vec![(1, 0), (2, 0), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn call_hook_fires_once_per_committed_call() {
        let events: Arc<std::sync::Mutex<Vec<(String, Timestamp, usize)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let hook: CallHook = Arc::new(move |_doc, trace, idx| {
            let c = &trace.calls[idx];
            sink.lock().unwrap().push((c.service.clone(), c.time, idx));
        });
        let wf = Workflow::new()
            .then(AppendOne)
            .then(FailNTimes {
                fail: 2,
                seen: std::sync::atomic::AtomicU32::new(0),
            })
            .then(AppendOne);
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new()
            .with_fault(crate::policy::FaultPolicy::retrying(
                crate::policy::RetryPolicy::with_max_attempts(3),
            ))
            .with_call_hook(hook);
        let outcome = orch.execute(&wf, &mut doc).unwrap();
        // three committed calls, three hook firings — the two rolled-back
        // FailNTimes attempts fired nothing
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(
            *events.lock().unwrap(),
            vec![
                ("AppendOne".to_string(), 1, 0),
                ("FailNTimes".to_string(), 2, 1),
                ("AppendOne".to_string(), 3, 2),
            ]
        );
    }

    #[test]
    fn call_hook_skips_skipped_steps() {
        let count = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let sink = Arc::clone(&count);
        let hook: CallHook = Arc::new(move |_, _, _| {
            sink.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        let wf = Workflow::new()
            .then(FailNTimes {
                fail: 9,
                seen: std::sync::atomic::AtomicU32::new(0),
            })
            .then(AppendOne);
        let mut doc = Document::new("Resource");
        let orch = Orchestrator::new()
            .with_fault(crate::policy::FaultPolicy::skipping())
            .with_call_hook(hook);
        orch.execute(&wf, &mut doc).unwrap();
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn call_hook_sees_merged_records_for_parallel_branches() {
        let seen: Arc<std::sync::Mutex<Vec<(String, usize)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let hook: CallHook = Arc::new(move |doc, trace, idx| {
            let c = &trace.calls[idx];
            // every produced node id must resolve in the *main* document —
            // fork-local ids would not
            for &n in &c.produced {
                assert!(doc.resource(n).is_some(), "unmerged node id leaked to hook");
            }
            sink.lock().unwrap().push((c.channel.clone(), idx));
        });
        let wf = Workflow::new()
            .then(AppendOne)
            .then_parallel(vec![
                Workflow::new().then(AppendOne).then(AppendOne),
                Workflow::new().then(AppendOne),
            ])
            .then(AppendOne);
        let mut doc = Document::new("Resource");
        let outcome = Orchestrator::new()
            .with_call_hook(hook)
            .execute(&wf, &mut doc)
            .unwrap();
        assert_eq!(outcome.trace.len(), 5);
        let events = seen.lock().unwrap();
        // one firing per trace record, in trace order
        assert_eq!(
            events.iter().map(|(_, i)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(
            events.iter().map(|(c, _)| c.as_str()).collect::<Vec<_>>(),
            vec!["", "0", "0", "1", ""]
        );
    }
}
