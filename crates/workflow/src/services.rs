//! The media-mining service library.
//!
//! Analogues of the WebLab platform's text-mining components, operating on
//! the full-name vocabulary (`Resource`, `NativeContent`, `TextMediaUnit`,
//! `TextContent`, `Annotation`, `Language`, `Summary`, `Index`). Every
//! service is a black box from the engine's point of view; the only
//! provenance-relevant artefacts are the fragments it appends and the
//! alignment attributes it writes (`origin`, `translation-of`, `of`,
//! `group`), which the mapping rules of [`default_rules`] exploit.
//!
//! Services are idempotent: each checks for its own prior output before
//! producing more, so arbitrarily long service chains keep executing
//! meaningfully.

use weblab_prov::RuleSet;
use weblab_xml::{Document, NodeId};

use crate::service::{CallContext, Service, WorkflowError};
use crate::text;

/// The mapping rules `M(s)` for every service in this module, in the
/// concrete syntax of Figure 3.
pub fn default_rules() -> RuleSet {
    let mut rules = RuleSet::new();
    rules
        .add_parsed(
            "Normaliser",
            "//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]",
        )
        .unwrap();
    rules
        .add_parsed(
            "OcrExtractor",
            "//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]",
        )
        .unwrap();
    rules
        .add_parsed(
            "SpeechTranscriber",
            "//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]",
        )
        .unwrap();
    rules
        .add_parsed(
            "LanguageExtractor",
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]",
        )
        .unwrap();
    rules
        .add_parsed(
            "Translator",
            "//TextMediaUnit[$x := @id] => //TextMediaUnit[@translation-of = $x]",
        )
        .unwrap();
    rules
        .add_parsed(
            "Tokeniser",
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Tokens]",
        )
        .unwrap();
    rules
        .add_parsed(
            "EntityExtractor",
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Entity]",
        )
        .unwrap();
    rules
        .add_parsed(
            "Summariser",
            "//TextMediaUnit[$x := @id]/TextContent => //Summary[@of = $x]",
        )
        .unwrap();
    rules
        .add_parsed(
            "SentimentAnalyser",
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Sentiment]",
        )
        .unwrap();
    rules
        .add_parsed(
            "KeywordExtractor",
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Keyword]",
        )
        .unwrap();
    rules
        .add_parsed(
            // many-to-one Skolem aggregation (Section 5): every language
            // annotation with @lang = l feeds the index entry whose @group
            // is the rendered term idx(l)
            "Indexer",
            "//Annotation[$l := @lang] => //IndexEntry[idx($l) := @group]",
        )
        .unwrap();
    rules
}

/// All text-media units at the current state, in document order.
fn text_media_units(doc: &Document) -> Vec<NodeId> {
    let v = doc.view();
    v.descendants(doc.root())
        .filter(|&n| v.name(n) == Some("TextMediaUnit"))
        .collect()
}

/// Text content of a unit's `TextContent` child, if any.
fn unit_text(doc: &Document, unit: NodeId) -> Option<(NodeId, String)> {
    let v = doc.view();
    v.children(unit)
        .iter()
        .find(|&&c| v.name(c) == Some("TextContent"))
        .map(|&c| (c, v.text_content(c)))
}

/// Whether `unit` already has an `Annotation` containing a `kind` child.
fn has_annotation(doc: &Document, unit: NodeId, kind: &str) -> bool {
    let v = doc.view();
    v.children(unit)
        .iter()
        .filter(|&&c| v.name(c) == Some("Annotation"))
        .any(|&a| v.children(a).iter().any(|&k| v.name(k) == Some(kind)))
}

/// Shared worker: wrap each unprocessed `NativeContent` whose `@mime`
/// matches `mime_prefix` into a `TextMediaUnit` (linked via `@origin`),
/// transforming the raw text with `transform`.
fn wrap_native_content(
    doc: &mut Document,
    ctx: &mut CallContext,
    mime_prefix: Option<&str>,
    transform: impl Fn(&str) -> String,
) -> Result<(), WorkflowError> {
    let v = doc.view();
    let root = doc.root();
    let natives: Vec<(String, String)> = v
        .descendants(root)
        .filter(|&n| v.name(n) == Some("NativeContent"))
        .filter(|&n| match mime_prefix {
            None => {
                // default: text or missing mime
                v.attr(n, "mime").map(|m| m.starts_with("text/")).unwrap_or(true)
            }
            Some(prefix) => v
                .attr(n, "mime")
                .map(|m| m.starts_with(prefix))
                .unwrap_or(false),
        })
        .filter_map(|n| {
            let uri = v.uri(n)?.to_string();
            Some((uri, v.text_content(n)))
        })
        .collect();
    let done: Vec<String> = v
        .descendants(root)
        .filter(|&n| v.name(n) == Some("TextMediaUnit"))
        .filter_map(|n| v.attr(n, "origin").map(|s| s.to_string()))
        .collect();
    for (uri, raw) in natives {
        if done.contains(&uri) {
            continue;
        }
        let unit = doc.append_element(root, "TextMediaUnit")?;
        doc.set_attr(unit, "origin", uri)?;
        ctx.register(doc, unit)?;
        let tc = doc.append_element(unit, "TextContent")?;
        doc.append_text(tc, transform(&raw))?;
        ctx.register(doc, tc)?;
    }
    Ok(())
}

/// Normaliser: turns each raw textual `NativeContent` resource into a
/// `TextMediaUnit` with normalised `TextContent`, linked through `@origin`.
pub struct Normaliser;

impl Service for Normaliser {
    fn name(&self) -> &str {
        "Normaliser"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        wrap_native_content(doc, ctx, None, text::normalise)
    }
}

/// OcrExtractor: turns image `NativeContent` (mime `image/*`) into a
/// `TextMediaUnit` by "reading" the embedded caption — the platform's
/// image-mining entry point. (A real deployment plugs an OCR engine in;
/// the black-box model only sees the appended unit.)
pub struct OcrExtractor;

impl Service for OcrExtractor {
    fn name(&self) -> &str {
        "OcrExtractor"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        wrap_native_content(doc, ctx, Some("image/"), |raw| {
            format!("[ocr] {}", text::normalise(raw))
        })
    }
}

/// SpeechTranscriber: turns audio `NativeContent` (mime `audio/*`) into a
/// `TextMediaUnit` — the audio-mining entry point.
pub struct SpeechTranscriber;

impl Service for SpeechTranscriber {
    fn name(&self) -> &str {
        "SpeechTranscriber"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        wrap_native_content(doc, ctx, Some("audio/"), |raw| {
            format!("[transcript] {}", text::normalise(raw))
        })
    }
}

/// LanguageExtractor: annotates each unit with its detected language (both
/// as a `Language` child and an `@lang` attribute for aggregation rules).
pub struct LanguageExtractor;

impl Service for LanguageExtractor {
    fn name(&self) -> &str {
        "LanguageExtractor"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        for unit in text_media_units(doc) {
            if has_annotation(doc, unit, "Language") {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            let lang = text::detect_language(&textv);
            let ann = doc.append_element(unit, "Annotation")?;
            doc.set_attr(ann, "lang", lang)?;
            ctx.register(doc, ann)?;
            let l = doc.append_element(ann, "Language")?;
            doc.append_text(l, lang)?;
        }
        Ok(())
    }
}

/// Translator: produces, for each unit in a language other than `target`,
/// a new unit holding its translation (linked through `@translation-of`).
pub struct Translator {
    /// Target language code (`"en"`).
    pub target: &'static str,
}

impl Default for Translator {
    fn default() -> Self {
        Translator { target: "en" }
    }
}

impl Service for Translator {
    fn name(&self) -> &str {
        "Translator"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let v = doc.view();
        let root = doc.root();
        let translated: Vec<String> = v
            .descendants(root)
            .filter_map(|n| v.attr(n, "translation-of").map(|s| s.to_string()))
            .collect();
        let mut jobs = Vec::new();
        for unit in text_media_units(doc) {
            let v = doc.view();
            let Some(uri) = v.uri(unit).map(|s| s.to_string()) else {
                continue;
            };
            if translated.contains(&uri) || v.attr(unit, "translation-of").is_some() {
                continue;
            }
            // language from the annotation, if present
            let lang = v
                .children(unit)
                .iter()
                .find(|&&c| v.name(c) == Some("Annotation"))
                .and_then(|&a| v.attr(a, "lang"))
                .unwrap_or("en");
            if lang == self.target {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            jobs.push((uri, textv));
        }
        for (uri, textv) in jobs {
            let unit = doc.append_element(root, "TextMediaUnit")?;
            doc.set_attr(unit, "translation-of", uri)?;
            ctx.register(doc, unit)?;
            let tc = doc.append_element(unit, "TextContent")?;
            doc.append_text(tc, text::translate_fr_en(&textv))?;
            ctx.register(doc, tc)?;
            let ann = doc.append_element(unit, "Annotation")?;
            doc.set_attr(ann, "lang", self.target)?;
            ctx.register(doc, ann)?;
            let l = doc.append_element(ann, "Language")?;
            doc.append_text(l, self.target)?;
        }
        Ok(())
    }
}

/// Tokeniser: counts tokens into an `Annotation/Tokens` element.
pub struct Tokeniser;

impl Service for Tokeniser {
    fn name(&self) -> &str {
        "Tokeniser"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        for unit in text_media_units(doc) {
            if has_annotation(doc, unit, "Tokens") {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            let count = textv.split_whitespace().count();
            let ann = doc.append_element(unit, "Annotation")?;
            ctx.register(doc, ann)?;
            let t = doc.append_element(ann, "Tokens")?;
            doc.set_attr(t, "count", count.to_string())?;
        }
        Ok(())
    }
}

/// EntityExtractor: capitalised-run named entities.
pub struct EntityExtractor;

impl Service for EntityExtractor {
    fn name(&self) -> &str {
        "EntityExtractor"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        for unit in text_media_units(doc) {
            if has_annotation(doc, unit, "Entity") {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            let entities = text::extract_entities(&textv);
            if entities.is_empty() {
                continue;
            }
            let ann = doc.append_element(unit, "Annotation")?;
            ctx.register(doc, ann)?;
            for e in entities {
                let el = doc.append_element(ann, "Entity")?;
                doc.append_text(el, e)?;
            }
        }
        Ok(())
    }
}

/// Summariser: one `Summary` resource per unit, under the document root.
pub struct Summariser;

impl Service for Summariser {
    fn name(&self) -> &str {
        "Summariser"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let v = doc.view();
        let root = doc.root();
        let done: Vec<String> = v
            .descendants(root)
            .filter(|&n| v.name(n) == Some("Summary"))
            .filter_map(|n| v.attr(n, "of").map(|s| s.to_string()))
            .collect();
        let mut jobs = Vec::new();
        for unit in text_media_units(doc) {
            let v = doc.view();
            let Some(uri) = v.uri(unit).map(|s| s.to_string()) else {
                continue;
            };
            if done.contains(&uri) {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            jobs.push((uri, text::summarise(&textv, 12)));
        }
        for (uri, summary) in jobs {
            let s = doc.append_element(root, "Summary")?;
            doc.set_attr(s, "of", uri)?;
            ctx.register(doc, s)?;
            doc.append_text(s, summary)?;
        }
        Ok(())
    }
}

/// SentimentAnalyser: lexicon score annotation.
pub struct SentimentAnalyser;

impl Service for SentimentAnalyser {
    fn name(&self) -> &str {
        "SentimentAnalyser"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        for unit in text_media_units(doc) {
            if has_annotation(doc, unit, "Sentiment") {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            let score = text::sentiment(&textv);
            let ann = doc.append_element(unit, "Annotation")?;
            ctx.register(doc, ann)?;
            let s = doc.append_element(ann, "Sentiment")?;
            doc.set_attr(s, "score", format!("{score:.3}"))?;
        }
        Ok(())
    }
}

/// KeywordExtractor: top-5 keyword annotation.
pub struct KeywordExtractor;

impl Service for KeywordExtractor {
    fn name(&self) -> &str {
        "KeywordExtractor"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        for unit in text_media_units(doc) {
            if has_annotation(doc, unit, "Keyword") {
                continue;
            }
            let Some((_, textv)) = unit_text(doc, unit) else {
                continue;
            };
            let kws = text::keywords(&textv, 5);
            if kws.is_empty() {
                continue;
            }
            let ann = doc.append_element(unit, "Annotation")?;
            ctx.register(doc, ann)?;
            for k in kws {
                let el = doc.append_element(ann, "Keyword")?;
                doc.append_text(el, k)?;
            }
        }
        Ok(())
    }
}

/// Indexer: groups language annotations into one `IndexEntry` per language.
/// The entry's `@group` attribute carries the rendered Skolem term
/// `idx(lang)`, making this the many-to-one aggregation of Section 5.
pub struct Indexer;

impl Service for Indexer {
    fn name(&self) -> &str {
        "Indexer"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let v = doc.view();
        let root = doc.root();
        let mut langs: Vec<String> = v
            .descendants(root)
            .filter(|&n| v.name(n) == Some("Annotation"))
            .filter_map(|n| v.attr(n, "lang").map(|s| s.to_string()))
            .collect();
        langs.sort();
        langs.dedup();
        let existing: Vec<String> = v
            .descendants(root)
            .filter(|&n| v.name(n) == Some("IndexEntry"))
            .filter_map(|n| v.attr(n, "group").map(|s| s.to_string()))
            .collect();
        if langs.is_empty() {
            return Ok(());
        }
        // one Index container, created on first use
        let index = v
            .descendants(root)
            .find(|&n| v.name(n) == Some("Index"));
        let index = match index {
            Some(i) => i,
            None => {
                let i = doc.append_element(root, "Index")?;
                ctx.register(doc, i)?;
                i
            }
        };
        for lang in langs {
            let group = weblab_prov::skolem::skolem_attr("idx", &[&lang]);
            if existing.contains(&group) {
                continue;
            }
            let entry = doc.append_element(index, "IndexEntry")?;
            doc.set_attr(entry, "group", group)?;
            ctx.register(doc, entry)?;
        }
        Ok(())
    }
}

/// Flaky: a fault-injection service for exercising retry policies. It
/// appends and registers a `FlakyProbe` resource under the root, then fails
/// the first `fail_times` calls *after* mutating the document — so every
/// early attempt leaves work behind that the orchestrator must roll back.
/// Succeeds from call `fail_times + 1` on.
pub struct Flaky {
    fail_times: u32,
    calls: std::sync::atomic::AtomicU32,
}

impl Flaky {
    /// A service that fails its first `fail_times` calls, then succeeds.
    pub fn failing(fail_times: u32) -> Self {
        Flaky {
            fail_times,
            calls: std::sync::atomic::AtomicU32::new(0),
        }
    }
}

impl Service for Flaky {
    fn name(&self) -> &str {
        "Flaky"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        // idempotent on success: only one probe per call instant
        let marker = format!("t{}", ctx.time());
        let v = doc.view();
        if v.descendants(root)
            .any(|n| v.name(n) == Some("FlakyProbe") && v.attr(n, "at") == Some(marker.as_str()))
        {
            return Ok(());
        }
        let probe = doc.append_element(root, "FlakyProbe")?;
        doc.set_attr(probe, "at", marker)?;
        ctx.register(doc, probe)?;
        let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        if call <= self.fail_times {
            return Err(WorkflowError::Service {
                service: "Flaky".into(),
                message: format!("injected fault {call}/{}", self.fail_times),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{Orchestrator, Workflow};
    use weblab_prov::{infer_provenance, EngineOptions};
    use weblab_xml::CallLabel;

    fn corpus() -> Document {
        let mut d = Document::new("Resource");
        let root = d.root();
        d.register_resource(root, "weblab://doc/1", None).unwrap();
        let n = d.append_element(root, "NativeContent").unwrap();
        d.register_resource(n, "weblab://src/1", Some(CallLabel::new("Source", 0)))
            .unwrap();
        d.append_text(n, "Le Texte Est Dans La Langue Pour Jean Dupont")
            .unwrap();
        d
    }

    fn full_pipeline() -> Workflow {
        Workflow::new()
            .then(Normaliser)
            .then(LanguageExtractor)
            .then(Translator::default())
            .then(LanguageExtractor)
            .then(Tokeniser)
            .then(EntityExtractor)
            .then(SentimentAnalyser)
            .then(KeywordExtractor)
            .then(Summariser)
            .then(Indexer)
    }

    #[test]
    fn pipeline_runs_and_produces_resources() {
        let mut doc = corpus();
        let outcome = Orchestrator::new()
            .execute(&full_pipeline(), &mut doc)
            .unwrap();
        assert_eq!(outcome.trace.len(), 10);
        let v = doc.view();
        let names: Vec<&str> = v
            .descendants(doc.root())
            .filter_map(|n| v.name(n))
            .collect();
        for expected in [
            "TextMediaUnit",
            "TextContent",
            "Annotation",
            "Language",
            "Summary",
            "Index",
            "IndexEntry",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // translation happened: two units, one with translation-of
        let units: Vec<_> = v
            .descendants(doc.root())
            .filter(|&n| v.name(n) == Some("TextMediaUnit"))
            .collect();
        assert_eq!(units.len(), 2);
        assert!(units
            .iter()
            .any(|&u| v.attr(u, "translation-of").is_some()));
    }

    #[test]
    fn services_are_idempotent() {
        let mut doc = corpus();
        let wf = full_pipeline();
        Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let before = doc.node_count();
        // running the whole pipeline again adds nothing
        Orchestrator::new().execute(&wf, &mut doc).unwrap();
        assert_eq!(doc.node_count(), before);
    }

    #[test]
    fn provenance_of_full_pipeline_is_plausible() {
        let mut doc = corpus();
        let outcome = Orchestrator::new()
            .execute(&full_pipeline(), &mut doc)
            .unwrap();
        let rules = default_rules();
        let g = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        assert!(g.is_acyclic());
        // the normalised unit depends on the native content
        let unit_uri = {
            let v = doc.view();
            v.descendants(doc.root())
                .find(|&n| {
                    v.name(n) == Some("TextMediaUnit") && v.attr(n, "origin").is_some()
                })
                .and_then(|n| v.uri(n))
                .unwrap()
                .to_string()
        };
        assert!(g.dependencies_of(&unit_uri).contains(&"weblab://src/1"));
        // call-level lineage includes Translator using Normaliser output
        let calls = g.call_dependencies();
        assert!(calls
            .iter()
            .any(|(a, b)| a.service == "Translator" && b.service == "Normaliser"));
        // the index entry aggregates language annotations (Skolem join)
        let entry_uri = {
            let v = doc.view();
            v.descendants(doc.root())
                .find(|&n| v.name(n) == Some("IndexEntry"))
                .and_then(|n| v.uri(n))
                .unwrap()
                .to_string()
        };
        assert!(!g.dependencies_of(&entry_uri).is_empty());
    }

    #[test]
    fn translator_skips_target_language_units() {
        let mut d = Document::new("Resource");
        let root = d.root();
        let n = d.append_element(root, "NativeContent").unwrap();
        d.register_resource(n, "src", Some(CallLabel::new("Source", 0)))
            .unwrap();
        d.append_text(n, "the text is already in the target language")
            .unwrap();
        let wf = Workflow::new()
            .then(Normaliser)
            .then(LanguageExtractor)
            .then(Translator::default());
        Orchestrator::new().execute(&wf, &mut d).unwrap();
        let v = d.view();
        let units = v
            .descendants(d.root())
            .filter(|&x| v.name(x) == Some("TextMediaUnit"))
            .count();
        assert_eq!(units, 1); // no translation of an English unit
    }
}
