//! Vocabulary constants: PROV-O, RDF, XSD, and the WebLab namespace.
//!
//! The paper stores provenance as RDF-PROV \[8\] (PROV-O); these are the
//! terms the exporter emits and the SPARQL examples query.

/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// PROV-O namespace.
pub const PROV_NS: &str = "http://www.w3.org/ns/prov#";
/// `prov:Entity` — a resource (identified XML fragment).
pub const PROV_ENTITY: &str = "http://www.w3.org/ns/prov#Entity";
/// `prov:Activity` — a service call `(s, t)`.
pub const PROV_ACTIVITY: &str = "http://www.w3.org/ns/prov#Activity";
/// `prov:Agent` — a service.
pub const PROV_AGENT: &str = "http://www.w3.org/ns/prov#Agent";
/// `prov:wasGeneratedBy` — entity → activity (the labelling function λ).
pub const PROV_WAS_GENERATED_BY: &str = "http://www.w3.org/ns/prov#wasGeneratedBy";
/// `prov:used` — activity → entity.
pub const PROV_USED: &str = "http://www.w3.org/ns/prov#used";
/// `prov:wasDerivedFrom` — entity → entity (the data-dependency edges E).
pub const PROV_WAS_DERIVED_FROM: &str = "http://www.w3.org/ns/prov#wasDerivedFrom";
/// `prov:wasAssociatedWith` — activity → agent.
pub const PROV_WAS_ASSOCIATED_WITH: &str = "http://www.w3.org/ns/prov#wasAssociatedWith";
/// `prov:startedAtTime` — activity → instant.
pub const PROV_STARTED_AT_TIME: &str = "http://www.w3.org/ns/prov#startedAtTime";

/// WebLab namespace for activities/agents minted by the exporter.
pub const WL_NS: &str = "http://weblab.example.org/prov#";

/// IRI of the activity for call `(service, time)`.
pub fn activity_iri(service: &str, time: u64) -> String {
    format!("{WL_NS}call/{service}/t{time}")
}

/// IRI of the agent for a service.
pub fn agent_iri(service: &str) -> String {
    format!("{WL_NS}service/{service}")
}

/// Well-known prefixes for the Turtle writer.
pub fn default_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
        ("xsd", "http://www.w3.org/2001/XMLSchema#"),
        ("prov", PROV_NS),
        ("wl", WL_NS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_minting() {
        assert_eq!(
            activity_iri("Translator", 3),
            "http://weblab.example.org/prov#call/Translator/t3"
        );
        assert_eq!(
            agent_iri("Translator"),
            "http://weblab.example.org/prov#service/Translator"
        );
    }
}
