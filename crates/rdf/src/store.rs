//! A dictionary-encoded columnar triple store.
//!
//! Plays the role of the paper's Sesame repositories (Execution Trace and
//! Provenance triple stores of Figure 5). Terms are interned to dense
//! `u32` ids by a [`Dictionary`]; the triples themselves live in three
//! **sorted `Vec<[u32; 3]>` permutation indexes** (SPO, POS, OSP), so
//! every bound-prefix lookup is a pair of binary searches yielding a
//! contiguous row slice — no tree nodes, no per-triple allocation, no
//! sentinel terms. Inserts are batched: a batch is sorted, deduplicated,
//! checked against the SPO index, and merged into each permutation in one
//! linear pass (appends that land entirely past the current tail — the
//! common shape for interned monotone workloads — skip the merge).
//!
//! The store also maintains the summary statistics the SPARQL join
//! planner feeds on: global distinct subject/predicate/object counts and
//! a per-predicate `(rows, distinct subjects, distinct objects)` table,
//! refreshed in O(n) boundary-counting passes after each merge.
//!
//! Id order is first-seen order, not term order, so the read paths that
//! promise term-sorted output ([`TripleStore::iter`],
//! [`TripleStore::matching`]) decode and re-sort in term space — results
//! remain byte-identical to the seed `BTreeSet` engine.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::term::{Term, Triple};

/// Triple pattern component: bound term or wildcard.
pub type TermPattern = Option<Term>;

/// Per-predicate planner statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PredStat {
    /// Triples with this predicate.
    pub rows: u64,
    /// Distinct subjects under this predicate.
    pub distinct_s: u64,
    /// Distinct objects under this predicate.
    pub distinct_o: u64,
}

/// Store-wide planner statistics, refreshed after every merge.
#[derive(Debug, Clone, Default)]
pub(crate) struct StoreStats {
    /// Distinct subjects across the store.
    pub distinct_s: u64,
    /// Distinct predicates across the store.
    pub distinct_p: u64,
    /// Distinct objects across the store.
    pub distinct_o: u64,
    /// Per-predicate cardinalities.
    pub preds: HashMap<u32, PredStat>,
}

/// Indexed triple store (see the module docs for the layout).
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    dict: Dictionary,
    /// Rows `[s, p, o]`, sorted lexicographically.
    spo: Vec<[u32; 3]>,
    /// Rows `[p, o, s]`, sorted lexicographically.
    pos: Vec<[u32; 3]>,
    /// Rows `[o, s, p]`, sorted lexicographically.
    osp: Vec<[u32; 3]>,
    stats: StoreStats,
}

/// The half-open row range of `col` whose first `prefix.len()` columns
/// equal `prefix` — two binary searches over the sorted rows.
fn range_of<'a>(col: &'a [[u32; 3]], prefix: &[u32]) -> &'a [[u32; 3]] {
    let k = prefix.len();
    let lo = col.partition_point(|row| row[..k] < *prefix);
    let hi = lo + col[lo..].partition_point(|row| row[..k] == *prefix);
    &col[lo..hi]
}

/// Merge a sorted, deduplicated, disjoint batch into a sorted column.
fn merge_into(col: &mut Vec<[u32; 3]>, add: &[[u32; 3]]) {
    if add.is_empty() {
        return;
    }
    match col.last() {
        // append-only fast path: the whole batch lands past the tail
        None => col.extend_from_slice(add),
        Some(last) if add[0] > *last => col.extend_from_slice(add),
        _ => {
            let mut merged = Vec::with_capacity(col.len() + add.len());
            let (mut i, mut j) = (0, 0);
            while i < col.len() && j < add.len() {
                if col[i] <= add[j] {
                    merged.push(col[i]);
                    i += 1;
                } else {
                    merged.push(add[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&col[i..]);
            merged.extend_from_slice(&add[j..]);
            *col = merged;
        }
    }
}

impl TripleStore {
    /// Empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let row = [
            self.dict.intern(&t.s),
            self.dict.intern(&t.p),
            self.dict.intern(&t.o),
        ];
        self.insert_rows(vec![row]) == 1
    }

    /// Bulk insert (one sort-dedup-merge for the whole batch).
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        self.extend_count(triples);
    }

    /// Bulk insert, returning how many triples were actually new.
    pub fn extend_count(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let rows: Vec<[u32; 3]> = triples
            .into_iter()
            .map(|t| {
                [
                    self.dict.intern(&t.s),
                    self.dict.intern(&t.p),
                    self.dict.intern(&t.o),
                ]
            })
            .collect();
        self.insert_rows(rows)
    }

    /// Intern a term into this store's dictionary without inserting any
    /// triple — the id-level entry point for the export and live paths.
    pub(crate) fn intern_term(&mut self, t: &Term) -> u32 {
        self.dict.intern(t)
    }

    /// Merge pre-interned `[s, p, o]` rows, returning how many were new.
    pub(crate) fn insert_rows(&mut self, mut rows: Vec<[u32; 3]>) -> usize {
        rows.sort_unstable();
        rows.dedup();
        rows.retain(|r| range_of(&self.spo, r).is_empty());
        if rows.is_empty() {
            return 0;
        }
        let fresh = rows.len();
        let mut pos: Vec<[u32; 3]> = rows.iter().map(|&[s, p, o]| [p, o, s]).collect();
        pos.sort_unstable();
        let mut osp: Vec<[u32; 3]> = rows.iter().map(|&[s, p, o]| [o, s, p]).collect();
        osp.sort_unstable();
        merge_into(&mut self.spo, &rows);
        merge_into(&mut self.pos, &pos);
        merge_into(&mut self.osp, &osp);
        self.refresh_stats();
        fresh
    }

    /// Recount the planner statistics: three linear boundary-counting
    /// passes (one per permutation), no hashing of row contents.
    fn refresh_stats(&mut self) {
        let mut stats = StoreStats::default();
        let mut prev: Option<[u32; 3]> = None;
        for &row in &self.spo {
            let new_s = prev.map(|p| p[0] != row[0]).unwrap_or(true);
            if new_s {
                stats.distinct_s += 1;
            }
            if new_s || prev.map(|p| p[1] != row[1]).unwrap_or(true) {
                stats.preds.entry(row[1]).or_default().distinct_s += 1;
            }
            prev = Some(row);
        }
        prev = None;
        for &row in &self.pos {
            let new_p = prev.map(|p| p[0] != row[0]).unwrap_or(true);
            if new_p {
                stats.distinct_p += 1;
            }
            let entry = stats.preds.entry(row[0]).or_default();
            entry.rows += 1;
            if new_p || prev.map(|p| p[1] != row[1]).unwrap_or(true) {
                entry.distinct_o += 1;
            }
            prev = Some(row);
        }
        prev = None;
        for &row in &self.osp {
            if prev.map(|p| p[0] != row[0]).unwrap_or(true) {
                stats.distinct_o += 1;
            }
            prev = Some(row);
        }
        self.stats = stats;
    }

    /// The planner statistics as of the last merge.
    pub(crate) fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// The term dictionary.
    pub(crate) fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The SPO rows with subject-prefix `prefix` (`[]`, `[s]`, `[s,p]`,
    /// `[s,p,o]`).
    pub(crate) fn rows_spo(&self, prefix: &[u32]) -> &[[u32; 3]] {
        range_of(&self.spo, prefix)
    }

    /// The POS rows (`[p, o, s]`) with the given prefix.
    pub(crate) fn rows_pos(&self, prefix: &[u32]) -> &[[u32; 3]] {
        range_of(&self.pos, prefix)
    }

    /// The OSP rows (`[o, s, p]`) with the given prefix.
    pub(crate) fn rows_osp(&self, prefix: &[u32]) -> &[[u32; 3]] {
        range_of(&self.osp, prefix)
    }

    /// Membership in id space.
    pub(crate) fn contains_row(&self, row: [u32; 3]) -> bool {
        !range_of(&self.spo, &row).is_empty()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Number of distinct terms interned in this store's dictionary.
    pub fn distinct_terms(&self) -> usize {
        self.dict.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test. Never interns: unknown terms simply do not match.
    pub fn contains(&self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.lookup(&t.s),
            self.dict.lookup(&t.p),
            self.dict.lookup(&t.o),
        ) else {
            return false;
        };
        self.contains_row([s, p, o])
    }

    /// Decode one id row (in `[s, p, o]` component order) to a `Triple`.
    pub(crate) fn decode(&self, [s, p, o]: [u32; 3]) -> Triple {
        Triple::new(
            self.dict.term(s).clone(),
            self.dict.term(p).clone(),
            self.dict.term(o).clone(),
        )
    }

    /// All triples, in term-sorted SPO order (the seed `BTreeSet` order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        let mut out: Vec<Triple> = self.spo.iter().map(|&r| self.decode(r)).collect();
        out.sort_unstable();
        out.into_iter()
    }

    /// Match a pattern, using the best index for the bound components.
    /// Results are in the seed engine's order: the term order of the
    /// chosen index (SPO when the subject is bound, POS when only the
    /// predicate is, OSP when only the object is).
    pub fn matching(&self, s: &TermPattern, p: &TermPattern, o: &TermPattern) -> Vec<Triple> {
        // resolve constants without interning; any miss → no matches
        let ids = [s, p, o].map(|t| t.as_ref().map(|t| self.dict.lookup(t)));
        if ids.iter().any(|r| matches!(r, Some(None))) {
            return Vec::new();
        }
        let (s_id, p_id, o_id) = (ids[0].flatten(), ids[1].flatten(), ids[2].flatten());
        let mut out: Vec<Triple> = match (s_id, p_id, o_id) {
            (Some(s), Some(p), Some(o)) => {
                return if self.contains_row([s, p, o]) {
                    vec![self.decode([s, p, o])]
                } else {
                    Vec::new()
                };
            }
            (Some(s), p, o) => {
                let prefix: Vec<u32> = match p {
                    Some(p) => vec![s, p],
                    None => vec![s],
                };
                self.rows_spo(&prefix)
                    .iter()
                    .filter(|r| o.map(|o| r[2] == o).unwrap_or(true))
                    .map(|&r| self.decode(r))
                    .collect()
            }
            (None, Some(p), o) => {
                let prefix: Vec<u32> = match o {
                    Some(o) => vec![p, o],
                    None => vec![p],
                };
                self.rows_pos(&prefix)
                    .iter()
                    .map(|&[p, o, s]| self.decode([s, p, o]))
                    .collect()
            }
            (None, None, Some(o)) => self
                .rows_osp(&[o])
                .iter()
                .map(|&[o, s, p]| self.decode([s, p, o]))
                .collect(),
            (None, None, None) => return self.iter().collect(),
        };
        match (s_id, p_id) {
            // SPO scan order: (s, p, o) term order
            (Some(_), _) => out.sort_unstable(),
            // POS scan order: (p, o, s) term order
            (None, Some(_)) => {
                out.sort_unstable_by(|a, b| (&a.p, &a.o, &a.s).cmp(&(&b.p, &b.o, &b.s)))
            }
            // OSP scan order: (o, s, p) term order
            (None, None) => {
                out.sort_unstable_by(|a, b| (&a.o, &a.s, &a.p).cmp(&(&b.o, &b.s, &b.p)))
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = TripleStore::new();
        assert!(st.insert(t("a", "p", "b")));
        assert!(!st.insert(t("a", "p", "b")));
        assert_eq!(st.len(), 1);
        assert!(st.contains(&t("a", "p", "b")));
    }

    #[test]
    fn pattern_matching_uses_all_shapes() {
        let mut st = TripleStore::new();
        st.extend([
            t("a", "p", "b"),
            t("a", "q", "c"),
            t("d", "p", "b"),
            t("d", "p", "e"),
        ]);
        assert_eq!(st.matching(&Some(Term::iri("a")), &None, &None).len(), 2);
        assert_eq!(st.matching(&None, &Some(Term::iri("p")), &None).len(), 3);
        assert_eq!(st.matching(&None, &None, &Some(Term::iri("b"))).len(), 2);
        assert_eq!(
            st.matching(&None, &Some(Term::iri("p")), &Some(Term::iri("b")))
                .len(),
            2
        );
        assert_eq!(
            st.matching(&Some(Term::iri("a")), &Some(Term::iri("p")), &Some(Term::iri("b")))
                .len(),
            1
        );
        assert_eq!(st.matching(&None, &None, &None).len(), 4);
    }

    #[test]
    fn literals_and_blanks_participate() {
        let mut st = TripleStore::new();
        st.insert(Triple::new(
            Term::Blank("b0".into()),
            Term::iri("p"),
            Term::lit("v"),
        ));
        assert_eq!(st.matching(&None, &None, &Some(Term::lit("v"))).len(), 1);
        // a term that was never interned matches nothing
        assert!(st.matching(&None, &None, &Some(Term::lit("w"))).is_empty());
    }

    #[test]
    fn iter_yields_everything_term_sorted() {
        let mut st = TripleStore::new();
        // inserted out of term order: ids follow insertion, iter re-sorts
        st.extend([t("c", "p", "d"), t("a", "p", "b")]);
        let all: Vec<Triple> = st.iter().collect();
        assert_eq!(all, vec![t("a", "p", "b"), t("c", "p", "d")]);
    }

    #[test]
    fn batched_and_single_inserts_agree() {
        let triples = [
            t("a", "p", "b"),
            t("d", "p", "e"),
            t("a", "q", "c"),
            t("a", "p", "b"), // duplicate inside the batch
        ];
        let mut batched = TripleStore::new();
        assert_eq!(batched.extend_count(triples.iter().cloned()), 3);
        let mut single = TripleStore::new();
        for t in &triples {
            single.insert(t.clone());
        }
        assert_eq!(batched.len(), 3);
        assert_eq!(
            batched.iter().collect::<Vec<_>>(),
            single.iter().collect::<Vec<_>>()
        );
        // merging an overlapping batch counts only the genuinely new rows
        assert_eq!(batched.extend_count([t("a", "p", "b"), t("x", "y", "z")]), 1);
    }

    #[test]
    fn stats_track_per_predicate_cardinalities() {
        let mut st = TripleStore::new();
        st.extend([
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("d", "p", "b"),
            t("d", "q", "b"),
        ]);
        let stats = st.stats();
        assert_eq!(stats.distinct_s, 2);
        assert_eq!(stats.distinct_p, 2);
        assert_eq!(stats.distinct_o, 2);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        let ps = stats.preds[&p];
        assert_eq!((ps.rows, ps.distinct_s, ps.distinct_o), (3, 2, 2));
        let q = st.dict().lookup(&Term::iri("q")).unwrap();
        let qs = stats.preds[&q];
        assert_eq!((qs.rows, qs.distinct_s, qs.distinct_o), (1, 1, 1));
    }

    #[test]
    fn range_lookups_are_prefix_exact() {
        let mut st = TripleStore::new();
        st.extend([t("a", "p", "b"), t("a", "p", "c"), t("a", "q", "b"), t("b", "p", "b")]);
        let a = st.dict().lookup(&Term::iri("a")).unwrap();
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        assert_eq!(st.rows_spo(&[a]).len(), 3);
        assert_eq!(st.rows_spo(&[a, p]).len(), 2);
        assert_eq!(st.rows_spo(&[]).len(), 4);
        assert_eq!(st.rows_pos(&[p]).len(), 3);
    }
}
