//! An in-memory indexed triple store.
//!
//! Plays the role of the paper's Sesame repositories (Execution Trace and
//! Provenance triple stores of Figure 5). Three permutation indexes (SPO,
//! POS, OSP) give every single-bound lookup a sorted range scan; the
//! SPARQL-lite engine picks the index per pattern.

use std::collections::BTreeSet;

use crate::term::{Term, Triple};

/// Triple pattern component: bound term or wildcard.
pub type TermPattern = Option<Term>;

/// Indexed triple store.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    spo: BTreeSet<(Term, Term, Term)>,
    pos: BTreeSet<(Term, Term, Term)>,
    osp: BTreeSet<(Term, Term, Term)>,
}

impl TripleStore {
    /// Empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let Triple { s, p, o } = t;
        let fresh = self.spo.insert((s.clone(), p.clone(), o.clone()));
        if fresh {
            self.pos.insert((p.clone(), o.clone(), s.clone()));
            self.osp.insert((o, s, p));
        }
        fresh
    }

    /// Bulk insert.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo
            .contains(&(t.s.clone(), t.p.clone(), t.o.clone()))
    }

    /// All triples, in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo
            .iter()
            .map(|(s, p, o)| Triple::new(s.clone(), p.clone(), o.clone()))
    }

    /// Match a pattern, using the best index for the bound components.
    pub fn matching(
        &self,
        s: &TermPattern,
        p: &TermPattern,
        o: &TermPattern,
    ) -> Vec<Triple> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s.clone(), p.clone(), o.clone());
                if self.contains(&t) {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            (Some(s), _, _) => self
                .range_spo(s)
                .filter(|t| matches(&t.p, p) && matches(&t.o, o))
                .collect(),
            (None, Some(p), _) => self
                .range_pos(p)
                .filter(|t| matches(&t.o, o))
                .collect(),
            (None, None, Some(o)) => self.range_osp(o).collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    fn range_spo<'a>(&'a self, s: &Term) -> impl Iterator<Item = Triple> + 'a {
        let lo = (s.clone(), min_term(), min_term());
        let s2 = s.clone();
        self.spo
            .range(lo..)
            .take_while(move |(ts, _, _)| *ts == s2)
            .map(|(s, p, o)| Triple::new(s.clone(), p.clone(), o.clone()))
    }

    fn range_pos<'a>(&'a self, p: &Term) -> impl Iterator<Item = Triple> + 'a {
        let lo = (p.clone(), min_term(), min_term());
        let p2 = p.clone();
        self.pos
            .range(lo..)
            .take_while(move |(tp, _, _)| *tp == p2)
            .map(|(p, o, s)| Triple::new(s.clone(), p.clone(), o.clone()))
    }

    fn range_osp<'a>(&'a self, o: &Term) -> impl Iterator<Item = Triple> + 'a {
        let lo = (o.clone(), min_term(), min_term());
        let o2 = o.clone();
        self.osp
            .range(lo..)
            .take_while(move |(to, _, _)| *to == o2)
            .map(|(o, s, p)| Triple::new(s.clone(), p.clone(), o.clone()))
    }
}

fn matches(t: &Term, pat: &TermPattern) -> bool {
    pat.as_ref().map(|p| p == t).unwrap_or(true)
}

/// The smallest term in the derive(Ord) order (`Iri("")`).
fn min_term() -> Term {
    Term::Iri(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = TripleStore::new();
        assert!(st.insert(t("a", "p", "b")));
        assert!(!st.insert(t("a", "p", "b")));
        assert_eq!(st.len(), 1);
        assert!(st.contains(&t("a", "p", "b")));
    }

    #[test]
    fn pattern_matching_uses_all_shapes() {
        let mut st = TripleStore::new();
        st.extend([
            t("a", "p", "b"),
            t("a", "q", "c"),
            t("d", "p", "b"),
            t("d", "p", "e"),
        ]);
        assert_eq!(st.matching(&Some(Term::iri("a")), &None, &None).len(), 2);
        assert_eq!(st.matching(&None, &Some(Term::iri("p")), &None).len(), 3);
        assert_eq!(st.matching(&None, &None, &Some(Term::iri("b"))).len(), 2);
        assert_eq!(
            st.matching(&None, &Some(Term::iri("p")), &Some(Term::iri("b")))
                .len(),
            2
        );
        assert_eq!(
            st.matching(&Some(Term::iri("a")), &Some(Term::iri("p")), &Some(Term::iri("b")))
                .len(),
            1
        );
        assert_eq!(st.matching(&None, &None, &None).len(), 4);
    }

    #[test]
    fn literals_and_blanks_participate() {
        let mut st = TripleStore::new();
        st.insert(Triple::new(
            Term::Blank("b0".into()),
            Term::iri("p"),
            Term::lit("v"),
        ));
        assert_eq!(st.matching(&None, &None, &Some(Term::lit("v"))).len(), 1);
    }

    #[test]
    fn iter_yields_everything() {
        let mut st = TripleStore::new();
        st.extend([t("a", "p", "b"), t("c", "p", "d")]);
        assert_eq!(st.iter().count(), 2);
    }
}
