//! PROV-XML export.
//!
//! Section 8 of the paper: "By using the PROV ontology, the RDF
//! representation of provenance meta-data can easily [be] replaced [by]
//! other formats like PROV-XML." This module materialises the same graph
//! in the W3C PROV-XML vocabulary, reusing `weblab-xml` as the document
//! substrate (the exporter's output is itself a WebLab document, so it can
//! be stored in the Resource Repository like any other artefact).
//!
//! The emitted shape follows the PROV-XML schema:
//!
//! ```xml
//! <prov:document>
//!   <prov:entity prov:id="r8"/>
//!   <prov:activity prov:id="wl:call/Translator/t3">
//!     <prov:startTime>3</prov:startTime>
//!   </prov:activity>
//!   <prov:wasGeneratedBy>
//!     <prov:entity prov:ref="r8"/>
//!     <prov:activity prov:ref="wl:call/Translator/t3"/>
//!   </prov:wasGeneratedBy>
//!   <prov:wasDerivedFrom>
//!     <prov:generatedEntity prov:ref="r8"/>
//!     <prov:usedEntity prov:ref="r4"/>
//!   </prov:wasDerivedFrom>
//!   …
//! </prov:document>
//! ```

use weblab_prov::ProvenanceGraph;
use weblab_xml::Document;

use crate::vocab::{activity_iri, agent_iri};

/// Build a PROV-XML document for a provenance graph.
pub fn export_prov_xml(graph: &ProvenanceGraph) -> Document {
    let mut doc = Document::new("prov:document");
    let root = doc.root();
    doc.set_attr(root, "xmlns:prov", "http://www.w3.org/ns/prov#")
        .expect("root attr");

    // entities
    for s in &graph.sources {
        let e = doc.append_element(root, "prov:entity").expect("entity");
        doc.set_attr(e, "prov:id", s.uri.clone()).expect("attr");
    }
    // activities + associations, deduplicated by call
    let mut seen_calls: Vec<(String, u64)> = Vec::new();
    let mut seen_agents: Vec<String> = Vec::new();
    for s in &graph.sources {
        let key = (s.label.service.clone(), s.label.time);
        if !seen_calls.contains(&key) {
            seen_calls.push(key);
            let a = doc.append_element(root, "prov:activity").expect("activity");
            doc.set_attr(a, "prov:id", activity_iri(&s.label.service, s.label.time))
                .expect("attr");
            let t = doc.append_element(a, "prov:startTime").expect("time");
            doc.append_text(t, s.label.time.to_string()).expect("text");
        }
        if !seen_agents.contains(&s.label.service) {
            seen_agents.push(s.label.service.clone());
            let ag = doc.append_element(root, "prov:agent").expect("agent");
            doc.set_attr(ag, "prov:id", agent_iri(&s.label.service))
                .expect("attr");
        }
    }
    // wasGeneratedBy (the labelling function λ)
    for s in &graph.sources {
        let g = doc
            .append_element(root, "prov:wasGeneratedBy")
            .expect("wgb");
        let e = doc.append_element(g, "prov:entity").expect("ref");
        doc.set_attr(e, "prov:ref", s.uri.clone()).expect("attr");
        let a = doc.append_element(g, "prov:activity").expect("ref");
        doc.set_attr(a, "prov:ref", activity_iri(&s.label.service, s.label.time))
            .expect("attr");
    }
    // associations
    for (service, time) in &seen_calls {
        let assoc = doc
            .append_element(root, "prov:wasAssociatedWith")
            .expect("assoc");
        let a = doc.append_element(assoc, "prov:activity").expect("ref");
        doc.set_attr(a, "prov:ref", activity_iri(service, *time))
            .expect("attr");
        let ag = doc.append_element(assoc, "prov:agent").expect("ref");
        doc.set_attr(ag, "prov:ref", agent_iri(service)).expect("attr");
    }
    // wasDerivedFrom + used (the dependency edges E)
    for l in &graph.links {
        let d = doc
            .append_element(root, "prov:wasDerivedFrom")
            .expect("wdf");
        let ge = doc.append_element(d, "prov:generatedEntity").expect("ref");
        doc.set_attr(ge, "prov:ref", l.from_uri.clone()).expect("attr");
        let ue = doc.append_element(d, "prov:usedEntity").expect("ref");
        doc.set_attr(ue, "prov:ref", l.to_uri.clone()).expect("attr");
        if let Some(label) = graph.label_of(&l.from_uri) {
            let u = doc.append_element(root, "prov:used").expect("used");
            let a = doc.append_element(u, "prov:activity").expect("ref");
            doc.set_attr(a, "prov:ref", activity_iri(&label.service, label.time))
                .expect("attr");
            let e = doc.append_element(u, "prov:entity").expect("ref");
            doc.set_attr(e, "prov:ref", l.to_uri.clone()).expect("attr");
        }
    }
    doc
}

/// Parse a PROV-XML document back into `(generated, used)` derivation
/// pairs — the inverse of the edge part of [`export_prov_xml`], used for
/// round-trip verification and for importing graphs produced elsewhere.
pub fn derivations_from_prov_xml(doc: &Document) -> Vec<(String, String)> {
    let v = doc.view();
    let mut out = Vec::new();
    for n in v.descendants(doc.root()) {
        if v.name(n) != Some("prov:wasDerivedFrom") {
            continue;
        }
        let mut generated = None;
        let mut used = None;
        for &c in v.children(n) {
            match v.name(c) {
                Some("prov:generatedEntity") => {
                    generated = v.attr(c, "prov:ref").map(String::from)
                }
                Some("prov:usedEntity") => used = v.attr(c, "prov:ref").map(String::from),
                _ => {}
            }
        }
        if let (Some(g), Some(u)) = (generated, used) {
            out.push((g, u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, paper_example, EngineOptions};
    use weblab_xml::{parse_document, to_xml_string};

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(&doc, &trace, &rules, &EngineOptions::default())
    }

    #[test]
    fn export_contains_all_parts() {
        let g = graph();
        let doc = export_prov_xml(&g);
        let v = doc.view();
        // count *top-level* declarations (children of the root); refs are
        // nested inside relation elements
        let count = |name: &str| {
            v.children(doc.root())
                .iter()
                .filter(|&&n| v.name(n) == Some(name))
                .count()
        };
        assert_eq!(count("prov:entity"), g.sources.len());
        assert_eq!(count("prov:wasDerivedFrom"), g.links.len());
        assert_eq!(count("prov:wasGeneratedBy"), g.sources.len());
        // four distinct calls: Source t0, Normaliser t1, LE t2, Translator t3
        assert_eq!(count("prov:activity"), 4);
        assert_eq!(count("prov:wasAssociatedWith"), 4);
        assert_eq!(count("prov:agent"), 4); // four distinct services
    }

    #[test]
    fn derivations_round_trip_through_serialisation() {
        let g = graph();
        let doc = export_prov_xml(&g);
        let xml = to_xml_string(&doc.view());
        let back = parse_document(&xml).unwrap();
        let mut pairs = derivations_from_prov_xml(&back);
        pairs.sort();
        let mut expected: Vec<(String, String)> = g
            .links
            .iter()
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();
        expected.sort();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn empty_graph_is_a_valid_document() {
        let g = ProvenanceGraph::default();
        let doc = export_prov_xml(&g);
        assert_eq!(doc.view().children(doc.root()).len(), 0);
        assert!(derivations_from_prov_xml(&doc).is_empty());
    }
}
