//! The two-stage SPARQL-lite pipeline: cardinality-driven join planning,
//! then streaming id-space execution.
//!
//! **Stage 1 — planning** ([`compile`]). Query constants are resolved to
//! dictionary ids up front (a constant the store has never seen makes the
//! whole plan *dead* — provably empty, no execution). The BGP is then
//! ordered greedily by estimated output cardinality: exact prefix-range
//! counts where every restricting component is a constant, and
//! per-predicate / global distinct-count statistics from
//! [`TripleStore`] everywhere else. Each ordered pattern is compiled to a
//! [`Step`]: the permutation index whose sort order puts every
//! already-bound component in the range prefix (so the matching rows are
//! one contiguous slice found by binary search), plus the column → slot
//! bindings for the variables it introduces. Filters are compiled to
//! id-space comparisons and pushed down to the earliest step after which
//! both operands are bound.
//!
//! **Stage 2 — execution** ([`execute`]). Intermediate solutions are flat
//! `Vec<u32>` slot rows — no `Term` is cloned, hashed, or compared while
//! joining. Each step index-nested-loop joins its input rows against its
//! range slice; pushed-down filters prune rows the moment they are
//! checkable. Only at the very end are the *projected* slots sorted,
//! deduplicated (this is also where `SELECT DISTINCT` settles, still in
//! id space) and decoded to term [`Solution`]s, which are then ordered
//! exactly like the seed evaluator ordered them (term sort, `ORDER BY`
//! keys, `LIMIT`) so output stays byte-identical.
//!
//! [`QueryEngine`] wraps a shared store with a query-text → [`Plan`]
//! cache, so a serve daemon re-running the same query against one epoch
//! parses and plans it once (`rdf.plan.cache.*` counters).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use weblab_obs::Counter;

use crate::sparql::{parse_select, Filter, PatTerm, SelectQuery, Solution, SparqlError};
use crate::store::TripleStore;

/// Plans compiled (both by [`QueryEngine`] misses and the free-standing
/// [`crate::select`], which plans on every call).
static PLAN_BUILDS: Counter = Counter::new("rdf.plan.builds");
/// Plans found dead at compile time (a constant missing from the
/// dictionary, or an unsatisfiable filter) — executed as instant ∅.
static PLAN_DEAD: Counter = Counter::new("rdf.plan.dead");
/// Query texts answered from the engine's plan cache.
static PLAN_CACHE_HITS: Counter = Counter::new("rdf.plan.cache.hits");
/// Query texts that had to be parsed and planned.
static PLAN_CACHE_MISSES: Counter = Counter::new("rdf.plan.cache.misses");
/// Index range lookups performed while joining (one per input row per step).
static JOIN_PROBES: Counter = Counter::new("rdf.join.probes");
/// Candidate index rows scanned across all range slices.
static JOIN_SCANNED: Counter = Counter::new("rdf.join.scanned");
/// Intermediate solution rows emitted by join steps.
static JOIN_ROWS: Counter = Counter::new("rdf.join.rows");

/// Slot value of a not-yet-bound variable. Unreachable as a real id: the
/// dictionary refuses to assign it.
const UNBOUND: u32 = u32::MAX;

/// Which permutation index a step scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ix {
    Spo,
    Pos,
    Osp,
}

/// Where a prefix component's value comes from at execution time.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// A query constant, already resolved to its id.
    Const(u32),
    /// A variable bound by an earlier step.
    Slot(usize),
}

/// One compiled join step: probe `which` with `prefix`, then bind the
/// remaining columns into solution slots.
#[derive(Debug)]
struct Step {
    which: Ix,
    /// Range prefix, in the index's column order. Every component that is
    /// bound when this step runs lives here — the non-prefix columns are
    /// exactly the variables the step introduces.
    prefix: Vec<Src>,
    /// `(index column, slot)` for each newly bound variable.
    binds: Vec<(usize, usize)>,
    /// `(column a, column b)` equalities for a variable repeated within
    /// this pattern (e.g. `?x <p> ?x`).
    same: Vec<(usize, usize)>,
}

/// A filter compiled to id space, applied to rows of a specific step.
#[derive(Debug, Clone, Copy)]
struct CFilter {
    left: Src,
    right: Src,
    equal: bool,
}

/// A compiled query: join order, steps, pushed-down filters, projection.
/// Valid only against the store (dictionary) it was compiled for.
#[derive(Debug)]
pub(crate) struct Plan {
    query: SelectQuery,
    /// Provably empty at compile time.
    dead: bool,
    nvars: usize,
    steps: Vec<Step>,
    /// Filters to apply to the output rows of step `i`.
    filters_at: Vec<Vec<CFilter>>,
    /// Projected `(variable, slot)` pairs, sorted by variable name.
    project: Vec<(String, usize)>,
}

/// How one component of a pattern looks to the planner.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Comp<'a> {
    /// Constant with a resolved id.
    Id(u32),
    /// Variable already bound at this point of the join order.
    Bound(&'a str),
    /// Variable this pattern would introduce.
    Free(&'a str),
}

impl Comp<'_> {
    fn is_known(&self) -> bool {
        !matches!(self, Comp::Free(_))
    }
}

fn classify<'a>(t: &'a PatTerm, ids: &HashMap<&str, u32>, bound: &[&str]) -> Option<Comp<'a>> {
    match t {
        PatTerm::Const(c) => ids.get(term_key(c).as_str()).map(|&id| Comp::Id(id)),
        PatTerm::Var(v) if bound.contains(&v.as_str()) => Some(Comp::Bound(v)),
        PatTerm::Var(v) => Some(Comp::Free(v)),
    }
}

/// A collision-free map key for a constant term (terms of different kinds
/// can share text).
fn term_key(t: &crate::term::Term) -> String {
    t.to_string()
}

/// `c / d`, floored to 1 while any rows remain (an estimate of 0 is
/// reserved for provably empty ranges).
fn shrink(c: u64, d: u64) -> u64 {
    if c == 0 {
        0
    } else {
        (c / d.max(1)).max(1)
    }
}

/// Estimated result cardinality of one pattern under the current bound
/// set: exact range counts when the restricting components are constants,
/// statistics otherwise.
fn estimate(store: &TripleStore, s: Comp, p: Comp, o: Comp) -> u64 {
    let stats = store.stats();
    match p {
        Comp::Id(p) => {
            let ps = stats.preds.get(&p).copied().unwrap_or_default();
            match (s, o) {
                (Comp::Id(s), Comp::Id(o)) => store.rows_spo(&[s, p, o]).len() as u64,
                (Comp::Id(s), o) => {
                    let c = store.rows_spo(&[s, p]).len() as u64;
                    if o.is_known() {
                        shrink(c, ps.distinct_o)
                    } else {
                        c
                    }
                }
                (s, Comp::Id(o)) => {
                    let c = store.rows_pos(&[p, o]).len() as u64;
                    if s.is_known() {
                        shrink(c, ps.distinct_s)
                    } else {
                        c
                    }
                }
                (s, o) => {
                    let mut c = ps.rows;
                    if s.is_known() {
                        c = shrink(c, ps.distinct_s);
                    }
                    if o.is_known() {
                        c = shrink(c, ps.distinct_o);
                    }
                    c
                }
            }
        }
        p => {
            let mut c = match (s, o) {
                (Comp::Id(s), Comp::Id(o)) => store.rows_osp(&[o, s]).len() as u64,
                (Comp::Id(s), o) => {
                    let c = store.rows_spo(&[s]).len() as u64;
                    if o.is_known() {
                        shrink(c, stats.distinct_o)
                    } else {
                        c
                    }
                }
                (s, Comp::Id(o)) => {
                    let c = store.rows_osp(&[o]).len() as u64;
                    if s.is_known() {
                        shrink(c, stats.distinct_s)
                    } else {
                        c
                    }
                }
                (s, o) => {
                    let mut c = store.len() as u64;
                    if s.is_known() {
                        c = shrink(c, stats.distinct_s);
                    }
                    if o.is_known() {
                        c = shrink(c, stats.distinct_o);
                    }
                    c
                }
            };
            if matches!(p, Comp::Bound(_)) {
                c = shrink(c, stats.distinct_p);
            }
            c
        }
    }
}

/// Compile `query` against `store` (stage 1). Infallible: queries that
/// cannot match — unknown constants, unsatisfiable filters — produce a
/// dead plan rather than an error, mirroring the seed evaluator's
/// empty-result behaviour.
pub(crate) fn compile(store: &TripleStore, query: &SelectQuery) -> Plan {
    PLAN_BUILDS.inc();
    let dead = |query: &SelectQuery| {
        PLAN_DEAD.inc();
        Plan {
            query: query.clone(),
            dead: true,
            nvars: 0,
            steps: Vec::new(),
            filters_at: Vec::new(),
            project: Vec::new(),
        }
    };

    // resolve every pattern constant once; a miss means no stored triple
    // can ever match that pattern
    let mut ids: HashMap<String, u32> = HashMap::new();
    for pat in &query.patterns {
        for t in [&pat.s, &pat.p, &pat.o] {
            if let PatTerm::Const(c) = t {
                match store.dict().lookup(c) {
                    Some(id) => {
                        ids.insert(term_key(c), id);
                    }
                    None => return dead(query),
                }
            }
        }
    }
    let ids_ref: HashMap<&str, u32> = ids.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    // greedy join order: repeatedly take the cheapest remaining pattern
    let mut remaining: Vec<usize> = (0..query.patterns.len()).collect();
    let mut bound: Vec<&str> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    while !remaining.is_empty() {
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let pat = &query.patterns[i];
                let s = classify(&pat.s, &ids_ref, &bound).expect("consts resolved");
                let p = classify(&pat.p, &ids_ref, &bound).expect("consts resolved");
                let o = classify(&pat.o, &ids_ref, &bound).expect("consts resolved");
                (estimate(store, s, p, o), i)
            })
            .expect("non-empty");
        remaining.remove(pos);
        order.push(idx);
        let pat = &query.patterns[idx];
        for t in [&pat.s, &pat.p, &pat.o] {
            if let PatTerm::Var(v) = t {
                if !bound.contains(&v.as_str()) {
                    bound.push(v);
                }
            }
        }
    }

    // slot assignment in join order, and per-step compilation
    let mut slots: HashMap<&str, usize> = HashMap::new();
    let mut bound_after: HashMap<&str, usize> = HashMap::new(); // var → step idx
    let mut steps = Vec::with_capacity(order.len());
    for (step_idx, &idx) in order.iter().enumerate() {
        let pat = &query.patterns[idx];
        let comps = [&pat.s, &pat.p, &pat.o];
        let known: Vec<bool> = comps
            .iter()
            .map(|t| match t {
                PatTerm::Const(_) => true,
                PatTerm::Var(v) => slots.contains_key(v.as_str()),
            })
            .collect();
        // the permutation whose column order puts every known component
        // first, so all of them land in the binary-searched prefix
        let (which, cols): (Ix, [usize; 3]) = match (known[0], known[1], known[2]) {
            (true, true, _) | (true, false, false) | (false, false, false) => {
                (Ix::Spo, [0, 1, 2])
            }
            (false, true, _) => (Ix::Pos, [1, 2, 0]),
            (_, false, true) => (Ix::Osp, [2, 0, 1]),
        };
        let mut prefix = Vec::new();
        let mut binds: Vec<(usize, usize)> = Vec::new();
        let mut same: Vec<(usize, usize)> = Vec::new();
        let mut fresh: HashMap<&str, usize> = HashMap::new(); // var → column
        for (col, &logical) in cols.iter().enumerate() {
            match comps[logical] {
                PatTerm::Const(c) => {
                    debug_assert_eq!(col, prefix.len(), "knowns form the prefix");
                    prefix.push(Src::Const(ids_ref[term_key(c).as_str()]));
                }
                PatTerm::Var(v) => {
                    // a variable this pattern just introduced is handled
                    // as a column equality, not a slot probe
                    if let Some(&first_col) = fresh.get(v.as_str()) {
                        same.push((first_col, col));
                    } else if let Some(&slot) = slots.get(v.as_str()) {
                        debug_assert_eq!(col, prefix.len(), "knowns form the prefix");
                        prefix.push(Src::Slot(slot));
                    } else {
                        let slot = slots.len();
                        slots.insert(v, slot);
                        bound_after.insert(v, step_idx);
                        fresh.insert(v, col);
                        binds.push((col, slot));
                    }
                }
            }
        }
        steps.push(Step {
            which,
            prefix,
            binds,
            same,
        });
    }

    // filters → id space, pushed to the first step where both sides are
    // bound; filters the seed engine could never satisfy kill the plan
    let mut filters_at: Vec<Vec<CFilter>> = steps.iter().map(|_| Vec::new()).collect();
    for f in &query.filters {
        match compile_filter(store, f, &slots) {
            FilterOutcome::AlwaysTrue => {}
            FilterOutcome::AlwaysFalse => return dead(query),
            FilterOutcome::Check(cf) => {
                let due = [cf.left, cf.right]
                    .iter()
                    .filter_map(|src| match src {
                        Src::Slot(s) => Some(*s),
                        Src::Const(_) => None,
                    })
                    .map(|slot| {
                        *slots
                            .iter()
                            .find(|(_, &s)| s == slot)
                            .and_then(|(v, _)| bound_after.get(v))
                            .expect("slot has a binding step")
                    })
                    .max()
                    .expect("Check has at least one slot");
                filters_at[due].push(cf);
            }
        }
    }

    // projection: the requested vars that exist in the BGP (all bound
    // vars for SELECT *), keyed in name order like the seed's BTreeMap
    let mut project: Vec<(String, usize)> = if query.vars.is_empty() {
        slots.iter().map(|(v, &s)| (v.to_string(), s)).collect()
    } else {
        let mut seen = Vec::new();
        query
            .vars
            .iter()
            .filter(|v| {
                if seen.contains(v) {
                    false
                } else {
                    seen.push(v);
                    true
                }
            })
            .filter_map(|v| slots.get(v.as_str()).map(|&s| (v.clone(), s)))
            .collect()
    };
    project.sort_by(|a, b| a.0.cmp(&b.0));

    Plan {
        query: query.clone(),
        dead: false,
        nvars: slots.len(),
        steps,
        filters_at,
        project,
    }
}

enum FilterOutcome {
    AlwaysTrue,
    AlwaysFalse,
    Check(CFilter),
}

fn compile_filter(store: &TripleStore, f: &Filter, slots: &HashMap<&str, usize>) -> FilterOutcome {
    // seed semantics: a filter whose operand is unbound drops the
    // solution, and every BGP variable is bound in every solution — so a
    // variable outside the BGP makes the filter (and query) unsatisfiable
    let side = |t: &PatTerm| match t {
        PatTerm::Const(c) => Ok(store.dict().lookup(c)),
        PatTerm::Var(v) => match slots.get(v.as_str()) {
            Some(&s) => Err(s),
            None => Err(usize::MAX),
        },
    };
    let (l, r) = (side(&f.left), side(&f.right));
    if l == Err(usize::MAX) || r == Err(usize::MAX) {
        return FilterOutcome::AlwaysFalse;
    }
    match (l, r) {
        // two constants: decide now, in term space (they may be foreign
        // to the dictionary yet still equal to each other)
        (Ok(_), Ok(_)) => {
            let (PatTerm::Const(a), PatTerm::Const(b)) = (&f.left, &f.right) else {
                unreachable!("Ok sides are constants");
            };
            if (a == b) == f.equal {
                FilterOutcome::AlwaysTrue
            } else {
                FilterOutcome::AlwaysFalse
            }
        }
        // variable vs constant the store has never seen: can never be
        // equal to any bound value
        (Err(_), Ok(None)) | (Ok(None), Err(_)) => {
            if f.equal {
                FilterOutcome::AlwaysFalse
            } else {
                FilterOutcome::AlwaysTrue
            }
        }
        (Err(a), Ok(Some(c))) | (Ok(Some(c)), Err(a)) => FilterOutcome::Check(CFilter {
            left: Src::Slot(a),
            right: Src::Const(c),
            equal: f.equal,
        }),
        (Err(a), Err(b)) => FilterOutcome::Check(CFilter {
            left: Src::Slot(a),
            right: Src::Slot(b),
            equal: f.equal,
        }),
    }
}

/// Execute a compiled plan (stage 2).
pub(crate) fn execute(store: &TripleStore, plan: &Plan) -> Vec<Solution> {
    if plan.dead {
        return Vec::new();
    }
    let mut rows: Vec<Vec<u32>> = vec![vec![UNBOUND; plan.nvars]];
    for (step, filters) in plan.steps.iter().zip(&plan.filters_at) {
        let mut next: Vec<Vec<u32>> = Vec::new();
        let mut prefix: Vec<u32> = Vec::with_capacity(step.prefix.len());
        for row in &rows {
            prefix.clear();
            prefix.extend(step.prefix.iter().map(|src| match src {
                Src::Const(c) => *c,
                Src::Slot(s) => row[*s],
            }));
            let slice = match step.which {
                Ix::Spo => store.rows_spo(&prefix),
                Ix::Pos => store.rows_pos(&prefix),
                Ix::Osp => store.rows_osp(&prefix),
            };
            JOIN_PROBES.inc();
            JOIN_SCANNED.add(slice.len() as u64);
            'rows: for r in slice {
                for &(a, b) in &step.same {
                    if r[a] != r[b] {
                        continue 'rows;
                    }
                }
                let mut nr = row.clone();
                for &(col, slot) in &step.binds {
                    nr[slot] = r[col];
                }
                for cf in filters {
                    let v = |src: Src| match src {
                        Src::Const(c) => c,
                        Src::Slot(s) => nr[s],
                    };
                    if (v(cf.left) == v(cf.right)) != cf.equal {
                        continue 'rows;
                    }
                }
                next.push(nr);
            }
        }
        JOIN_ROWS.add(next.len() as u64);
        rows = next;
        if rows.is_empty() {
            return Vec::new();
        }
    }

    // project + dedup while still in id space (ids ↔ terms are a
    // bijection, so id dedup is exactly the seed's term dedup; SELECT
    // DISTINCT is subsumed by it)
    let mut proj: Vec<Vec<u32>> = rows
        .iter()
        .map(|row| plan.project.iter().map(|&(_, s)| row[s]).collect())
        .collect();
    proj.sort_unstable();
    proj.dedup();

    // decode only the surviving projected rows
    let mut out: Vec<Solution> = proj
        .into_iter()
        .map(|ids| {
            plan.project
                .iter()
                .zip(ids)
                .map(|((name, _), id)| (name.clone(), store.dict().term(id).clone()))
                .collect()
        })
        .collect();
    out.sort_unstable();
    if !plan.query.order_by.is_empty() {
        // total order (falls back to whole-solution comparison), so the
        // result matches the seed's sort-then-stable-sort sequence
        out.sort_by(|a, b| {
            for v in &plan.query.order_by {
                let ord = a.get(v).cmp(&b.get(v));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        });
    }
    if let Some(limit) = plan.query.limit {
        out.truncate(limit);
    }
    out
}

/// A shared [`TripleStore`] plus a query-text → [`Plan`] cache.
///
/// One engine serves one store epoch: plans embed dictionary ids, so the
/// platform builds a fresh engine per published snapshot and the serve
/// workers share it through an `Arc`. The cache lock is held across
/// parse + compile, which keeps the `rdf.plan.*` counters deterministic
/// under any number of concurrent workers: each distinct query text is
/// planned exactly once per epoch.
#[derive(Debug)]
pub struct QueryEngine {
    store: Arc<TripleStore>,
    plans: Mutex<HashMap<String, Arc<Plan>>>,
}

impl QueryEngine {
    /// Wrap a store in a fresh (empty-cache) engine.
    pub fn new(store: Arc<TripleStore>) -> Self {
        QueryEngine {
            store,
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<TripleStore> {
        &self.store
    }

    /// Parse, plan (or reuse a cached plan) and run a SELECT query.
    pub fn select(&self, text: &str) -> Result<Vec<Solution>, SparqlError> {
        let plan = {
            let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
            match plans.get(text) {
                Some(plan) => {
                    PLAN_CACHE_HITS.inc();
                    Arc::clone(plan)
                }
                None => {
                    PLAN_CACHE_MISSES.inc();
                    let query = parse_select(text)?;
                    let plan = Arc::new(compile(&self.store, &query));
                    plans.insert(text.to_string(), Arc::clone(&plan));
                    plan
                }
            }
        };
        Ok(execute(&self.store, &plan))
    }

    /// Number of distinct query texts planned so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::select;
    use crate::term::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn chain_store() -> TripleStore {
        // r0 → r1 → r2 → r3 derivation chain plus per-node type triples
        let mut st = TripleStore::new();
        for i in 0..4 {
            st.insert(t(&format!("r{i}"), "type", "Entity"));
            if i > 0 {
                st.insert(t(&format!("r{i}"), "from", &format!("r{}", i - 1)));
            }
        }
        st
    }

    #[test]
    fn planner_orders_selective_patterns_first() {
        let store = chain_store();
        let q = parse_select(
            "SELECT ?a ?b WHERE { ?a <type> <Entity> . ?a <from> ?b . ?b <from> <r0> . }",
        )
        .unwrap();
        let plan = compile(&store, &q);
        // the ?b <from> <r0> pattern has an exact count of 1 and must run
        // first; its step probes POS with a fully-constant prefix
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.steps[0].which, Ix::Pos);
        assert_eq!(plan.steps[0].prefix.len(), 2);
        let sols = execute(&store, &plan);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["a"], Term::iri("r2"));
        assert_eq!(sols[0]["b"], Term::iri("r1"));
    }

    #[test]
    fn unknown_constant_makes_a_dead_plan() {
        let store = chain_store();
        let q = parse_select("SELECT ?x WHERE { ?x <from> <nowhere> . }").unwrap();
        let plan = compile(&store, &q);
        assert!(plan.dead);
        assert!(execute(&store, &plan).is_empty());
    }

    #[test]
    fn repeated_variable_within_a_pattern_means_equality() {
        let mut store = chain_store();
        store.insert(t("loop", "from", "loop"));
        let q = parse_select("SELECT ?x WHERE { ?x <from> ?x . }").unwrap();
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["x"], Term::iri("loop"));
    }

    #[test]
    fn filters_are_pushed_down_and_match_seed_semantics() {
        let store = chain_store();
        let q = parse_select(
            "SELECT ?a ?b WHERE { ?a <from> ?b . FILTER(?b != <r0>) FILTER(?a != ?b) }",
        )
        .unwrap();
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 2);
        assert!(sols.iter().all(|s| s["b"] != Term::iri("r0")));
        // a filter over a variable outside the BGP drops everything
        let q = parse_select("SELECT ?a WHERE { ?a <from> ?b . FILTER(?zz = <r0>) }").unwrap();
        assert!(select(&store, &q).is_empty());
        // != against a constant the store has never seen always passes
        let q = parse_select("SELECT ?a WHERE { ?a <from> ?b . FILTER(?a != <mars>) }").unwrap();
        assert_eq!(select(&store, &q).len(), 3);
    }

    #[test]
    fn engine_caches_plans_per_query_text() {
        let store = Arc::new(chain_store());
        let engine = QueryEngine::new(store);
        let text = "SELECT ?x WHERE { ?x <type> <Entity> . }";
        let a = engine.select(text).unwrap();
        let b = engine.select(text).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(engine.cached_plans(), 1);
        engine.select("SELECT ?x WHERE { ?x <from> <r0> . }").unwrap();
        assert_eq!(engine.cached_plans(), 2);
        // parse errors are reported, not cached
        assert!(engine.select("SELEKT").is_err());
        assert_eq!(engine.cached_plans(), 2);
    }

    #[test]
    fn empty_bgp_yields_one_empty_solution() {
        let store = chain_store();
        let q = parse_select("SELECT * WHERE { }").unwrap();
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }
}
