//! SPARQL-lite: SELECT queries over basic graph patterns with filters.
//!
//! Covers what the paper's Request Manager needs from its "SPARQL
//! endpoints for querying generated provenance graphs": `PREFIX`
//! declarations, `SELECT` (optionally `DISTINCT`) with a projection list
//! or `*`, a basic graph pattern with variables in any position, `a` for
//! `rdf:type`, equality/inequality `FILTER`s, `ORDER BY` and `LIMIT`.
//!
//! This module owns the surface syntax: the AST ([`SelectQuery`] and
//! friends) and the parser. Evaluation lives in [`crate::plan`] as a
//! two-stage pipeline — a cardinality-driven join planner over the
//! store's columnar indexes, then streaming id-space join execution —
//! and the [`select`] function here is the stable façade over it.

use std::collections::BTreeMap;
use std::fmt;

use crate::plan;
use crate::store::TripleStore;
use crate::term::Term;
use crate::vocab::RDF_TYPE;

/// A solution mapping: variable name → term.
pub type Solution = BTreeMap<String, Term>;

/// A pattern component: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTerm {
    /// `?name`.
    Var(String),
    /// A constant term.
    Const(Term),
}

/// One triple pattern of the BGP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject.
    pub s: PatTerm,
    /// Predicate.
    pub p: PatTerm,
    /// Object.
    pub o: PatTerm,
}

/// An equality/inequality filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Left operand.
    pub left: PatTerm,
    /// `true` for `=`, `false` for `!=`.
    pub equal: bool,
    /// Right operand.
    pub right: PatTerm,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// Projected variables; empty = `SELECT *`.
    pub vars: Vec<String>,
    /// `SELECT DISTINCT`: deduplicate projected solutions (performed in
    /// id space before any term is decoded).
    pub distinct: bool,
    /// Basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// Filters.
    pub filters: Vec<Filter>,
    /// `ORDER BY` variables (lexicographic by term ordering).
    pub order_by: Vec<String>,
    /// `LIMIT` on the number of solutions.
    pub limit: Option<usize>,
}

/// SPARQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sparql parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SparqlError {}

/// Parse a SELECT query.
pub fn parse_select(input: &str) -> Result<SelectQuery, SparqlError> {
    let mut p = SP {
        input,
        pos: 0,
        prefixes: BTreeMap::new(),
    };
    p.query()
}

/// Run a SELECT query over a store. Solutions are restricted to the
/// projected variables (all bound variables for `SELECT *`), deduplicated
/// and sorted for deterministic output.
///
/// Plans on every call; long-lived callers that repeat query texts
/// against one store should use [`crate::QueryEngine`], which caches
/// compiled plans.
pub fn select(store: &TripleStore, query: &SelectQuery) -> Vec<Solution> {
    let plan = plan::compile(store, query);
    plan::execute(store, &plan)
}

struct SP<'a> {
    input: &'a str,
    pos: usize,
    prefixes: BTreeMap<String, String>,
}

impl<'a> SP<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn err(&self, m: impl Into<String>) -> SparqlError {
        SparqlError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn eat_ci(&mut self, kw: &str) -> bool {
        let r = self.rest();
        if r.len() >= kw.len() && r[..kw.len()].eq_ignore_ascii_case(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, SparqlError> {
        let r = self.rest();
        let end = r
            .find(|c: char| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.')))
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        self.pos += end;
        Ok(r[..end].to_string())
    }

    fn query(&mut self) -> Result<SelectQuery, SparqlError> {
        self.ws();
        while self.eat_ci("PREFIX") {
            self.ws();
            let name = self.name().unwrap_or_default();
            if !self.eat(":") {
                return Err(self.err("expected ':' after prefix name"));
            }
            self.ws();
            if !self.eat("<") {
                return Err(self.err("expected '<'"));
            }
            let r = self.rest();
            let end = r.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
            let ns = r[..end].to_string();
            self.pos += end + 1;
            self.prefixes.insert(name, ns);
            self.ws();
        }
        if !self.eat_ci("SELECT") {
            return Err(self.err("expected SELECT"));
        }
        self.ws();
        let distinct = self.eat_ci("DISTINCT");
        if distinct {
            self.ws();
        }
        let mut vars = Vec::new();
        if self.eat("*") {
            self.ws();
        } else {
            while self.eat("?") {
                vars.push(self.name()?);
                self.ws();
            }
            if vars.is_empty() {
                return Err(self.err("expected projection variables or '*'"));
            }
        }
        if !self.eat_ci("WHERE") {
            return Err(self.err("expected WHERE"));
        }
        self.ws();
        if !self.eat("{") {
            return Err(self.err("expected '{'"));
        }
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            self.ws();
            if self.eat("}") {
                break;
            }
            if self.eat_ci("FILTER") {
                self.ws();
                if !self.eat("(") {
                    return Err(self.err("expected '('"));
                }
                self.ws();
                let left = self.pat_term()?;
                self.ws();
                let equal = if self.eat("!=") {
                    false
                } else if self.eat("=") {
                    true
                } else {
                    return Err(self.err("expected '=' or '!='"));
                };
                self.ws();
                let right = self.pat_term()?;
                self.ws();
                if !self.eat(")") {
                    return Err(self.err("expected ')'"));
                }
                self.ws();
                self.eat(".");
                filters.push(Filter { left, equal, right });
                continue;
            }
            let s = self.pat_term()?;
            self.ws();
            let p = self.pat_term()?;
            self.ws();
            let o = self.pat_term()?;
            self.ws();
            self.eat(".");
            patterns.push(TriplePattern { s, p, o });
        }
        self.ws();
        let mut order_by = Vec::new();
        if self.eat_ci("ORDER") {
            self.ws();
            if !self.eat_ci("BY") {
                return Err(self.err("expected BY after ORDER"));
            }
            loop {
                self.ws();
                if self.eat("?") {
                    order_by.push(self.name()?);
                } else {
                    break;
                }
            }
            if order_by.is_empty() {
                return Err(self.err("expected at least one ?var after ORDER BY"));
            }
        }
        self.ws();
        let mut limit = None;
        if self.eat_ci("LIMIT") {
            self.ws();
            let r = self.rest();
            let end = r
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(r.len());
            if end == 0 {
                return Err(self.err("expected a number after LIMIT"));
            }
            limit = Some(r[..end].parse().map_err(|_| self.err("limit overflow"))?);
            self.pos += end;
        }
        Ok(SelectQuery {
            vars,
            distinct,
            patterns,
            filters,
            order_by,
            limit,
        })
    }

    fn pat_term(&mut self) -> Result<PatTerm, SparqlError> {
        self.ws();
        if self.eat("?") {
            return Ok(PatTerm::Var(self.name()?));
        }
        if self.eat("<") {
            let r = self.rest();
            let end = r.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
            let iri = r[..end].to_string();
            self.pos += end + 1;
            return Ok(PatTerm::Const(Term::Iri(iri)));
        }
        if self.eat("\"") {
            let r = self.rest();
            let end = r
                .find('"')
                .ok_or_else(|| self.err("unterminated literal"))?;
            let value = r[..end].to_string();
            self.pos += end + 1;
            if self.eat("^^<") {
                let r = self.rest();
                let end = r.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
                let dt = r[..end].to_string();
                self.pos += end + 1;
                return Ok(PatTerm::Const(Term::typed(value, dt)));
            }
            return Ok(PatTerm::Const(Term::lit(value)));
        }
        // 'a' or prefixed name
        let r = self.rest();
        if r.starts_with('a')
            && r[1..]
                .chars()
                .next()
                .map(|c| c.is_whitespace())
                .unwrap_or(false)
        {
            self.pos += 1;
            return Ok(PatTerm::Const(Term::iri(RDF_TYPE)));
        }
        let end = r
            .find(|c: char| c.is_whitespace() || matches!(c, '.' | '}' | ')' | '=' | '!'))
            .unwrap_or(r.len());
        let token = &r[..end];
        let Some(colon) = token.find(':') else {
            return Err(self.err(format!("unrecognised token {token:?}")));
        };
        let (prefix, local) = (&token[..colon], &token[colon + 1..]);
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("unknown prefix {prefix:?}")))?
            .clone();
        self.pos += end;
        Ok(PatTerm::Const(Term::Iri(format!("{ns}{local}"))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_prov_into;
    use crate::vocab::{activity_iri, PROV_NS};
    use weblab_prov::{infer_provenance, paper_example, EngineOptions};

    fn paper_store() -> TripleStore {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut store = TripleStore::new();
        export_prov_into(&graph, &mut store);
        store
    }

    #[test]
    fn what_did_the_translator_use() {
        let store = paper_store();
        let q = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> \
             SELECT ?used WHERE {{ <{}> prov:used ?used . }}",
            activity_iri("Translator", 3)
        ))
        .unwrap();
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["used"], Term::iri("r4"));
    }

    #[test]
    fn derivation_chain_join() {
        let store = paper_store();
        // what did r8's inputs themselves derive from?
        let q = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> \
             SELECT ?mid ?origin WHERE {{ \
               <r8> prov:wasDerivedFrom ?mid . \
               ?mid prov:wasDerivedFrom ?origin . }}"
        ))
        .unwrap();
        let sols = select(&store, &q);
        // r8 → r4 → r3
        assert!(sols
            .iter()
            .any(|s| s["mid"] == Term::iri("r4") && s["origin"] == Term::iri("r3")));
    }

    #[test]
    fn select_star_and_filters() {
        let store = paper_store();
        let q = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> \
             SELECT * WHERE {{ ?e a prov:Entity . FILTER(?e != <r8>) }}"
        ))
        .unwrap();
        let sols = select(&store, &q);
        assert!(!sols.is_empty());
        assert!(sols.iter().all(|s| s["e"] != Term::iri("r8")));
    }

    #[test]
    fn type_keyword_a_and_literals() {
        let mut store = TripleStore::new();
        store.insert(crate::term::Triple::new(
            Term::iri("x"),
            Term::iri(RDF_TYPE),
            Term::iri("T"),
        ));
        store.insert(crate::term::Triple::new(
            Term::iri("x"),
            Term::iri("p"),
            Term::lit("v"),
        ));
        let q = parse_select("SELECT ?s WHERE { ?s a <T> . ?s <p> \"v\" . }").unwrap();
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["s"], Term::iri("x"));
    }

    #[test]
    fn unbound_query_returns_nothing() {
        let store = TripleStore::new();
        let q = parse_select("SELECT ?s WHERE { ?s <p> ?o . }").unwrap();
        assert!(select(&store, &q).is_empty());
    }

    #[test]
    fn order_by_and_limit() {
        let store = paper_store();
        let q = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> \
             SELECT ?e WHERE {{ ?e a prov:Entity . }} ORDER BY ?e LIMIT 2"
        ))
        .unwrap();
        assert_eq!(q.order_by, vec!["e".to_string()]);
        assert_eq!(q.limit, Some(2));
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 2);
        // sorted ascending by term
        assert!(sols[0]["e"] <= sols[1]["e"]);
        // LIMIT 0 yields nothing
        let q0 = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> SELECT ?e WHERE {{ ?e a prov:Entity . }} LIMIT 0"
        ))
        .unwrap();
        assert!(select(&store, &q0).is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_select("SELEKT ?a WHERE { }").is_err());
        assert!(parse_select("SELECT WHERE { }").is_err());
        assert!(parse_select("SELECT ?a WHERE { zz:a zz:b zz:c . }").is_err());
        assert!(parse_select("SELECT DISTINCT WHERE { }").is_err());
    }

    #[test]
    fn projection_restricts_solutions() {
        let store = paper_store();
        let q = parse_select(&format!(
            "PREFIX prov: <{PROV_NS}> \
             SELECT ?g WHERE {{ ?e prov:wasGeneratedBy ?g . }}"
        ))
        .unwrap();
        let sols = select(&store, &q);
        assert!(sols.iter().all(|s| s.len() == 1 && s.contains_key("g")));
    }

    #[test]
    fn distinct_parses_and_dedups() {
        let q = parse_select("SELECT DISTINCT ?g WHERE { ?e <g> ?g . }").unwrap();
        assert!(q.distinct);
        assert_eq!(q.vars, vec!["g".to_string()]);
        let q_star = parse_select("SELECT DISTINCT * WHERE { ?e <g> ?g . }").unwrap();
        assert!(q_star.distinct && q_star.vars.is_empty());
        // case-insensitive like the other keywords
        assert!(parse_select("select distinct ?g where { ?e <g> ?g . }")
            .unwrap()
            .distinct);
        // a variable named "DISTINCTish" is not the keyword
        let q_var = parse_select("SELECT ?DISTINCTvar WHERE { ?DISTINCTvar <g> ?g . }");
        assert!(q_var.is_ok());

        let mut store = TripleStore::new();
        for (s, o) in [("a", "x"), ("b", "x"), ("c", "y")] {
            store.insert(crate::term::Triple::new(
                Term::iri(s),
                Term::iri("g"),
                Term::iri(o),
            ));
        }
        let sols = select(&store, &q);
        assert_eq!(sols.len(), 2, "DISTINCT collapses equal projections");
        assert_eq!(sols[0]["g"], Term::iri("x"));
        assert_eq!(sols[1]["g"], Term::iri("y"));
    }
}
