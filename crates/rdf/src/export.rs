//! Exporting provenance graphs to RDF-PROV (PROV-O).
//!
//! The mapping follows the paper's architecture (Section 6): the
//! Provenance triple store holds the graph in the PROV ontology, queryable
//! through SPARQL.
//!
//! | WebLab PROV concept            | PROV-O                               |
//! |--------------------------------|--------------------------------------|
//! | labelled resource `r`          | `prov:Entity` (IRI = resource URI)   |
//! | service call `(s, t)` = `λ(r)` | `prov:Activity` + `prov:startedAtTime` |
//! | service `s`                    | `prov:Agent` via `prov:wasAssociatedWith` |
//! | `λ(r) = c`                     | `r prov:wasGeneratedBy c`            |
//! | edge `r → r'` ∈ E              | `r prov:wasDerivedFrom r'` and `λ(r) prov:used r'` |

use weblab_prov::{ProvLink, ProvenanceGraph, SourceEntry};
use weblab_xml::CallLabel;

use crate::store::TripleStore;
use crate::term::{Term, Triple};
use crate::vocab::{
    activity_iri, agent_iri, PROV_ACTIVITY, PROV_AGENT, PROV_ENTITY, PROV_STARTED_AT_TIME,
    PROV_USED, PROV_WAS_ASSOCIATED_WITH, PROV_WAS_DERIVED_FROM, PROV_WAS_GENERATED_BY, RDF_TYPE,
};

/// The PROV-O triples describing one Source row: the entity, its
/// generating activity and agent with their types, and the
/// `wasGeneratedBy` / `wasAssociatedWith` / `startedAtTime` edges. Shared
/// by the batch exporter and the live store so both emit identical shapes.
pub fn source_triples(s: &SourceEntry) -> Vec<Triple> {
    let type_iri = Term::iri(RDF_TYPE);
    let entity = Term::iri(&s.uri);
    let activity = Term::iri(activity_iri(&s.label.service, s.label.time));
    let agent = Term::iri(agent_iri(&s.label.service));
    vec![
        Triple::new(entity.clone(), type_iri.clone(), Term::iri(PROV_ENTITY)),
        Triple::new(activity.clone(), type_iri.clone(), Term::iri(PROV_ACTIVITY)),
        Triple::new(agent.clone(), type_iri, Term::iri(PROV_AGENT)),
        Triple::new(entity, Term::iri(PROV_WAS_GENERATED_BY), activity.clone()),
        Triple::new(
            activity.clone(),
            Term::iri(PROV_WAS_ASSOCIATED_WITH),
            agent,
        ),
        Triple::new(
            activity,
            Term::iri(PROV_STARTED_AT_TIME),
            Term::int(s.label.time as i64),
        ),
    ]
}

/// The PROV-O triples describing one dependency link: `wasDerivedFrom`,
/// plus `<activity> prov:used <source>` when the dependent endpoint's
/// generating call is known.
pub fn link_triples(l: &ProvLink, label: Option<&CallLabel>) -> Vec<Triple> {
    let mut out = vec![Triple::new(
        Term::iri(&l.from_uri),
        Term::iri(PROV_WAS_DERIVED_FROM),
        Term::iri(&l.to_uri),
    )];
    // the generating activity used the source entity
    if let Some(label) = label {
        out.push(Triple::new(
            Term::iri(activity_iri(&label.service, label.time)),
            Term::iri(PROV_USED),
            Term::iri(&l.to_uri),
        ));
    }
    out
}

/// Convert a provenance graph into PROV-O triples.
pub fn export_prov(graph: &ProvenanceGraph) -> Vec<Triple> {
    let mut out = Vec::new();
    for s in &graph.sources {
        out.extend(source_triples(s));
    }
    for l in &graph.links {
        out.extend(link_triples(l, graph.label_of(&l.from_uri)));
    }
    out
}

/// Export directly into a [`TripleStore`], returning the triple count.
pub fn export_prov_into(graph: &ProvenanceGraph, store: &mut TripleStore) -> usize {
    let triples = export_prov(graph);
    let n = triples.len();
    store.extend(triples);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, paper_example, EngineOptions};

    #[test]
    fn paper_example_exports_expected_shapes() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut store = TripleStore::new();
        export_prov_into(&graph, &mut store);

        // r8 wasDerivedFrom r4 (Example 7)
        assert!(store.contains(&Triple::new(
            Term::iri("r8"),
            Term::iri(PROV_WAS_DERIVED_FROM),
            Term::iri("r4"),
        )));
        // the Translator call used r4
        assert!(store.contains(&Triple::new(
            Term::iri(activity_iri("Translator", 3)),
            Term::iri(PROV_USED),
            Term::iri("r4"),
        )));
        // r8 wasGeneratedBy the Translator call
        assert!(store.contains(&Triple::new(
            Term::iri("r8"),
            Term::iri(PROV_WAS_GENERATED_BY),
            Term::iri(activity_iri("Translator", 3)),
        )));
        // every labelled resource is an Entity
        let entities = store.matching(
            &None,
            &Some(Term::iri(RDF_TYPE)),
            &Some(Term::iri(PROV_ENTITY)),
        );
        assert_eq!(entities.len(), graph.sources.len());
    }

    #[test]
    fn export_into_is_idempotent() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut store = TripleStore::new();
        let n1 = export_prov_into(&graph, &mut store);
        let total = store.len();
        let n2 = export_prov_into(&graph, &mut store);
        assert_eq!(n1, n2);
        assert_eq!(store.len(), total); // no duplicates
    }
}
