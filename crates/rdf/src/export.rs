//! Exporting provenance graphs to RDF-PROV (PROV-O).
//!
//! The mapping follows the paper's architecture (Section 6): the
//! Provenance triple store holds the graph in the PROV ontology, queryable
//! through SPARQL.
//!
//! | WebLab PROV concept            | PROV-O                               |
//! |--------------------------------|--------------------------------------|
//! | labelled resource `r`          | `prov:Entity` (IRI = resource URI)   |
//! | service call `(s, t)` = `λ(r)` | `prov:Activity` + `prov:startedAtTime` |
//! | service `s`                    | `prov:Agent` via `prov:wasAssociatedWith` |
//! | `λ(r) = c`                     | `r prov:wasGeneratedBy c`            |
//! | edge `r → r'` ∈ E              | `r prov:wasDerivedFrom r'` and `λ(r) prov:used r'` |

use weblab_prov::{ProvLink, ProvenanceGraph, SourceEntry};
use weblab_xml::CallLabel;

use crate::store::TripleStore;
use crate::term::{Term, Triple};
use crate::vocab::{
    activity_iri, agent_iri, PROV_ACTIVITY, PROV_AGENT, PROV_ENTITY, PROV_STARTED_AT_TIME,
    PROV_USED, PROV_WAS_ASSOCIATED_WITH, PROV_WAS_DERIVED_FROM, PROV_WAS_GENERATED_BY, RDF_TYPE,
};

/// The PROV-O triples describing one Source row: the entity, its
/// generating activity and agent with their types, and the
/// `wasGeneratedBy` / `wasAssociatedWith` / `startedAtTime` edges. Shared
/// by the batch exporter and the live store so both emit identical shapes.
pub fn source_triples(s: &SourceEntry) -> Vec<Triple> {
    let type_iri = Term::iri(RDF_TYPE);
    let entity = Term::iri(&s.uri);
    let activity = Term::iri(activity_iri(&s.label.service, s.label.time));
    let agent = Term::iri(agent_iri(&s.label.service));
    vec![
        Triple::new(entity.clone(), type_iri.clone(), Term::iri(PROV_ENTITY)),
        Triple::new(activity.clone(), type_iri.clone(), Term::iri(PROV_ACTIVITY)),
        Triple::new(agent.clone(), type_iri, Term::iri(PROV_AGENT)),
        Triple::new(entity, Term::iri(PROV_WAS_GENERATED_BY), activity.clone()),
        Triple::new(
            activity.clone(),
            Term::iri(PROV_WAS_ASSOCIATED_WITH),
            agent,
        ),
        Triple::new(
            activity,
            Term::iri(PROV_STARTED_AT_TIME),
            Term::int(s.label.time as i64),
        ),
    ]
}

/// The PROV-O triples describing one dependency link: `wasDerivedFrom`,
/// plus `<activity> prov:used <source>` when the dependent endpoint's
/// generating call is known.
pub fn link_triples(l: &ProvLink, label: Option<&CallLabel>) -> Vec<Triple> {
    let mut out = vec![Triple::new(
        Term::iri(&l.from_uri),
        Term::iri(PROV_WAS_DERIVED_FROM),
        Term::iri(&l.to_uri),
    )];
    // the generating activity used the source entity
    if let Some(label) = label {
        out.push(Triple::new(
            Term::iri(activity_iri(&label.service, label.time)),
            Term::iri(PROV_USED),
            Term::iri(&l.to_uri),
        ));
    }
    out
}

/// Convert a provenance graph into PROV-O triples.
pub fn export_prov(graph: &ProvenanceGraph) -> Vec<Triple> {
    let mut out = Vec::new();
    for s in &graph.sources {
        out.extend(source_triples(s));
    }
    for l in &graph.links {
        out.extend(link_triples(l, graph.label_of(&l.from_uri)));
    }
    out
}

/// The PROV-O vocabulary interned into one store's dictionary, so the
/// row-building hot loops below resolve each constant exactly once per
/// export instead of re-cloning `Term`s per triple.
pub(crate) struct VocabIds {
    ty: u32,
    entity_cls: u32,
    activity_cls: u32,
    agent_cls: u32,
    was_generated_by: u32,
    was_associated_with: u32,
    started_at_time: u32,
    was_derived_from: u32,
    used: u32,
}

impl VocabIds {
    pub(crate) fn intern(store: &mut TripleStore) -> Self {
        VocabIds {
            ty: store.intern_term(&Term::iri(RDF_TYPE)),
            entity_cls: store.intern_term(&Term::iri(PROV_ENTITY)),
            activity_cls: store.intern_term(&Term::iri(PROV_ACTIVITY)),
            agent_cls: store.intern_term(&Term::iri(PROV_AGENT)),
            was_generated_by: store.intern_term(&Term::iri(PROV_WAS_GENERATED_BY)),
            was_associated_with: store.intern_term(&Term::iri(PROV_WAS_ASSOCIATED_WITH)),
            started_at_time: store.intern_term(&Term::iri(PROV_STARTED_AT_TIME)),
            was_derived_from: store.intern_term(&Term::iri(PROV_WAS_DERIVED_FROM)),
            used: store.intern_term(&Term::iri(PROV_USED)),
        }
    }
}

/// Id-space twin of [`source_triples`]: appends the same six triples as
/// dictionary rows. Shared by the batch exporter and the live store.
pub(crate) fn source_rows(
    store: &mut TripleStore,
    v: &VocabIds,
    s: &SourceEntry,
    rows: &mut Vec<[u32; 3]>,
) {
    let entity = store.intern_term(&Term::iri(&s.uri));
    let activity = store.intern_term(&Term::iri(activity_iri(&s.label.service, s.label.time)));
    let agent = store.intern_term(&Term::iri(agent_iri(&s.label.service)));
    let time = store.intern_term(&Term::int(s.label.time as i64));
    rows.extend([
        [entity, v.ty, v.entity_cls],
        [activity, v.ty, v.activity_cls],
        [agent, v.ty, v.agent_cls],
        [entity, v.was_generated_by, activity],
        [activity, v.was_associated_with, agent],
        [activity, v.started_at_time, time],
    ]);
}

/// Id-space twin of [`link_triples`].
pub(crate) fn link_rows(
    store: &mut TripleStore,
    v: &VocabIds,
    l: &ProvLink,
    label: Option<&CallLabel>,
    rows: &mut Vec<[u32; 3]>,
) {
    let from = store.intern_term(&Term::iri(&l.from_uri));
    let to = store.intern_term(&Term::iri(&l.to_uri));
    rows.push([from, v.was_derived_from, to]);
    if let Some(label) = label {
        let act = store.intern_term(&Term::iri(activity_iri(&label.service, label.time)));
        rows.push([act, v.used, to]);
    }
}

/// Export directly into a [`TripleStore`], returning the triple count
/// (duplicates included, like the `Vec` exporter's length). Builds id
/// rows straight against the store's dictionary and merges them in one
/// batch — no intermediate `Vec<Triple>`, no per-triple `Term` clones.
pub fn export_prov_into(graph: &ProvenanceGraph, store: &mut TripleStore) -> usize {
    let v = VocabIds::intern(store);
    let mut rows = Vec::with_capacity(graph.sources.len() * 6 + graph.links.len() * 2);
    for s in &graph.sources {
        source_rows(store, &v, s, &mut rows);
    }
    for l in &graph.links {
        link_rows(store, &v, l, graph.label_of(&l.from_uri), &mut rows);
    }
    let n = rows.len();
    store.insert_rows(rows);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, paper_example, EngineOptions};

    #[test]
    fn paper_example_exports_expected_shapes() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut store = TripleStore::new();
        export_prov_into(&graph, &mut store);

        // r8 wasDerivedFrom r4 (Example 7)
        assert!(store.contains(&Triple::new(
            Term::iri("r8"),
            Term::iri(PROV_WAS_DERIVED_FROM),
            Term::iri("r4"),
        )));
        // the Translator call used r4
        assert!(store.contains(&Triple::new(
            Term::iri(activity_iri("Translator", 3)),
            Term::iri(PROV_USED),
            Term::iri("r4"),
        )));
        // r8 wasGeneratedBy the Translator call
        assert!(store.contains(&Triple::new(
            Term::iri("r8"),
            Term::iri(PROV_WAS_GENERATED_BY),
            Term::iri(activity_iri("Translator", 3)),
        )));
        // every labelled resource is an Entity
        let entities = store.matching(
            &None,
            &Some(Term::iri(RDF_TYPE)),
            &Some(Term::iri(PROV_ENTITY)),
        );
        assert_eq!(entities.len(), graph.sources.len());
    }

    #[test]
    fn row_exporter_matches_triple_exporter() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut via_rows = TripleStore::new();
        let n = export_prov_into(&graph, &mut via_rows);
        let triples = export_prov(&graph);
        assert_eq!(n, triples.len(), "returned count is the generated count");
        let mut via_triples = TripleStore::new();
        via_triples.extend(triples);
        assert_eq!(
            via_rows.iter().collect::<Vec<_>>(),
            via_triples.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn export_into_is_idempotent() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let mut store = TripleStore::new();
        let n1 = export_prov_into(&graph, &mut store);
        let total = store.len();
        let n2 = export_prov_into(&graph, &mut store);
        assert_eq!(n1, n2);
        assert_eq!(store.len(), total); // no duplicates
    }
}
