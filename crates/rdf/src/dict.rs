//! Term dictionary: dense `u32` ids for RDF terms.
//!
//! Every [`TripleStore`](crate::TripleStore) owns one dictionary. Terms
//! are interned once on first insertion (the only place a [`Term`] is
//! cloned); everywhere else — the columnar indexes, the join pipeline,
//! filters, DISTINCT — works on dense `u32` ids, which compare in one
//! instruction and pack three-to-a-row into the store's `Vec<[u32; 3]>`
//! permutation indexes. This mirrors the URI interner of
//! `weblab_prov::ReachabilityIndex`, generalised to all term kinds.
//!
//! Ids are assigned in first-seen order, so **id order is not term
//! order**: anything that must present term-sorted output (store
//! iteration, final SPARQL solutions) decodes first and sorts in term
//! space, keeping results byte-identical to the seed engine's
//! `BTreeSet<(Term, Term, Term)>` behaviour.

use std::collections::HashMap;

use weblab_obs::Counter;

use crate::term::Term;

/// Distinct terms interned across all dictionaries (monotone).
static DICT_TERMS: Counter = Counter::new("rdf.dict.terms");
/// Intern calls resolved to an already-assigned id (no clone, no insert).
static DICT_HITS: Counter = Counter::new("rdf.dict.hits");

/// An append-only `Term` ↔ `u32` interner.
#[derive(Debug, Clone, Default)]
pub(crate) struct Dictionary {
    /// id → term, in assignment order.
    terms: Vec<Term>,
    /// term → id.
    ids: HashMap<Term, u32>,
}

impl Dictionary {
    /// The id of `t`, assigning the next dense id (and cloning the term,
    /// exactly once) if it has never been seen.
    pub(crate) fn intern(&mut self, t: &Term) -> u32 {
        if let Some(&id) = self.ids.get(t) {
            DICT_HITS.inc();
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("dictionary overflow");
        self.terms.push(t.clone());
        self.ids.insert(t.clone(), id);
        DICT_TERMS.inc();
        id
    }

    /// The id of `t` if it is already interned. Query constants use this:
    /// a constant absent from the dictionary cannot match any stored
    /// triple, so the planner marks the whole pattern empty without ever
    /// mutating the store.
    pub(crate) fn lookup(&self, t: &Term) -> Option<u32> {
        self.ids.get(t).copied()
    }

    /// Decode an id. Ids are handed out densely by [`Dictionary::intern`],
    /// so any id that escaped this dictionary is in range.
    pub(crate) fn term(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// Number of distinct terms interned.
    pub(crate) fn len(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::default();
        let a = d.intern(&Term::iri("a"));
        let b = d.intern(&Term::lit("a"));
        assert_ne!(a, b, "IRI and literal with equal text are distinct terms");
        assert_eq!(d.intern(&Term::iri("a")), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.len(), 2);
        assert_eq!(d.term(a), &Term::iri("a"));
    }

    #[test]
    fn lookup_never_assigns() {
        let mut d = Dictionary::default();
        assert_eq!(d.lookup(&Term::iri("x")), None);
        assert_eq!(d.len(), 0);
        let id = d.intern(&Term::iri("x"));
        assert_eq!(d.lookup(&Term::iri("x")), Some(id));
    }
}
