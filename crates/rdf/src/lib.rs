//! # weblab-rdf — PROV-O triple store, Turtle, and SPARQL-lite
//!
//! The metadata substrate of the WebLab PROV architecture (Figure 5 of the
//! paper): in the original platform, execution traces and provenance
//! graphs live in Sesame RDF repositories queried through SPARQL. This
//! crate provides the equivalent building blocks:
//!
//! * [`TripleStore`] — an in-memory store with SPO/POS/OSP indexes;
//! * [`export_prov`] / [`export_prov_into`] — provenance graph → PROV-O
//!   (entities, activities, agents, `wasDerivedFrom`/`used`/
//!   `wasGeneratedBy` edges);
//! * [`to_turtle`] / [`parse_turtle`] — Turtle serialisation;
//! * [`parse_select`] / [`select`] — a SPARQL SELECT subset (BGP +
//!   FILTER) with greedy index-aware join ordering.
//!
//! ```
//! use weblab_prov::{infer_provenance, EngineOptions, paper_example};
//! use weblab_rdf::{export_prov_into, parse_select, select, TripleStore, vocab};
//!
//! let (doc, trace, rules) = paper_example::build();
//! let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
//! let mut store = TripleStore::new();
//! export_prov_into(&graph, &mut store);
//!
//! // "which resources did the Translator call use?"
//! let q = parse_select(&format!(
//!     "PREFIX prov: <{}> SELECT ?u WHERE {{ <{}> prov:used ?u . }}",
//!     vocab::PROV_NS, vocab::activity_iri("Translator", 3))).unwrap();
//! let solutions = select(&store, &q);
//! assert_eq!(solutions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod live;
mod provxml;
mod sparql;
mod store;
mod term;
mod turtle;
pub mod vocab;

pub use export::{export_prov, export_prov_into, link_triples, source_triples};
pub use live::LiveProvStore;
pub use provxml::{derivations_from_prov_xml, export_prov_xml};
pub use sparql::{parse_select, select, Filter, PatTerm, SelectQuery, Solution, SparqlError, TriplePattern};
pub use store::{TermPattern, TripleStore};
pub use term::{Term, Triple};
pub use turtle::{parse_turtle, to_turtle, TurtleError};
