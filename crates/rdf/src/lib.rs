//! # weblab-rdf — PROV-O triple store, Turtle, and SPARQL-lite
//!
//! The metadata substrate of the WebLab PROV architecture (Figure 5 of the
//! paper): in the original platform, execution traces and provenance
//! graphs live in Sesame RDF repositories queried through SPARQL. This
//! crate provides the equivalent building blocks:
//!
//! * [`TripleStore`] — a dictionary-encoded columnar store: terms are
//!   interned to dense `u32` ids and triples live in sorted
//!   `Vec<[u32; 3]>` SPO/POS/OSP permutation indexes with binary-search
//!   range lookups;
//! * [`export_prov`] / [`export_prov_into`] — provenance graph → PROV-O
//!   (entities, activities, agents, `wasDerivedFrom`/`used`/
//!   `wasGeneratedBy` edges);
//! * [`to_turtle`] / [`parse_turtle`] — Turtle serialisation;
//! * [`parse_select`] / [`select`] — a SPARQL SELECT subset (BGP +
//!   FILTER + DISTINCT) evaluated in two stages: a cardinality-driven
//!   join planner, then streaming id-space joins that decode only the
//!   final projected solutions;
//! * [`QueryEngine`] — a shared store plus a query-text → plan cache for
//!   long-lived callers (one engine per published epoch).
//!
//! ```
//! use weblab_prov::{infer_provenance, EngineOptions, paper_example};
//! use weblab_rdf::{export_prov_into, parse_select, select, TripleStore, vocab};
//!
//! let (doc, trace, rules) = paper_example::build();
//! let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
//! let mut store = TripleStore::new();
//! export_prov_into(&graph, &mut store);
//!
//! // "which resources did the Translator call use?"
//! let q = parse_select(&format!(
//!     "PREFIX prov: <{}> SELECT ?u WHERE {{ <{}> prov:used ?u . }}",
//!     vocab::PROV_NS, vocab::activity_iri("Translator", 3))).unwrap();
//! let solutions = select(&store, &q);
//! assert_eq!(solutions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dict;
mod export;
mod live;
mod plan;
mod provxml;
mod sparql;
mod store;
mod term;
mod turtle;
pub mod vocab;

pub use export::{export_prov, export_prov_into, link_triples, source_triples};
pub use live::LiveProvStore;
pub use plan::QueryEngine;
pub use provxml::{derivations_from_prov_xml, export_prov_xml};
pub use sparql::{parse_select, select, Filter, PatTerm, SelectQuery, Solution, SparqlError, TriplePattern};
pub use store::{TermPattern, TripleStore};
pub use term::{Term, Triple};
pub use turtle::{parse_turtle, to_turtle, TurtleError};
