//! Incrementally updated PROV-O store for live executions.
//!
//! The batch path re-exports the whole provenance graph into a fresh
//! [`TripleStore`] every time ([`crate::export_prov_into`]); a long-running
//! execution would pay O(graph) per call. [`LiveProvStore`] instead
//! consumes the [`LiveDelta`]s emitted by
//! `weblab_prov::live::LiveProvenance` and performs *append-only* triple
//! insertion: each delta contributes the PROV-O triples of its new Source
//! rows and links, built with the same [`crate::export::source_triples`] /
//! [`crate::export::link_triples`] helpers the batch exporter uses — so
//! after the final call the live store's triple set (and therefore its
//! Turtle serialisation) is byte-identical to a one-shot batch export.

use std::collections::HashMap;

use weblab_prov::LiveDelta;
use weblab_xml::CallLabel;

use crate::export::{link_rows, source_rows, VocabIds};
use crate::store::TripleStore;

/// An append-only PROV-O mirror of a live provenance graph.
#[derive(Debug, Clone, Default)]
pub struct LiveProvStore {
    store: TripleStore,
    /// URI → generating call of every Source row seen, for the
    /// `prov:used` triples of later links.
    labels: HashMap<String, CallLabel>,
}

impl LiveProvStore {
    /// An empty store.
    pub fn new() -> Self {
        LiveProvStore::default()
    }

    /// Fold one delta in, returning the number of triples actually
    /// inserted. Sources are applied before links so a link emitted by the
    /// same call that registered its dependent resource finds the label.
    /// Idempotent: re-applying a delta inserts nothing.
    pub fn apply(&mut self, delta: &LiveDelta) -> usize {
        let v = VocabIds::intern(&mut self.store);
        let mut rows = Vec::with_capacity(delta.sources.len() * 6 + delta.links.len() * 2);
        for s in &delta.sources {
            self.labels.insert(s.uri.clone(), s.label.clone());
            source_rows(&mut self.store, &v, s, &mut rows);
        }
        for l in &delta.links {
            let label = self.labels.get(&l.from_uri);
            link_rows(&mut self.store, &v, l, label, &mut rows);
        }
        self.store.insert_rows(rows)
    }

    /// The accumulated triple store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Consume the mirror, keeping just the triples.
    pub fn into_store(self) -> TripleStore {
        self.store
    }

    /// Number of triples accumulated.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no triples have been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_prov_into;
    use crate::term::Triple;
    use crate::turtle::to_turtle;
    use weblab_prov::{
        infer_provenance, paper_example, EngineOptions, ExecutionTrace, LiveProvenance,
    };

    #[test]
    fn incremental_store_matches_batch_export() {
        let (doc, trace, rules) = paper_example::build();
        let opts = EngineOptions::default();

        let mut live = LiveProvenance::new(rules.clone(), opts);
        let mut store = LiveProvStore::new();
        store.apply(&live.catch_up(&doc, &ExecutionTrace::default()));
        for k in 0..trace.calls.len() {
            store.apply(&live.observe_call(&doc, &trace, k));
        }

        let graph = infer_provenance(&doc, &trace, &rules, &opts);
        let mut batch = TripleStore::new();
        export_prov_into(&graph, &mut batch);

        assert_eq!(store.len(), batch.len());
        let live_triples: Vec<Triple> = store.store().iter().collect();
        let batch_triples: Vec<Triple> = batch.iter().collect();
        assert_eq!(to_turtle(&live_triples), to_turtle(&batch_triples));
    }

    #[test]
    fn apply_is_idempotent() {
        let (doc, trace, rules) = paper_example::build();
        let mut live = LiveProvenance::new(rules, EngineOptions::default());
        let delta = live.observe_call(&doc, &trace, 0);
        let mut store = LiveProvStore::new();
        let n1 = store.apply(&delta);
        assert!(n1 > 0);
        assert_eq!(store.apply(&delta), 0);
        assert_eq!(store.len(), n1);
    }
}
