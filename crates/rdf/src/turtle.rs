//! Turtle serialisation and a matching subset parser.
//!
//! The writer groups triples by subject and abbreviates IRIs through the
//! prefix table; the parser accepts the writer's output plus the common
//! Turtle conveniences (`@prefix`, `a`, `;` and `,` continuation).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::term::{escape_literal, Term, Triple};
use crate::vocab::{default_prefixes, RDF_TYPE};

/// Serialise triples to Turtle, grouping by subject.
pub fn to_turtle(triples: &[Triple]) -> String {
    let prefixes = default_prefixes();
    let mut out = String::new();
    for (p, ns) in &prefixes {
        let _ = writeln!(out, "@prefix {p}: <{ns}> .");
    }
    out.push('\n');

    let mut by_subject: BTreeMap<Term, Vec<&Triple>> = BTreeMap::new();
    for t in triples {
        by_subject.entry(t.s.clone()).or_default().push(t);
    }
    for (s, ts) in by_subject {
        let _ = write!(out, "{}", fmt_term(&s, &prefixes));
        for (i, t) in ts.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, " ;\n    ");
            } else {
                out.push(' ');
            }
            let _ = write!(
                out,
                "{} {}",
                fmt_pred(&t.p, &prefixes),
                fmt_term(&t.o, &prefixes)
            );
        }
        out.push_str(" .\n");
    }
    out
}

fn fmt_pred(p: &Term, prefixes: &[(&str, &str)]) -> String {
    if p.as_iri() == Some(RDF_TYPE) {
        return "a".into();
    }
    fmt_term(p, prefixes)
}

/// Escape an IRI for an `<…>` IRIREF per the Turtle grammar: code points
/// `#x00`–`#x20` and ``< > " { } | ^ ` \`` cannot appear raw and are
/// emitted as numeric `\uXXXX`/`\UXXXXXXXX` (UCHAR) escapes.
fn escape_iri(iri: &str) -> String {
    let mut out = String::with_capacity(iri.len());
    for c in iri.chars() {
        if c <= '\u{20}' || matches!(c, '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\') {
            let code = c as u32;
            if code <= 0xFFFF {
                let _ = write!(out, "\\u{code:04X}");
            } else {
                let _ = write!(out, "\\U{code:08X}");
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn fmt_term(t: &Term, prefixes: &[(&str, &str)]) -> String {
    match t {
        Term::Iri(iri) => {
            for (p, ns) in prefixes {
                if let Some(local) = iri.strip_prefix(ns) {
                    if !local.is_empty()
                        && local
                            .chars()
                            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
                    {
                        return format!("{p}:{local}");
                    }
                }
            }
            format!("<{}>", escape_iri(iri))
        }
        Term::Literal {
            value,
            datatype: None,
        } => format!("\"{}\"", escape_literal(value)),
        Term::Literal {
            value,
            datatype: Some(dt),
        } => {
            let dts = fmt_term(&Term::iri(dt.clone()), prefixes);
            format!("\"{}\"^^{dts}", escape_literal(value))
        }
        Term::Blank(l) => format!("_:{l}"),
    }
}

/// Turtle parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "turtle parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Parse the Turtle subset the writer emits.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, TurtleError> {
    let mut p = TP {
        input,
        pos: 0,
        prefixes: BTreeMap::new(),
    };
    let mut out = Vec::new();
    loop {
        p.ws();
        if p.at_end() {
            break;
        }
        if p.eat("@prefix") {
            p.ws();
            let name = p.until(':')?;
            p.expect(":")?;
            p.ws();
            p.expect("<")?;
            let raw = p.until('>')?;
            let ns = p.unescape_iri(&raw)?;
            p.expect(">")?;
            p.ws();
            p.expect(".")?;
            p.prefixes.insert(name, ns);
            continue;
        }
        // subject
        let s = p.term()?;
        loop {
            p.ws();
            let pred = p.term()?;
            loop {
                p.ws();
                let o = p.term()?;
                out.push(Triple::new(s.clone(), pred.clone(), o));
                p.ws();
                if p.eat(",") {
                    continue;
                }
                break;
            }
            if p.eat(";") {
                p.ws();
                // allow trailing "; ." style
                if p.peek(".") {
                    break;
                }
                continue;
            }
            break;
        }
        p.ws();
        p.expect(".")?;
    }
    Ok(out)
}

struct TP<'a> {
    input: &'a str,
    pos: usize,
    prefixes: BTreeMap<String, String>,
}

impl<'a> TP<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn err(&self, m: impl Into<String>) -> TurtleError {
        TurtleError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), TurtleError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn until(&mut self, c: char) -> Result<String, TurtleError> {
        let r = self.rest();
        let end = r.find(c).ok_or_else(|| self.err(format!("expected {c:?}")))?;
        let s = r[..end].trim().to_string();
        self.pos += end;
        Ok(s)
    }

    /// Resolve the `\uXXXX`/`\UXXXXXXXX` (UCHAR) escapes the writer emits
    /// inside IRIREFs. Any other backslash sequence is an error — raw
    /// backslashes cannot appear in an IRIREF.
    fn unescape_iri(&self, raw: &str) -> Result<String, TurtleError> {
        if !raw.contains('\\') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            let len = match chars.next() {
                Some('u') => 4,
                Some('U') => 8,
                other => {
                    return Err(self.err(format!(
                        "invalid IRI escape \\{}",
                        other.map(String::from).unwrap_or_default()
                    )))
                }
            };
            let hex: String = chars.by_ref().take(len).collect();
            if hex.len() != len {
                return Err(self.err("truncated \\u escape in IRI"));
            }
            let code = u32::from_str_radix(&hex, 16)
                .map_err(|_| self.err(format!("invalid hex in IRI escape {hex:?}")))?;
            let c = char::from_u32(code)
                .ok_or_else(|| self.err(format!("IRI escape U+{code:X} is not a character")))?;
            out.push(c);
        }
        Ok(out)
    }

    fn term(&mut self) -> Result<Term, TurtleError> {
        self.ws();
        if self.eat("<") {
            let raw = self.until('>')?;
            let iri = self.unescape_iri(&raw)?;
            self.expect(">")?;
            return Ok(Term::Iri(iri));
        }
        if self.eat("\"") {
            let mut value = String::new();
            let mut chars = self.rest().char_indices();
            let mut consumed = 0;
            let mut closed = false;
            while let Some((i, c)) = chars.next() {
                if c == '\\' {
                    if let Some((_, n)) = chars.next() {
                        value.push(match n {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                } else if c == '"' {
                    consumed = i + 1;
                    closed = true;
                    break;
                } else {
                    value.push(c);
                }
            }
            if !closed {
                return Err(self.err("unterminated literal"));
            }
            self.pos += consumed;
            if self.eat("^^") {
                let dt = self.term()?;
                let Term::Iri(dt) = dt else {
                    return Err(self.err("datatype must be an IRI"));
                };
                return Ok(Term::typed(value, dt));
            }
            return Ok(Term::lit(value));
        }
        if self.eat("_:") {
            let r = self.rest();
            let end = r
                .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
                .unwrap_or(r.len());
            let label = r[..end].to_string();
            self.pos += end;
            return Ok(Term::Blank(label));
        }
        // 'a' keyword or prefixed name
        let r = self.rest();
        if r.starts_with("a ") || r.starts_with("a\t") || r.starts_with("a\n") {
            self.pos += 1;
            return Ok(Term::iri(RDF_TYPE));
        }
        let end = r
            .find(|c: char| c.is_whitespace() || matches!(c, ';' | ',' | '.'))
            .unwrap_or(r.len());
        let token = &r[..end];
        let Some(colon) = token.find(':') else {
            return Err(self.err(format!("unrecognised token {token:?}")));
        };
        let (prefix, local) = (&token[..colon], &token[colon + 1..]);
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("unknown prefix {prefix:?}")))?;
        self.pos += end;
        Ok(Term::Iri(format!("{ns}{local}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{PROV_ENTITY, PROV_WAS_DERIVED_FROM};

    #[test]
    fn round_trip_preserves_triples() {
        let triples = vec![
            Triple::new(Term::iri("http://x/r8"), Term::iri(RDF_TYPE), Term::iri(PROV_ENTITY)),
            Triple::new(
                Term::iri("http://x/r8"),
                Term::iri(PROV_WAS_DERIVED_FROM),
                Term::iri("http://x/r4"),
            ),
            Triple::new(
                Term::iri("http://x/act"),
                Term::iri("http://www.w3.org/ns/prov#startedAtTime"),
                Term::int(3),
            ),
            Triple::new(Term::Blank("b0".into()), Term::iri("http://x/p"), Term::lit("v \"q\"")),
        ];
        let ttl = to_turtle(&triples);
        let mut parsed = parse_turtle(&ttl).unwrap();
        let mut original = triples;
        parsed.sort();
        original.sort();
        assert_eq!(parsed, original);
    }

    #[test]
    fn writer_uses_prefixes_and_a() {
        let triples = vec![Triple::new(
            Term::iri("http://www.w3.org/ns/prov#Entity"),
            Term::iri(RDF_TYPE),
            Term::iri("http://www.w3.org/ns/prov#Entity"),
        )];
        let ttl = to_turtle(&triples);
        assert!(ttl.contains("prov:Entity a prov:Entity ."));
    }

    #[test]
    fn parser_handles_comments_and_lists() {
        let ttl = "@prefix ex: <http://e/> .\n# a comment\nex:a ex:p ex:b , ex:c ; ex:q \"v\" .";
        let parsed = parse_turtle(ttl).unwrap();
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        assert!(parse_turtle("zz:a zz:b zz:c .").is_err());
    }

    #[test]
    fn hostile_iris_are_escaped_and_round_trip() {
        // every character class the IRIREF production forbids raw
        let hostile = "http://x/a<b>c\"d{e}f|g^h`i\\j k\tl\nm";
        let triples = vec![Triple::new(
            Term::iri(hostile),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        )];
        let ttl = to_turtle(&triples);
        // nothing forbidden leaks into the IRIREF between the angle brackets
        for line in ttl.lines().filter(|l| l.contains("http://x/a")) {
            assert!(!line.contains('<') || line.matches('<').count() == line.matches('>').count());
            assert!(!line.contains('\t') && !line.contains('"') && !line.contains('{'));
        }
        assert!(ttl.contains("\\u003C"), "escaped '<' missing: {ttl}");
        let parsed = parse_turtle(&ttl).unwrap();
        assert_eq!(parsed[0].s, Term::iri(hostile));
    }

    #[test]
    fn invalid_iri_escapes_are_rejected() {
        assert!(parse_turtle("<http://x/\\q> <http://x/p> <http://x/o> .").is_err());
        assert!(parse_turtle("<http://x/\\u12> <http://x/p> <http://x/o> .").is_err());
        assert!(parse_turtle("<http://x/\\uZZZZ> <http://x/p> <http://x/o> .").is_err());
        // a surrogate code point is not a character
        assert!(parse_turtle("<http://x/\\uD800> <http://x/p> <http://x/o> .").is_err());
    }
}
