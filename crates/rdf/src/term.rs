//! RDF terms and triples.

use std::fmt;

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A literal with optional datatype IRI.
    Literal {
        /// Lexical value.
        value: String,
        /// Datatype IRI (`None` = xsd:string).
        datatype: Option<String>,
    },
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Construct a plain string literal.
    pub fn lit(s: impl Into<String>) -> Self {
        Term::Literal {
            value: s.into(),
            datatype: None,
        }
    }

    /// Construct a typed literal.
    pub fn typed(s: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            value: s.into(),
            datatype: Some(datatype.into()),
        }
    }

    /// Construct an `xsd:integer` literal.
    pub fn int(i: i64) -> Self {
        Term::typed(i.to_string(), crate::vocab::XSD_INTEGER)
    }

    /// The IRI string, if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal value, if this is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal {
                value,
                datatype: None,
            } => write!(f, "\"{}\"", escape_literal(value)),
            Term::Literal {
                value,
                datatype: Some(dt),
            } => write!(f, "\"{}\"^^<{dt}>", escape_literal(value)),
            Term::Blank(l) => write!(f, "_:{l}"),
        }
    }
}

pub(crate) fn escape_literal(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A triple `(subject, predicate, object)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject (IRI or blank).
    pub s: Term,
    /// Predicate (IRI).
    pub p: Term,
    /// Object (any term).
    pub o: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::lit("hi \"there\"").to_string(), "\"hi \\\"there\\\"\"");
        assert_eq!(
            Term::int(5).to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::iri("x").as_iri(), Some("x"));
        assert_eq!(Term::lit("v").as_literal(), Some("v"));
        assert_eq!(Term::lit("v").as_iri(), None);
    }
}
