//! Per-service rule registries — the `M(s)` of the paper.
//!
//! "The data dependencies of each service `s ∈ S` are described by a set of
//! mapping rules `M(s)`." The registry is the static half of the model:
//! rules are declared once per service type, independently of any concrete
//! workflow, and connected to calls dynamically through the execution
//! trace. This separation is what the paper credits with "facilitating the
//! work of workflow designers".

use std::collections::BTreeMap;

use crate::rule::{MappingRule, RuleError};

/// Mapping rules indexed by service name.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    by_service: BTreeMap<String, Vec<MappingRule>>,
}

impl RuleSet {
    /// Empty registry.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Register a rule for a service.
    pub fn add(&mut self, service: impl Into<String>, rule: MappingRule) {
        self.by_service.entry(service.into()).or_default().push(rule);
    }

    /// Parse and register a rule in one step.
    pub fn add_parsed(
        &mut self,
        service: impl Into<String>,
        rule: &str,
    ) -> Result<(), RuleError> {
        self.add(service, MappingRule::parse(rule)?);
        Ok(())
    }

    /// Rules registered for `service` — `M(s)`.
    pub fn rules_for(&self, service: &str) -> &[MappingRule] {
        self.by_service
            .get(service)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Services with at least one rule, in name order.
    pub fn services(&self) -> impl Iterator<Item = &str> {
        self.by_service.keys().map(|s| s.as_str())
    }

    /// Total number of registered rules.
    pub fn len(&self) -> usize {
        self.by_service.values().map(Vec::len).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_service.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_are_grouped_by_service() {
        let mut rs = RuleSet::new();
        rs.add_parsed("Translator", "//A => //B").unwrap();
        rs.add_parsed("Translator", "//C => //D").unwrap();
        rs.add_parsed("Normaliser", "//E => //F").unwrap();
        assert_eq!(rs.rules_for("Translator").len(), 2);
        assert_eq!(rs.rules_for("Normaliser").len(), 1);
        assert_eq!(rs.rules_for("Unknown").len(), 0);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.services().collect::<Vec<_>>(), vec!["Normaliser", "Translator"]);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut rs = RuleSet::new();
        assert!(rs.add_parsed("S", "no arrow here").is_err());
        assert!(rs.is_empty());
    }
}
