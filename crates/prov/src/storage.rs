//! Compact provenance storage.
//!
//! Section 8: "We intend to thoroughly analyze our generated provenance
//! information, in order to conceive efficient provenance storage and
//! querying methods \[12, 5, 4\]." This module implements the two classic
//! reduction ideas from that literature, adapted to WebLab graphs:
//!
//! * **String interning** — URIs repeat across many links; store each once.
//! * **Grouped adjacency** — links cluster by generated resource (a call's
//!   output typically depends on many inputs); store one source-list per
//!   generated resource instead of one edge record each (the
//!   "provenance factorisation" of Chapman et al. \[12\]).
//!
//! [`CompactGraph`] is a faithful, loss-free encoding: `expand` returns the
//! original edge list, and the adjacency layout makes the two hot queries
//! (dependencies-of, dependents-of) index lookups.

use std::collections::HashMap;

use weblab_xml::NodeId;

use crate::algebra::ProvLink;
use crate::graph::ProvenanceGraph;

/// Interned identifier of a resource URI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UriId(u32);

/// A compact, query-oriented encoding of a provenance graph's edges.
#[derive(Debug, Clone, Default)]
pub struct CompactGraph {
    /// Interned URI strings; `UriId` indexes into this table.
    uris: Vec<String>,
    /// URI → id.
    ids: HashMap<String, UriId>,
    /// Node of each interned resource (for expansion back to [`ProvLink`]).
    nodes: Vec<NodeId>,
    /// Outgoing adjacency: generated resource → sorted used resources.
    deps: HashMap<UriId, Vec<UriId>>,
    /// Incoming adjacency: used resource → sorted dependents.
    rdeps: HashMap<UriId, Vec<UriId>>,
    /// Number of distinct edges.
    edges: usize,
}

impl CompactGraph {
    /// Build from a graph's edge list.
    pub fn from_links(links: &[ProvLink]) -> Self {
        let mut g = CompactGraph::default();
        g.merge_links(links);
        g
    }

    /// Build from a full provenance graph.
    pub fn from_graph(graph: &ProvenanceGraph) -> Self {
        Self::from_links(&graph.links)
    }

    /// Merge one link into the graph, interning any new URI and keeping
    /// both adjacency lists sorted. Returns `false` if the edge was
    /// already present (the merge is idempotent, so re-delivered deltas
    /// leave the graph unchanged).
    pub fn merge_link(&mut self, link: &ProvLink) -> bool {
        let from = self.intern(&link.from_uri, link.from);
        let to = self.intern(&link.to_uri, link.to);
        let deps = self.deps.entry(from).or_default();
        match deps.binary_search(&to) {
            Ok(_) => return false,
            Err(pos) => deps.insert(pos, to),
        }
        let rdeps = self.rdeps.entry(to).or_default();
        if let Err(pos) = rdeps.binary_search(&from) {
            rdeps.insert(pos, from);
        }
        self.edges += 1;
        true
    }

    /// Merge a delta of links (live maintenance: the edges contributed by
    /// one newly completed call), returning how many were actually new.
    /// Work is proportional to the delta, not to the accumulated graph —
    /// URIs already interned are reused and untouched adjacency lists are
    /// never revisited.
    pub fn merge_links(&mut self, links: &[ProvLink]) -> usize {
        links.iter().filter(|l| self.merge_link(l)).count()
    }

    fn intern(&mut self, uri: &str, node: NodeId) -> UriId {
        if let Some(&id) = self.ids.get(uri) {
            return id;
        }
        let id = UriId(self.uris.len() as u32);
        self.uris.push(uri.to_string());
        self.nodes.push(node);
        self.ids.insert(uri.to_string(), id);
        id
    }

    /// The interned id of a URI.
    pub fn id_of(&self, uri: &str) -> Option<UriId> {
        self.ids.get(uri).copied()
    }

    /// The URI of an interned id.
    pub fn uri_of(&self, id: UriId) -> &str {
        &self.uris[id.0 as usize]
    }

    /// Direct dependencies (used resources) of a generated resource.
    pub fn dependencies(&self, uri: &str) -> Vec<&str> {
        self.id_of(uri)
            .and_then(|id| self.deps.get(&id))
            .map(|v| v.iter().map(|&d| self.uri_of(d)).collect())
            .unwrap_or_default()
    }

    /// Direct dependents of a used resource.
    pub fn dependents(&self, uri: &str) -> Vec<&str> {
        self.id_of(uri)
            .and_then(|id| self.rdeps.get(&id))
            .map(|v| v.iter().map(|&d| self.uri_of(d)).collect())
            .unwrap_or_default()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of distinct resources.
    pub fn resource_count(&self) -> usize {
        self.uris.len()
    }

    /// Expand back to a sorted edge list — the inverse of
    /// [`CompactGraph::from_links`] up to ordering and duplicate edges.
    pub fn expand(&self) -> Vec<ProvLink> {
        let mut out = Vec::with_capacity(self.edges);
        let mut froms: Vec<&UriId> = self.deps.keys().collect();
        froms.sort_unstable();
        for &from in froms {
            for &to in &self.deps[&from] {
                out.push(ProvLink {
                    from: self.nodes[from.0 as usize],
                    from_uri: self.uris[from.0 as usize].clone(),
                    to: self.nodes[to.0 as usize],
                    to_uri: self.uris[to.0 as usize].clone(),
                });
            }
        }
        out.sort();
        out
    }

    /// Approximate heap footprint in bytes of this encoding.
    pub fn approx_bytes(&self) -> usize {
        let strings: usize = self.uris.iter().map(|u| u.len() + 24).sum();
        let ids: usize = self.ids.len() * 48;
        let adj: usize = self
            .deps
            .values()
            .chain(self.rdeps.values())
            .map(|v| v.len() * 4 + 32)
            .sum();
        strings + ids + adj + self.nodes.len() * 4
    }

    /// Approximate heap footprint of the naive edge-list encoding of the
    /// same graph, for comparison.
    pub fn approx_naive_bytes(links: &[ProvLink]) -> usize {
        links
            .iter()
            .map(|l| l.from_uri.len() + l.to_uri.len() + 2 * 24 + 8)
            .sum()
    }
}

/// Size statistics for reporting (the X9 storage experiment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageStats {
    /// Edge count.
    pub edges: usize,
    /// Distinct resources.
    pub resources: usize,
    /// Bytes in the naive edge-list encoding.
    pub naive_bytes: usize,
    /// Bytes in the compact encoding.
    pub compact_bytes: usize,
}

/// Compute storage statistics for a graph.
pub fn storage_stats(graph: &ProvenanceGraph) -> StorageStats {
    let compact = CompactGraph::from_graph(graph);
    StorageStats {
        edges: graph.links.len(),
        resources: compact.resource_count(),
        naive_bytes: CompactGraph::approx_naive_bytes(&graph.links),
        compact_bytes: compact.approx_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, EngineOptions, InheritMode};
    use crate::paper_example;

    fn sample_links() -> Vec<ProvLink> {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        )
        .links
    }

    #[test]
    fn expand_is_lossless() {
        let links = sample_links();
        let compact = CompactGraph::from_links(&links);
        assert_eq!(compact.expand(), links);
        assert_eq!(compact.edge_count(), links.len());
    }

    #[test]
    fn adjacency_queries_match_graph_queries() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let compact = CompactGraph::from_graph(&graph);
        for s in &graph.sources {
            let mut a = graph.dependencies_of(&s.uri);
            let mut b = compact.dependencies(&s.uri);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dependencies of {}", s.uri);
            let mut a = graph.dependents_of(&s.uri);
            let mut b = compact.dependents(&s.uri);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dependents of {}", s.uri);
        }
    }

    #[test]
    fn compact_encoding_is_smaller_on_fan_heavy_graphs() {
        // many links sharing endpoints → interning + grouping win:
        // 10 aggregates each depending on the same 50 sources (500 edges,
        // 60 distinct URIs)
        let mut links = Vec::new();
        for a in 0..10 {
            for i in 0..50 {
                links.push(ProvLink {
                    from: NodeId::from_index(1000 + a),
                    from_uri: format!("weblab://res/aggregate-with-a-long-uri-{a}"),
                    to: NodeId::from_index(i),
                    to_uri: format!("weblab://src/input-resource-number-{i}"),
                });
            }
        }
        let compact = CompactGraph::from_links(&links);
        assert!(compact.approx_bytes() < CompactGraph::approx_naive_bytes(&links) / 3);
        assert_eq!(compact.resource_count(), 60);
        assert_eq!(compact.edge_count(), 500);
    }

    #[test]
    fn incremental_merge_equals_batch_build() {
        let links = sample_links();
        let batch = CompactGraph::from_links(&links);
        let mut incremental = CompactGraph::default();
        let mut added = 0;
        for l in &links {
            added += incremental.merge_links(std::slice::from_ref(l));
        }
        assert_eq!(added, links.len());
        assert_eq!(incremental.expand(), batch.expand());
        assert_eq!(incremental.edge_count(), batch.edge_count());
        assert_eq!(incremental.resource_count(), batch.resource_count());
        // merging the same delta again is a no-op
        assert_eq!(incremental.merge_links(&links), 0);
        assert_eq!(incremental.edge_count(), batch.edge_count());
    }

    #[test]
    fn unknown_uris_return_empty() {
        let compact = CompactGraph::from_links(&sample_links());
        assert!(compact.dependencies("nope").is_empty());
        assert!(compact.dependents("nope").is_empty());
        assert!(compact.id_of("nope").is_none());
    }

    #[test]
    fn stats_report_both_encodings() {
        let (doc, trace, rules) = paper_example::build();
        let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let stats = storage_stats(&graph);
        assert_eq!(stats.edges, graph.links.len());
        assert!(stats.resources > 0);
        assert!(stats.naive_bytes > 0 && stats.compact_bytes > 0);
    }
}
