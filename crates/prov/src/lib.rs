//! # weblab-prov — the WebLab PROV provenance model (core contribution)
//!
//! Reproduction of the core of *"WebLab PROV: Computing fine-grained
//! provenance links for XML artifacts"* (Amann, Constantin, Caron, Giroux —
//! EDBT 2013):
//!
//! * [`MappingRule`] — declarative data-dependency rules
//!   `ϕ_S(x̄) ⇒ ϕ_T(x̄)` between XPath patterns (Definition 5);
//! * [`join_tables`] — the algebraic semantics
//!   `M(d,d') = π(ρ R_S(d) ⋈ ρ R_T(d'))` of Definition 8;
//! * [`service_call_provenance`] — the per-call restriction of Definition 9;
//! * [`ProvenanceGraph`] — the labelled dependency DAG of Definition 3
//!   (the Source/Provenance tables of Figure 2);
//! * [`infer_provenance`] — the Section 4 evaluation strategies
//!   ([`Strategy::StateReplay`], [`Strategy::TemporalRewrite`],
//!   [`Strategy::GroupedSinglePass`]) plus inherited-provenance inference
//!   ([`InheritMode`]);
//! * [`skolem`] — the Section 5 aggregation mappings;
//! * [`query`] — why-provenance, depth-limited lineage, impact analysis;
//! * [`storage`] — compact (interned, grouped-adjacency) graph storage;
//! * [`index`] — read-optimized reachability index (ancestor-set
//!   encoding) and the epoch snapshots the query service serves from;
//! * [`rank`] — spreading-activation ranked analytics (bounded top-k
//!   relevance over the index) and traversal-free aggregate summaries;
//! * [`live`] — per-call incremental maintenance of that storage
//!   ([`LiveProvenance`]), fed by the orchestrator's call-completion hook;
//! * [`views`] — provenance views over composite service modules;
//! * parallel-execution support: control-flow channels on call records
//!   ([`CallRecord::channel`], [`channels_compatible`]) with visibility
//!   filtering in every strategy (the Section 8 extension).
//!
//! ```
//! use weblab_prov::{infer_provenance, EngineOptions, paper_example};
//!
//! let (doc, trace, rules) = paper_example::build();
//! let graph = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
//! // the Translator's output depends on the Normaliser's TextMediaUnit:
//! assert!(graph.dependencies_of("r8").contains(&"r4"));
//! assert!(graph.is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algebra;
mod cache;
mod engine;
mod executor;
mod graph;
pub mod index;
pub mod live;
pub mod paper_example;
pub mod query;
pub mod rank;
pub mod replay;
mod rule;
mod ruleset;
pub mod skolem;
pub mod storage;
mod trace;
pub mod views;

pub use algebra::{join_tables, join_tables_where, JoinAlgorithm, ProvLink};
pub use cache::PatternCache;
pub use engine::{
    document_state_provenance, filter_links_by_channel, infer_links_since,
    infer_links_since_cached, infer_provenance, propagate_inherited,
    service_call_provenance, EngineOptions, InheritMode, Strategy,
};
pub use executor::{run_units, Parallelism};
pub use index::{EpochSnapshot, ReachabilityIndex};
pub use rank::{
    format_micro, micro_from_f64, rank, summary, BlastRadius, GraphSummary, OriginCluster,
    QueryOpts, RankDirection, RankedEntry, ServiceInfluence,
};
pub use replay::{dirty_cone, dirty_cone_closed, rebase_links};
pub use live::{LiveDelta, LiveProvenance};
pub use graph::{ProvenanceGraph, SourceEntry};
pub use rule::{MappingRule, RuleError};
pub use ruleset::RuleSet;
pub use trace::{channels_compatible, CallRecord, ExecutionTrace};
