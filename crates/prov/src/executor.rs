//! Scoped-thread parallel execution of inference work units.
//!
//! Every strategy in [`crate::engine`] decomposes into independent
//! *evaluation units* — (call × rule) for `StateReplay` and
//! `TemporalRewrite`, (service × rule) for `GroupedSinglePass` — each
//! producing a private buffer of [`ProvLink`]s over shared read-only state
//! (the final [`weblab_xml::Document`], the rule set, the element index and
//! the pattern cache). [`run_units`] fans those units out across a
//! `std::thread::scope` worker pool and merges the buffers **in unit
//! order**, so the combined link stream is identical to sequential
//! execution regardless of scheduling; the engine's final sort + dedup then
//! guarantees byte-identical `ProvenanceGraph` output.
//!
//! Workers pull unit indices from a shared atomic counter (work stealing by
//! subtraction): units vary wildly in cost — a call that appended one
//! resource versus one that appended hundreds — and static chunking would
//! leave threads idle behind the largest unit.
//!
//! Std-only by design: the build environment has no registry access, and
//! Rust ≥ 1.63 scoped threads make a dependency-free pool small enough to
//! carry in-tree.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use weblab_obs::{Counter, Gauge, Histogram, Span};

use crate::algebra::ProvLink;

/// Wall time per evaluation unit, nanoseconds. The *count* equals the
/// number of units executed (deterministic); the sum is wall time and is
/// not asserted by tests.
static UNIT_NANOS: Histogram = Histogram::new("prov.executor.unit.duration_ns");
/// Units currently executing across all workers.
static UNITS_INFLIGHT: Gauge = Gauge::new("prov.executor.units.inflight");
/// Worker threads spawned by parallel runs (sequential runs spawn none).
static WORKERS_SPAWNED: Counter = Counter::new("prov.executor.workers.spawned");

/// Degree of parallelism for provenance inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every unit on the calling thread (the reference behaviour).
    #[default]
    Sequential,
    /// Use exactly `n` worker threads (`Threads(0)` and `Threads(1)` are
    /// both sequential).
    Threads(usize),
    /// Use `std::thread::available_parallelism()` workers.
    Auto,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Evaluate `unit(0..n_units)` and concatenate the results in unit order.
///
/// `unit` must be a pure function of its index over shared read-only state;
/// it runs concurrently on multiple threads when `par` resolves to more
/// than one worker. The output is exactly
/// `(0..n_units).flat_map(unit).collect()` — scheduling cannot reorder it.
pub fn run_units<F>(par: Parallelism, n_units: usize, unit: F) -> Vec<ProvLink>
where
    F: Fn(usize) -> Vec<ProvLink> + Sync,
{
    // Time every unit identically on the sequential and parallel paths, so
    // `prov.executor.unit.duration_ns` has the same count either way.
    let timed_unit = |idx: usize| {
        let _span = Span::start_with_inflight(&UNIT_NANOS, &UNITS_INFLIGHT);
        unit(idx)
    };

    let workers = par.worker_count().min(n_units);
    if workers <= 1 {
        return (0..n_units).flat_map(timed_unit).collect();
    }
    WORKERS_SPAWNED.add(workers as u64);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<ProvLink>)>> = Mutex::new(Vec::with_capacity(n_units));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Collect locally, publish once per worker: the mutex is
                // touched `workers` times, not `n_units` times.
                let mut local: Vec<(usize, Vec<ProvLink>)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_units {
                        break;
                    }
                    local.push((idx, timed_unit(idx)));
                }
                results.lock().expect("worker panicked").extend(local);
            });
        }
    });

    let mut results = results.into_inner().expect("worker panicked");
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().flat_map(|(_, links)| links).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::NodeId;

    fn mk(i: usize) -> Vec<ProvLink> {
        // deliberately uneven unit sizes
        (0..i % 3)
            .map(|j| ProvLink {
                from: NodeId::from_index(i),
                from_uri: format!("u{i}"),
                to: NodeId::from_index(j),
                to_uri: format!("v{j}"),
            })
            .collect()
    }

    #[test]
    fn parallel_output_is_in_unit_order() {
        let seq = run_units(Parallelism::Sequential, 100, mk);
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(run_units(Parallelism::Threads(workers), 100, mk), seq);
        }
        assert_eq!(run_units(Parallelism::Auto, 100, mk), seq);
    }

    #[test]
    fn zero_units_is_empty() {
        assert!(run_units(Parallelism::Auto, 0, mk).is_empty());
    }

    #[test]
    fn worker_counts_resolve() {
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }
}
