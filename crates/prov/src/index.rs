//! Read-optimized reachability index over provenance graphs.
//!
//! The query module answers why-provenance, lineage and impact questions by
//! walking the raw edge list — fine for one-shot CLI runs, wasteful for a
//! long-running query service where the same graph is asked thousands of
//! questions. [`ReachabilityIndex`] trades memory for query time:
//!
//! * **Interned adjacency** — URIs are interned once; the out/in neighbour
//!   lists of every resource are index lookups (like
//!   [`CompactGraph`](crate::storage::CompactGraph)), kept in *edge-list
//!   order* so answers are byte-identical to the batch query functions.
//! * **Ancestor-set encoding** — for every resource the full downward
//!   (dependency) and upward (dependent) reachable sets are materialised,
//!   so why-provenance and common-origin queries are set unions and
//!   intersections instead of breadth-first searches.
//! * **Incremental maintenance** — [`ReachabilityIndex::add_link`] extends
//!   both encodings in time proportional to the affected closure rows, so a
//!   live maintainer's per-call deltas never force a rebuild.
//!
//! The index is pinned by the `prov.index.{builds,hits,traversals}`
//! counter family: `builds` counts full index constructions, `hits` counts
//! queries answered from the index, and `traversals` counts full-graph
//! edge-list walks (the paths in [`crate::graph`] and [`crate::query`] the
//! index exists to avoid). A serving layer that routes every query through
//! an index shows `traversals == 0` — the analogue of the
//! `prov.trace.channel_map.builds == 0` guarantee for live maintenance.
//!
//! [`EpochSnapshot`] bundles an index with the graph it was built from and
//! a monotone epoch, the unit of the serving layer's `Arc`-swap scheme:
//! writers publish a fresh snapshot after every committed delta, readers
//! query whichever snapshot they hold without blocking ingestion.

use std::collections::{BTreeSet, HashMap, HashSet};

use weblab_obs::Counter;
use weblab_xml::{CallLabel, NodeId};

use crate::algebra::ProvLink;
use crate::graph::{ProvenanceGraph, SourceEntry};
use crate::query::WhyProvenance;

/// Full index constructions (initial builds and rebuild-from-scratch).
static INDEX_BUILDS: Counter = Counter::new("prov.index.builds");
/// Queries answered from an index (no edge-list walk).
static INDEX_HITS: Counter = Counter::new("prov.index.hits");
/// Full-graph edge-list traversals (the un-indexed query paths).
static INDEX_TRAVERSALS: Counter = Counter::new("prov.index.traversals");
/// Links merged into indexes incrementally (delta maintenance).
static INDEX_LINKS: Counter = Counter::new("prov.index.links");

/// Record one full-graph traversal. Called by the edge-list query paths in
/// [`crate::graph`] and [`crate::query`] so tests and the serving layer can
/// pin their absence.
pub(crate) fn record_traversal() {
    INDEX_TRAVERSALS.inc();
}

/// A read-optimized reachability index over a provenance graph's edges and
/// Source table. See the module docs for the encoding.
#[derive(Debug, Clone, Default)]
pub struct ReachabilityIndex {
    /// Interned URI strings.
    uris: Vec<String>,
    /// Node of each interned resource (for [`ProvLink`] reconstruction).
    nodes: Vec<NodeId>,
    /// URI → interned id.
    ids: HashMap<String, u32>,
    /// Outgoing adjacency, sorted by `(node, uri)` — edge-list order.
    deps: Vec<Vec<u32>>,
    /// Incoming adjacency, sorted by `(node, uri)` — edge-list order.
    rdeps: Vec<Vec<u32>>,
    /// Downward closure: every resource reachable along dependency links.
    down: Vec<BTreeSet<u32>>,
    /// Upward closure: every resource that can reach this one.
    up: Vec<BTreeSet<u32>>,
    /// Label of each labelled resource (first registration wins, like
    /// [`ProvenanceGraph::label_of`]).
    labels: HashMap<String, CallLabel>,
    /// The Source table rows absorbed so far, in registration order.
    sources: Vec<SourceEntry>,
    /// Distinct edges.
    edges: usize,
}

impl ReachabilityIndex {
    /// An empty index. Counts as one build: constructing an index (and then
    /// feeding it deltas) is the unit the `prov.index.builds` counter pins.
    pub fn new() -> Self {
        INDEX_BUILDS.inc();
        ReachabilityIndex::default()
    }

    /// Build from a materialised graph — Source table and edges together.
    pub fn from_graph(graph: &ProvenanceGraph) -> Self {
        let mut idx = ReachabilityIndex::new();
        idx.add_sources(&graph.sources);
        for l in &graph.links {
            idx.add_link(l);
        }
        idx
    }

    fn intern(&mut self, uri: &str, node: NodeId) -> u32 {
        if let Some(&id) = self.ids.get(uri) {
            return id;
        }
        let id = self.uris.len() as u32;
        self.uris.push(uri.to_string());
        self.nodes.push(node);
        self.deps.push(Vec::new());
        self.rdeps.push(Vec::new());
        self.down.push(BTreeSet::new());
        self.up.push(BTreeSet::new());
        self.ids.insert(uri.to_string(), id);
        id
    }

    /// The edge-list sort key of an interned resource: links order by
    /// `(node, uri)` first on each side, so adjacency lists sorted by this
    /// key enumerate neighbours exactly as a sorted edge list would.
    fn key(&self, id: u32) -> (NodeId, &str) {
        (self.nodes[id as usize], &self.uris[id as usize])
    }

    /// Absorb new Source rows (idempotent per URI for label lookup; rows
    /// are appended in registration order like the batch Source table).
    pub fn add_sources(&mut self, sources: &[SourceEntry]) {
        for s in sources {
            self.intern(&s.uri, s.node);
            self.labels
                .entry(s.uri.clone())
                .or_insert_with(|| s.label.clone());
            self.sources.push(s.clone());
        }
    }

    /// Merge one dependency link, extending adjacency and both closures
    /// incrementally. Returns `false` if the edge was already present.
    ///
    /// Closure maintenance is the classic insert-only rule: everything that
    /// reaches `from` (including `from`) now also reaches `to` and
    /// everything below it; symmetrically for the upward sets. Work is
    /// proportional to the touched closure rows, never to the whole graph.
    pub fn add_link(&mut self, link: &ProvLink) -> bool {
        let from = self.intern(&link.from_uri, link.from);
        let to = self.intern(&link.to_uri, link.to);
        let pos = {
            let key = self.key(to);
            match self.deps[from as usize].binary_search_by(|&c| self.key(c).cmp(&key)) {
                Ok(_) => return false,
                Err(pos) => pos,
            }
        };
        self.deps[from as usize].insert(pos, to);
        let rpos = {
            let key = self.key(from);
            match self.rdeps[to as usize].binary_search_by(|&c| self.key(c).cmp(&key)) {
                Ok(p) => p, // unreachable: deps and rdeps are symmetric
                Err(pos) => pos,
            }
        };
        self.rdeps[to as usize].insert(rpos, from);
        self.edges += 1;
        INDEX_LINKS.inc();
        // closure update: sources = {from} ∪ up(from), sinks = {to} ∪ down(to)
        let mut above: Vec<u32> = self.up[from as usize].iter().copied().collect();
        above.push(from);
        let mut below: Vec<u32> = self.down[to as usize].iter().copied().collect();
        below.push(to);
        for &x in &above {
            self.down[x as usize].extend(below.iter().copied());
        }
        for &y in &below {
            self.up[y as usize].extend(above.iter().copied());
        }
        true
    }

    /// Merge a delta of links, returning how many were new.
    pub fn add_links(&mut self, links: &[ProvLink]) -> usize {
        links.iter().filter(|l| self.add_link(l)).count()
    }

    /// Distinct edges indexed.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Distinct resources interned.
    pub fn resource_count(&self) -> usize {
        self.uris.len()
    }

    /// The Source table rows absorbed so far.
    pub fn sources(&self) -> &[SourceEntry] {
        &self.sources
    }

    /// Label of a resource, if registered.
    pub fn label_of(&self, uri: &str) -> Option<&CallLabel> {
        self.labels.get(uri)
    }

    /// Direct dependencies, identical to
    /// [`ProvenanceGraph::dependencies_of`] on the same edge set — but an
    /// index lookup instead of an edge-list scan.
    pub fn dependencies_of(&self, uri: &str) -> Vec<&str> {
        INDEX_HITS.inc();
        self.ids
            .get(uri)
            .map(|&id| {
                self.deps[id as usize]
                    .iter()
                    .map(|&d| self.uris[d as usize].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Direct dependents, identical to [`ProvenanceGraph::dependents_of`].
    pub fn dependents_of(&self, uri: &str) -> Vec<&str> {
        INDEX_HITS.inc();
        self.ids
            .get(uri)
            .map(|&id| {
                self.rdeps[id as usize]
                    .iter()
                    .map(|&d| self.uris[d as usize].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The downward closure of a URI as interned ids, including the root if
    /// it is interned.
    fn down_closure(&self, uri: &str) -> BTreeSet<u32> {
        match self.ids.get(uri) {
            Some(&id) => {
                let mut set = self.down[id as usize].clone();
                set.insert(id);
                set
            }
            None => BTreeSet::new(),
        }
    }

    /// Why-provenance from the ancestor sets: byte-identical to
    /// [`crate::query::why`] on the same graph, with no edge-list walk —
    /// the justifying subgraph's links are exactly the out-edges of the
    /// downward closure (which is closed under dependencies).
    pub fn why(&self, uri: &str) -> WhyProvenance {
        INDEX_HITS.inc();
        let mut resources: BTreeSet<String> = BTreeSet::new();
        resources.insert(uri.to_string());
        let mut links = Vec::new();
        for &u in &self.down_closure(uri) {
            resources.insert(self.uris[u as usize].clone());
            for &v in &self.deps[u as usize] {
                links.push(ProvLink {
                    from: self.nodes[u as usize],
                    from_uri: self.uris[u as usize].clone(),
                    to: self.nodes[v as usize],
                    to_uri: self.uris[v as usize].clone(),
                });
            }
        }
        links.sort();
        links.dedup();
        let mut calls: Vec<CallLabel> = resources
            .iter()
            .filter_map(|r| self.labels.get(r).cloned())
            .collect();
        calls.sort();
        calls.dedup();
        WhyProvenance {
            root: uri.to_string(),
            resources,
            links,
            calls,
        }
    }

    /// Depth-limited lineage, identical to
    /// [`crate::query::lineage_to_depth`]: breadth-first over the adjacency
    /// lists (already in edge-list order), touching only reached rows.
    pub fn lineage(&self, uri: &str, depth: usize) -> Vec<(String, usize)> {
        INDEX_HITS.inc();
        let mut out = vec![(uri.to_string(), 0)];
        let Some(&root) = self.ids.get(uri) else {
            return out;
        };
        let mut seen: HashSet<u32> = HashSet::new();
        seen.insert(root);
        let mut frontier = vec![root];
        for d in 1..=depth {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.deps[u as usize] {
                    if seen.insert(v) {
                        out.push((self.uris[v as usize].clone(), d));
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// Impact analysis, identical to [`crate::query::impacted_by`]:
    /// breadth-first over the incoming adjacency lists.
    pub fn impacted_by(&self, uri: &str) -> Vec<String> {
        INDEX_HITS.inc();
        let Some(&root) = self.ids.get(uri) else {
            return Vec::new();
        };
        let mut seen: HashSet<u32> = HashSet::new();
        seen.insert(root);
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.rdeps[u as usize] {
                if seen.insert(v) {
                    out.push(self.uris[v as usize].clone());
                    queue.push_back(v);
                }
            }
        }
        out
    }

    /// Common origins of two resources: the intersection of the two
    /// downward closures (each including its own root, like the batch
    /// query's why-provenance sets), sorted.
    pub fn common_origins(&self, a: &str, b: &str) -> Vec<String> {
        INDEX_HITS.inc();
        let mut ca: BTreeSet<String> = self
            .down_closure(a)
            .iter()
            .map(|&u| self.uris[u as usize].clone())
            .collect();
        ca.insert(a.to_string());
        let mut cb: BTreeSet<String> = self
            .down_closure(b)
            .iter()
            .map(|&u| self.uris[u as usize].clone())
            .collect();
        cb.insert(b.to_string());
        ca.intersection(&cb).cloned().collect()
    }

    /// Interned id of a URI, if present (rank-module access).
    pub(crate) fn id_of(&self, uri: &str) -> Option<u32> {
        self.ids.get(uri).copied()
    }

    /// URI of an interned id (rank-module access).
    pub(crate) fn uri_of(&self, id: u32) -> &str {
        &self.uris[id as usize]
    }

    /// Outgoing (dependency) neighbours of an interned id, edge-list order.
    pub(crate) fn deps_of_id(&self, id: u32) -> &[u32] {
        &self.deps[id as usize]
    }

    /// Incoming (dependent) neighbours of an interned id, edge-list order.
    pub(crate) fn rdeps_of_id(&self, id: u32) -> &[u32] {
        &self.rdeps[id as usize]
    }

    /// Size of the precomputed downward closure of an id (root excluded).
    pub(crate) fn down_size(&self, id: u32) -> usize {
        self.down[id as usize].len()
    }

    /// Size of the precomputed upward closure of an id (root excluded).
    pub(crate) fn up_size(&self, id: u32) -> usize {
        self.up[id as usize].len()
    }

    /// The label table (rank-module access for per-service aggregation).
    pub(crate) fn label_table(&self) -> &HashMap<String, CallLabel> {
        &self.labels
    }

    /// Expand back to the sorted edge list the index was fed.
    pub fn expand(&self) -> Vec<ProvLink> {
        let mut out = Vec::with_capacity(self.edges);
        for from in 0..self.deps.len() {
            for &to in &self.deps[from] {
                out.push(ProvLink {
                    from: self.nodes[from],
                    from_uri: self.uris[from].clone(),
                    to: self.nodes[to as usize],
                    to_uri: self.uris[to as usize].clone(),
                });
            }
        }
        out.sort();
        out
    }
}

/// An immutable snapshot of one execution's provenance as of a monotone
/// epoch: the materialised graph (for batch-equivalence checks and SPARQL
/// export) plus the reachability index over it.
///
/// This is the unit of the serving layer's concurrency scheme: the platform
/// keeps one mutable master per execution and publishes an
/// `Arc<EpochSnapshot>` after every committed delta; readers clone the
/// `Arc` and answer from a consistent graph while ingestion keeps moving.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotone snapshot version (bumped once per published refresh).
    pub epoch: u64,
    /// Committed service calls folded into this snapshot.
    pub calls: usize,
    /// The materialised graph as of `epoch`.
    pub graph: ProvenanceGraph,
    /// The reachability index over exactly that graph.
    pub index: ReachabilityIndex,
}

impl EpochSnapshot {
    /// An empty snapshot at epoch 0 (no calls, no links). A placeholder,
    /// not a built index: it does not tick `prov.index.builds`.
    pub fn empty() -> Self {
        EpochSnapshot {
            epoch: 0,
            calls: 0,
            graph: ProvenanceGraph::default(),
            index: ReachabilityIndex::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, EngineOptions, InheritMode};
    use crate::paper_example;
    use crate::query;

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        )
    }

    fn all_uris(g: &ProvenanceGraph) -> Vec<String> {
        let mut uris: Vec<String> = g
            .sources
            .iter()
            .map(|s| s.uri.clone())
            .chain(
                g.links
                    .iter()
                    .flat_map(|l| [l.from_uri.clone(), l.to_uri.clone()]),
            )
            .collect();
        uris.push("not-a-resource".into());
        uris.sort();
        uris.dedup();
        uris
    }

    #[test]
    fn index_answers_match_batch_queries_on_every_resource() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        for uri in all_uris(&g) {
            assert_eq!(
                idx.dependencies_of(&uri),
                g.dependencies_of(&uri),
                "deps of {uri}"
            );
            assert_eq!(
                idx.dependents_of(&uri),
                g.dependents_of(&uri),
                "rdeps of {uri}"
            );
            assert_eq!(idx.why(&uri), query::why(&g, &uri), "why of {uri}");
            for depth in 0..4 {
                assert_eq!(
                    idx.lineage(&uri, depth),
                    query::lineage_to_depth(&g, &uri, depth),
                    "lineage of {uri} at depth {depth}"
                );
            }
            assert_eq!(
                idx.impacted_by(&uri),
                query::impacted_by(&g, &uri),
                "impact of {uri}"
            );
        }
        for a in all_uris(&g) {
            for b in all_uris(&g) {
                assert_eq!(
                    idx.common_origins(&a, &b),
                    query::common_origins(&g, &a, &b),
                    "common origins of {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn incremental_insertion_equals_full_build() {
        let g = graph();
        let full = ReachabilityIndex::from_graph(&g);
        let mut inc = ReachabilityIndex::new();
        inc.add_sources(&g.sources);
        for l in &g.links {
            assert!(inc.add_link(l));
        }
        assert_eq!(inc.expand(), full.expand());
        assert_eq!(inc.expand(), g.links);
        for uri in all_uris(&g) {
            assert_eq!(inc.why(&uri), full.why(&uri));
            assert_eq!(inc.impacted_by(&uri), full.impacted_by(&uri));
        }
        // re-merging the same delta is a no-op
        assert_eq!(inc.add_links(&g.links), 0);
        assert_eq!(inc.edge_count(), g.links.len());
    }

    #[test]
    fn closure_survives_cycles() {
        // provenance graphs are DAGs by construction, but the index must
        // not loop or corrupt its closure if fed one
        fn link(f: (usize, &str), t: (usize, &str)) -> ProvLink {
            ProvLink {
                from: NodeId::from_index(f.0),
                from_uri: f.1.into(),
                to: NodeId::from_index(t.0),
                to_uri: t.1.into(),
            }
        }
        let links = [
            link((1, "a"), (2, "b")),
            link((2, "b"), (3, "c")),
            link((3, "c"), (1, "a")),
        ];
        let mut idx = ReachabilityIndex::new();
        for l in &links {
            idx.add_link(l);
        }
        let mut g = ProvenanceGraph::default();
        g.add_links(links.iter().cloned());
        for u in ["a", "b", "c"] {
            assert_eq!(idx.why(u), query::why(&g, u), "why of {u} on a cycle");
            assert_eq!(idx.impacted_by(u), query::impacted_by(&g, u));
        }
        assert_eq!(idx.common_origins("a", "c"), query::common_origins(&g, "a", "c"));
    }

    #[test]
    fn labels_follow_first_registration() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        for s in &g.sources {
            assert_eq!(idx.label_of(&s.uri), g.label_of(&s.uri));
        }
        assert!(idx.label_of("nope").is_none());
    }

    #[test]
    fn empty_snapshot_is_epoch_zero() {
        let snap = EpochSnapshot::empty();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.calls, 0);
        assert!(snap.graph.links.is_empty());
        assert_eq!(snap.index.edge_count(), 0);
    }
}
