//! Replay support: dirty-cone extraction and link rebasing.
//!
//! The provenance links' killer application is *incremental
//! recomputation*: when an input artifact changes, the set of resources
//! that must be recomputed is exactly the upward closure of the changed
//! URIs in the dependency graph — a union of [`ReachabilityIndex`]
//! `impacted_by` answers. [`dirty_cone`] materialises that set; the
//! workflow engine then re-executes only the calls whose produced
//! resources intersect it and splices every other fragment forward.
//!
//! Splicing shifts node ids (a recomputed call may change its fragment's
//! size, displacing everything after it in the arena) but preserves URIs,
//! so the prior execution's links for reused fragments stay *semantically*
//! valid and only need their node endpoints remapped — [`rebase_links`].
//! Re-deriving those links through rule evaluation would cost the full
//! inference the cone was meant to avoid.

use std::collections::BTreeSet;

use weblab_xml::NodeId;

use crate::algebra::ProvLink;
use crate::index::ReachabilityIndex;

/// The dirty cone of a set of changed artifact URIs: the changed URIs
/// themselves plus everything transitively depending on any of them
/// (union of [`ReachabilityIndex::impacted_by`] answers), as a sorted set.
pub fn dirty_cone(index: &ReachabilityIndex, changed: &[String]) -> BTreeSet<String> {
    let mut cone: BTreeSet<String> = BTreeSet::new();
    for uri in changed {
        cone.insert(uri.clone());
        cone.extend(index.impacted_by(uri));
    }
    cone
}

/// The call-granular closure of [`dirty_cone`]: once any produced
/// resource of a call is dirty, *every* resource that call produced is
/// treated as dirty too — their impacted sets join the cone, to a
/// fixpoint. `calls` is each call's produced URIs.
///
/// This is a *coarse but link-free* safety net for graphs that omit
/// containment (inherited) provenance: base rules link only a fragment's
/// anchor resource, so a sibling (a unit's `TextContent`) has no link to
/// the changed source and its consumers would be spliced stale. The
/// preferred fix is to compute the cone over an inherit-mode inference
/// (what the CLI and platform do); this closure over-approximates badly
/// when one call serves many independent sources, but never splices
/// stale.
pub fn dirty_cone_closed(
    index: &ReachabilityIndex,
    calls: &[Vec<String>],
    changed: &[String],
) -> BTreeSet<String> {
    let mut cone = dirty_cone(index, changed);
    loop {
        let mut grew = false;
        for produced in calls {
            if !produced.iter().any(|u| cone.contains(u)) {
                continue;
            }
            for u in produced {
                if cone.insert(u.clone()) {
                    cone.extend(index.impacted_by(u));
                    grew = true;
                }
            }
        }
        if !grew {
            return cone;
        }
    }
}

/// Rebase a slice of prior-execution links onto a replayed document: every
/// node endpoint is remapped through `map` (prior node id → new node id)
/// while the URIs — the stable identities — are kept verbatim. Returns
/// `None` if any endpoint has no image (its fragment was reshaped by a
/// recomputed call, so the link must be re-inferred instead).
pub fn rebase_links<F>(links: &[ProvLink], mut map: F) -> Option<Vec<ProvLink>>
where
    F: FnMut(NodeId) -> Option<NodeId>,
{
    let mut out = Vec::with_capacity(links.len());
    for l in links {
        let from = map(l.from)?;
        let to = map(l.to)?;
        out.push(ProvLink {
            from,
            from_uri: l.from_uri.clone(),
            to,
            to_uri: l.to_uri.clone(),
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProvenanceGraph;

    fn link(f: (usize, &str), t: (usize, &str)) -> ProvLink {
        ProvLink {
            from: NodeId::from_index(f.0),
            from_uri: f.1.into(),
            to: NodeId::from_index(t.0),
            to_uri: t.1.into(),
        }
    }

    #[test]
    fn cone_is_the_union_of_impacted_sets_plus_the_roots() {
        // a → b → c, d isolated
        let mut g = ProvenanceGraph::default();
        g.add_links([link((2, "b"), (1, "a")), link((3, "c"), (2, "b"))]);
        let idx = ReachabilityIndex::from_graph(&g);
        let cone = dirty_cone(&idx, &["a".to_string()]);
        assert_eq!(
            cone.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        // unknown roots stay in the cone (they may be unreferenced inputs)
        let cone = dirty_cone(&idx, &["d".to_string()]);
        assert_eq!(cone.iter().map(String::as_str).collect::<Vec<_>>(), vec!["d"]);
        // multi-root union
        let cone = dirty_cone(&idx, &["b".to_string(), "d".to_string()]);
        assert_eq!(
            cone.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["b", "c", "d"]
        );
    }

    #[test]
    fn closed_cone_pulls_in_call_siblings_and_their_consumers() {
        // a → b, and x → y; b and x are produced by the same call, so a
        // change to `a` must also dirty x's consumer y via the closure.
        let mut g = ProvenanceGraph::default();
        g.add_links([link((2, "b"), (1, "a")), link((4, "y"), (3, "x"))]);
        let idx = ReachabilityIndex::from_graph(&g);
        let calls = vec![vec!["b".to_string(), "x".to_string()], vec!["y".to_string()]];
        let plain = dirty_cone(&idx, &["a".to_string()]);
        assert_eq!(
            plain.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        let closed = dirty_cone_closed(&idx, &calls, &["a".to_string()]);
        assert_eq!(
            closed.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["a", "b", "x", "y"]
        );
        // a clean chain stays out of the closed cone
        let closed = dirty_cone_closed(&idx, &calls, &["q".to_string()]);
        assert_eq!(closed.iter().map(String::as_str).collect::<Vec<_>>(), vec!["q"]);
    }

    #[test]
    fn rebase_remaps_nodes_and_keeps_uris() {
        let links = [link((4, "x"), (2, "y"))];
        let rebased =
            rebase_links(&links, |n| Some(NodeId::from_index(n.index() + 10))).unwrap();
        assert_eq!(rebased[0].from.index(), 14);
        assert_eq!(rebased[0].to.index(), 12);
        assert_eq!(rebased[0].from_uri, "x");
        assert_eq!(rebased[0].to_uri, "y");
        // an unmapped endpoint fails the whole rebase
        assert!(rebase_links(&links, |n| (n.index() != 2).then_some(n)).is_none());
    }
}
