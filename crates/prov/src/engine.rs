//! Provenance inference strategies — Definitions 8/9 and Section 4.
//!
//! Three interchangeable strategies compute the same provenance graph:
//!
//! * [`Strategy::StateReplay`] — the paper's "simple, but also inefficient
//!   solution": reconstruct the document states `d_{i-1}`, `d_i` around
//!   every call and apply Definition 8/9 directly. With
//!   `materialize: true` each state is deep-copied first, modelling an
//!   implementation that fetches per-state snapshots from a repository.
//! * [`Strategy::TemporalRewrite`] — the paper's main proposal: rewrite
//!   each rule with temporal constraints (`[@t < t_i]` on the source,
//!   `[@s = s and @t = t_i]` on the target) and evaluate both patterns on
//!   the **final** document, once per call.
//! * [`Strategy::GroupedSinglePass`] — the factorised variant hinted at in
//!   Section 4's discussion of optimisation opportunities: evaluate each
//!   rule **once** per service on the final document, bucket the target
//!   embeddings by producing call, and filter the shared source table by
//!   timestamp per bucket.
//!
//! All three support *inherited provenance* (Section 4), either by the
//! paper's `descendant-or-self::*` pattern extension or by a posthoc graph
//! propagation that is proven equivalent in the property-test suite.
//!
//! Every strategy decomposes into independent evaluation units — (call ×
//! rule) for the per-call strategies, (service × rule) for the grouped one
//! — which the [`crate::executor`] fans out across scoped threads when
//! [`EngineOptions::parallelism`] asks for it, and which share one
//! [`PatternCache`] plus one lazily built [`ElementIndex`]. The temporal
//! strategies exploit a structural fact of the rewriting
//! (`add_source_constraints` / `add_target_constraints` only ever append a
//! predicate on the **last** step, testing the result node's effective
//! time/label): instead of evaluating a freshly rewritten pattern per call,
//! they evaluate each rule's *unconstrained* patterns once, cache the
//! tables, and recover every call's result by filtering shared rows.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::OnceLock;

use weblab_obs::Counter;
use weblab_xml::{DocView, Document, NodeId, Timestamp};
use weblab_xpath::{
    effective_label, effective_time, eval_pattern, extend_descendant_or_self, BindingRow,
    ElementIndex,
};

use crate::algebra::{join_rows, join_tables, join_tables_where, JoinAlgorithm, ProvLink};
use crate::cache::PatternCache;
use crate::executor::{run_units, Parallelism};
use crate::graph::ProvenanceGraph;
use crate::rule::MappingRule;
use crate::ruleset::RuleSet;
use crate::trace::{channels_compatible, CallRecord, ExecutionTrace};

/// Evaluation units dispatched by `StateReplay` ((call × rule) each).
static REPLAY_UNITS: Counter = Counter::new("prov.engine.replay.units");
/// Evaluation units dispatched by `TemporalRewrite` ((call × rule) each).
static TEMPORAL_UNITS: Counter = Counter::new("prov.engine.temporal.units");
/// Evaluation units dispatched by `GroupedSinglePass` ((service × rule)).
static GROUPED_UNITS: Counter = Counter::new("prov.engine.grouped.units");
/// Links produced by the strategy units, before sort/dedup/propagation.
static LINKS_DERIVED: Counter = Counter::new("prov.engine.links.derived");
/// Links emitted after post-processing (inheritance, sort, dedup).
static LINKS_EMITTED: Counter = Counter::new("prov.engine.links.emitted");

/// Which evaluation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Per-call evaluation on reconstructed intermediate states.
    StateReplay {
        /// Deep-copy each state before evaluating (the truly naive
        /// baseline); `false` evaluates on zero-copy state views.
        materialize: bool,
    },
    /// Temporal rewriting, evaluated on the final state once per call.
    TemporalRewrite,
    /// One evaluation per rule per service; per-call results recovered by
    /// bucketing target embeddings on their producing label.
    GroupedSinglePass,
}

/// How inherited provenance links (Section 4) are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InheritMode {
    /// Only the explicit rule endpoints are linked.
    #[default]
    Off,
    /// Extend patterns with a `descendant-or-self::*` step before applying
    /// temporal constraints — the paper's formulation.
    PatternRewrite,
    /// Compute explicit links first, then propagate each link to nested
    /// resources (same-call descendants on the generated side, temporally
    /// admissible descendants on the used side).
    GraphPropagation,
}

/// Options bundle for [`infer_provenance`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Inherited-provenance mode.
    pub inherit: InheritMode,
    /// Join algorithm for the Definition 8 algebra.
    pub join: JoinAlgorithm,
    /// Build an element-name index over the final document once per run
    /// and use it for every root-anchored descendant step (the "existing
    /// query optimization techniques … indexing" of Section 6). Disable
    /// for the X2 ablation.
    pub use_index: bool,
    /// How evaluation units are scheduled: sequentially (the default), or
    /// across a scoped-thread worker pool. Output is byte-identical either
    /// way.
    pub parallelism: Parallelism,
    /// Feed the engine-level `weblab_obs` counters (units dispatched, links
    /// derived/emitted). A second gate besides the global
    /// `weblab_obs::enable()` switch: a caller running several inferences
    /// can exclude e.g. warm-up runs from the report without toggling
    /// collection process-wide.
    pub metrics: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: Strategy::TemporalRewrite,
            inherit: InheritMode::Off,
            join: JoinAlgorithm::Hash,
            use_index: true,
            parallelism: Parallelism::Sequential,
            metrics: true,
        }
    }
}

/// Read-only evaluation state shared by every unit of one inference run:
/// the pattern cache (borrowed, so a live maintainer can carry one cache
/// across many per-delta runs), and the element index built lazily by
/// whichever worker first needs it (all others block on the `OnceLock` and
/// then share it read-only).
struct SharedEval<'a> {
    use_index: bool,
    index: OnceLock<Option<ElementIndex>>,
    cache: &'a PatternCache,
}

impl<'a> SharedEval<'a> {
    fn new(use_index: bool, cache: &'a PatternCache) -> Self {
        SharedEval {
            use_index,
            index: OnceLock::new(),
            cache,
        }
    }

    /// The shared index over `view` (the final document — its index is
    /// exact for every earlier state view), or `None` when disabled.
    fn index(&self, view: &DocView<'_>) -> Option<&ElementIndex> {
        self.index
            .get_or_init(|| self.use_index.then(|| ElementIndex::build(view)))
            .as_ref()
    }
}

/// Definition 8: apply a mapping rule to two document states, producing
/// links from resources of `target_view` to resources of `source_view`.
pub fn document_state_provenance(
    rule: &MappingRule,
    source_view: &DocView<'_>,
    target_view: &DocView<'_>,
    join: JoinAlgorithm,
) -> Vec<ProvLink> {
    let s = eval_pattern(&rule.source, source_view);
    let t = eval_pattern(&rule.target, target_view);
    join_tables(&s, &t, join)
}

/// Definition 9: the direct provenance links of one service call — the
/// subset of `M(d_{i-1}, d_i)` whose generated endpoint belongs to
/// `out(c_i)`.
pub fn service_call_provenance(
    rule: &MappingRule,
    doc: &Document,
    call: &CallRecord,
    join: JoinAlgorithm,
) -> Vec<ProvLink> {
    let links = document_state_provenance(
        rule,
        &doc.view_at(call.input),
        &doc.view_at(call.output),
        join,
    );
    let produced: HashSet<NodeId> = call.produced.iter().copied().collect();
    links
        .into_iter()
        .filter(|l| produced.contains(&l.from))
        .collect()
}

/// Infer the full provenance graph of an execution.
pub fn infer_provenance(
    doc: &Document,
    trace: &ExecutionTrace,
    rules: &RuleSet,
    opts: &EngineOptions,
) -> ProvenanceGraph {
    let final_view = doc.view();
    let mut graph = ProvenanceGraph::from_view(&final_view);
    graph.add_links(infer_links_since(doc, trace, 0, rules, opts));
    graph
}

/// Infer only the links contributed by calls `trace.calls[first_call..]` —
/// the *incremental* entry point: a Request Manager that already
/// materialised a graph re-derives just the delta when new calls arrive,
/// instead of re-evaluating every rule for every historical call.
///
/// Correctness rests on the append-only model: earlier calls' links are
/// unaffected by later appends (their target constraint pins `@s`/`@t`,
/// and their sources predate them), so `links(0..n) = links(0..k) ∪
/// links(k..n)` — a property pinned by tests.
pub fn infer_links_since(
    doc: &Document,
    trace: &ExecutionTrace,
    first_call: usize,
    rules: &RuleSet,
    opts: &EngineOptions,
) -> Vec<ProvLink> {
    // channel visibility depends on every call of the execution
    let channel_map = trace.channel_map();
    let cache = PatternCache::new();
    infer_links_since_cached(doc, trace, first_call, rules, opts, &channel_map, &cache)
}

/// [`infer_links_since`] with caller-owned evaluation state: the channel
/// map and the pattern cache are passed in instead of being rebuilt per
/// invocation. This is the live-maintenance entry point
/// ([`crate::live::LiveProvenance`]): a maintainer processing one delta per
/// call keeps the channel map incrementally updated (O(delta) instead of
/// the O(trace) rebuild `trace.channel_map()` performs) and carries one
/// [`PatternCache`] across deltas so evaluations against unchanged document
/// states are reused.
///
/// The caller's `channel_map` must cover at least every produced node of
/// `trace.calls[..first_call + processed]` — for a prefix map this is
/// equivalent to the full map because a call's link targets (and their
/// ancestors) always predate the call.
#[allow(clippy::too_many_arguments)]
pub fn infer_links_since_cached(
    doc: &Document,
    trace: &ExecutionTrace,
    first_call: usize,
    rules: &RuleSet,
    opts: &EngineOptions,
    channel_map: &HashMap<NodeId, String>,
    cache: &PatternCache,
) -> Vec<ProvLink> {
    let calls = &trace.calls[first_call.min(trace.calls.len())..];
    match opts.strategy {
        Strategy::StateReplay { materialize } => {
            replay_links(doc, calls, channel_map, rules, opts, materialize, cache)
        }
        Strategy::TemporalRewrite => temporal_links(doc, calls, channel_map, rules, opts, cache),
        Strategy::GroupedSinglePass => grouped_links(doc, calls, channel_map, rules, opts, cache),
    }
}

/// Apply the inherit mode's pattern transformation to a rule.
fn effective_rule(rule: &MappingRule, inherit: InheritMode) -> MappingRule {
    match inherit {
        InheritMode::PatternRewrite => MappingRule {
            name: rule.name.clone(),
            source: extend_descendant_or_self(&rule.source),
            target: extend_descendant_or_self(&rule.target),
        },
        _ => rule.clone(),
    }
}

/// Is `node`'s ancestor-or-self chain intersecting `produced`? Used to
/// filter extended (descendant-or-self) matches against `out(c_i)`.
fn within_produced(view: &DocView<'_>, node: NodeId, produced: &HashSet<NodeId>) -> bool {
    if produced.contains(&node) {
        return true;
    }
    view.ancestors(node).any(|a| produced.contains(&a))
}

/// Effective channel of a node: its own entry in the produced-node map,
/// else the nearest such ancestor's, else the root channel `""`.
fn effective_channel<'m>(
    view: &DocView<'_>,
    node: NodeId,
    map: &'m HashMap<NodeId, String>,
) -> &'m str {
    if let Some(c) = map.get(&node) {
        return c;
    }
    for anc in view.ancestors(node) {
        if let Some(c) = map.get(&anc) {
            return c;
        }
    }
    ""
}

/// Channel-visibility filter for parallel executions (Section 8
/// extension): a call can only have used resources produced on a channel
/// that is an ancestor or descendant of its own — sibling branches are
/// mutually invisible even when their timestamps interleave.
pub fn filter_links_by_channel(
    view: &DocView<'_>,
    links: Vec<ProvLink>,
    call_channel: &str,
    channel_map: &HashMap<NodeId, String>,
) -> Vec<ProvLink> {
    if channel_map.is_empty() {
        return links;
    }
    links
        .into_iter()
        .filter(|l| {
            channels_compatible(call_channel, effective_channel(view, l.to, channel_map))
        })
        .collect()
}

fn replay_links(
    doc: &Document,
    calls: &[CallRecord],
    channel_map: &HashMap<NodeId, String>,
    rules: &RuleSet,
    opts: &EngineOptions,
    materialize: bool,
    cache: &PatternCache,
) -> Vec<ProvLink> {
    let final_view = doc.view();
    // the final-document index is exact for every earlier state view;
    // materialized copies have their own arenas, so no index for them
    let shared = SharedEval::new(opts.use_index && !materialize, cache);
    let units: Vec<(&CallRecord, &MappingRule)> = calls
        .iter()
        .flat_map(|c| rules.rules_for(&c.service).iter().map(move |r| (c, r)))
        .collect();
    let out = run_units(opts.parallelism, units.len(), |i| {
        let (call, rule) = units[i];
        let produced: HashSet<NodeId> = call.produced.iter().copied().collect();
        // The input state's structure with the output state's uri function:
        // promotions performed during the call (node 3 → r3 in Figure 4)
        // identify source resources exactly as the posthoc strategies see
        // them on the final document.
        let input_mark = call.input.with_resources_of(call.output);
        let rule = effective_rule(rule, opts.inherit);
        let links = if materialize {
            let before = doc.materialize_state(input_mark);
            let after = doc.materialize_state(call.output);
            document_state_provenance(&rule, &before.view(), &after.view(), opts.join)
        } else {
            let index = shared.index(&final_view);
            let s = shared.cache.eval(&rule.source, &doc.view_at(input_mark), index);
            let t = shared.cache.eval(&rule.target, &doc.view_at(call.output), index);
            join_tables(&s, &t, opts.join)
        };
        let view = doc.view_at(call.output);
        let links: Vec<ProvLink> = links
            .into_iter()
            .filter(|l| match opts.inherit {
                InheritMode::PatternRewrite => within_produced(&view, l.from, &produced),
                _ => produced.contains(&l.from),
            })
            .collect();
        filter_links_by_channel(&final_view, links, &call.channel, channel_map)
    });
    if opts.metrics {
        REPLAY_UNITS.add(units.len() as u64);
    }
    finish(out, doc, opts)
}

fn temporal_links(
    doc: &Document,
    calls: &[CallRecord],
    channel_map: &HashMap<NodeId, String>,
    rules: &RuleSet,
    opts: &EngineOptions,
    cache: &PatternCache,
) -> Vec<ProvLink> {
    let final_view = doc.view();
    let shared = SharedEval::new(opts.use_index, cache);
    let units: Vec<(&CallRecord, &MappingRule)> = calls
        .iter()
        .flat_map(|c| rules.rules_for(&c.service).iter().map(move |r| (c, r)))
        .collect();
    let out = run_units(opts.parallelism, units.len(), |i| {
        let (call, rule) = units[i];
        let rule = effective_rule(rule, opts.inherit);
        let index = shared.index(&final_view);
        // One unconstrained evaluation per rule pattern, shared by every
        // call through the cache. Filtering its rows *is* the temporal
        // rewriting: `add_source_constraints` appends `[@t < t_i]` and
        // `add_target_constraints` appends `[@s = s and @t = t_i]` to the
        // last step only, and both test the row's result node.
        let s_all = shared.cache.eval(&rule.source, &final_view, index);
        let t_all = shared.cache.eval(&rule.target, &final_view, index);
        let links = join_tables_where(
            &s_all,
            &t_all,
            opts.join,
            |r| effective_time(&final_view, r.node) < call.time,
            |r| {
                effective_label(&final_view, r.node)
                    .map(|l| l.service == call.service && l.time == call.time)
                    .unwrap_or(false)
            },
        );
        filter_links_by_channel(&final_view, links, &call.channel, channel_map)
    });
    if opts.metrics {
        TEMPORAL_UNITS.add(units.len() as u64);
    }
    finish(out, doc, opts)
}

fn grouped_links(
    doc: &Document,
    calls: &[CallRecord],
    channel_map: &HashMap<NodeId, String>,
    rules: &RuleSet,
    opts: &EngineOptions,
    cache: &PatternCache,
) -> Vec<ProvLink> {
    let final_view = doc.view();
    let shared = SharedEval::new(opts.use_index, cache);
    let channel_of_call: HashMap<Timestamp, &str> = calls
        .iter()
        .map(|c| (c.time, c.channel.as_str()))
        .collect();
    // calls grouped by service, with their instants
    let mut calls_by_service: BTreeMap<&str, HashSet<Timestamp>> = BTreeMap::new();
    for call in calls {
        calls_by_service
            .entry(call.service.as_str())
            .or_default()
            .insert(call.time);
    }
    let units: Vec<(&str, &HashSet<Timestamp>, &MappingRule)> = calls_by_service
        .iter()
        .flat_map(|(service, times)| {
            rules
                .rules_for(service)
                .iter()
                .map(move |r| (*service, times, r))
        })
        .collect();
    let out = run_units(opts.parallelism, units.len(), |i| {
        let (service, times, rule) = units[i];
        let rule = effective_rule(rule, opts.inherit);
        let index = shared.index(&final_view);
        // one evaluation per rule on the final state
        let src_all = shared.cache.eval(&rule.source, &final_view, index);
        let tgt_all = shared.cache.eval(&rule.target, &final_view, index);
        // bucket target rows by their producing instant — borrowed rows,
        // never copies
        let mut buckets: BTreeMap<Timestamp, Vec<&BindingRow>> = BTreeMap::new();
        for row in &tgt_all.rows {
            let Some(label) = effective_label(&final_view, row.node) else {
                continue;
            };
            if label.service != service || !times.contains(&label.time) {
                continue;
            }
            buckets.entry(label.time).or_default().push(row);
        }
        // per call instant, filter the shared source table by time
        let mut out = Vec::new();
        for (time, t_rows) in buckets {
            let s_rows: Vec<&BindingRow> = src_all
                .rows
                .iter()
                .filter(|r| effective_time(&final_view, r.node) < time)
                .collect();
            let call_channel = channel_of_call.get(&time).copied().unwrap_or("");
            out.extend(filter_links_by_channel(
                &final_view,
                join_rows(&src_all, &s_rows, &tgt_all, &t_rows, opts.join),
                call_channel,
                channel_map,
            ));
        }
        out
    });
    if opts.metrics {
        GROUPED_UNITS.add(units.len() as u64);
    }
    finish(out, doc, opts)
}

/// Common post-processing: optional graph propagation, sort, dedup.
fn finish(mut links: Vec<ProvLink>, doc: &Document, opts: &EngineOptions) -> Vec<ProvLink> {
    if opts.metrics {
        LINKS_DERIVED.add(links.len() as u64);
    }
    if opts.inherit == InheritMode::GraphPropagation {
        links = propagate_inherited(&doc.view(), &links);
    }
    links.sort();
    links.dedup();
    if opts.metrics {
        LINKS_EMITTED.add(links.len() as u64);
    }
    links
}

/// Posthoc propagation equivalent to the pattern-level
/// `descendant-or-self::*` extension:
///
/// * generated side: identified descendants that were produced by the same
///   call as the original endpoint (their effective label matches);
/// * used side: identified descendants whose effective creation instant is
///   before the generating call's instant (matching the `[@t < t_i]`
///   constraint the pattern rewrite applies after extension).
pub fn propagate_inherited(view: &DocView<'_>, links: &[ProvLink]) -> Vec<ProvLink> {
    let mut out: HashSet<ProvLink> = links.iter().cloned().collect();
    for l in links {
        let from_label = effective_label(view, l.from).cloned();
        let gen_time = from_label.as_ref().map(|c| c.time);
        let mut froms = vec![l.from];
        froms.extend(view.descendants(l.from).skip(1).filter(|n| {
            view.uri(*n).is_some()
                && effective_label(view, *n).cloned() == from_label
        }));
        let mut tos = vec![l.to];
        tos.extend(view.descendants(l.to).skip(1).filter(|n| {
            view.uri(*n).is_some()
                && gen_time
                    .map(|t| effective_time(view, *n) < t)
                    .unwrap_or(true)
        }));
        for &f in &froms {
            for &t in &tos {
                if f == t {
                    continue;
                }
                out.insert(ProvLink {
                    from: f,
                    from_uri: view.uri(f).unwrap_or_default().to_string(),
                    to: t,
                    to_uri: view.uri(t).unwrap_or_default().to_string(),
                });
            }
        }
    }
    let mut v: Vec<ProvLink> = out.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::CallLabel;

    /// The paper's running example: document d₃ of Figure 4 with the trace
    /// of Figure 1, plus the Figure 3 mappings. Shared with integration
    /// tests through `weblab-prov::paper_example`.
    fn setup() -> (Document, ExecutionTrace, RuleSet) {
        crate::paper_example::build()
    }

    #[test]
    fn example6_document_state_provenance() {
        // M1 : ϕ1 ⇒ ϕ3 applied to (d1, d2) yields 6 → 5;
        // M2 : ϕ4 ⇒ ϕ4 applied to (d2, d3) yields 4 → 4 and 8 → 4.
        let (doc, trace, _) = setup();
        let d1 = trace.calls[0].output;
        let d2 = trace.calls[1].output;
        let d3 = trace.calls[2].output;

        let m1 = MappingRule::parse("//T[$x := @id]/C => //T[$x := @id]/A[L]").unwrap();
        let links = document_state_provenance(
            &m1,
            &doc.view_at(d1),
            &doc.view_at(d2),
            JoinAlgorithm::Hash,
        );
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from_uri, "r6");
        assert_eq!(links[0].to_uri, "r5");

        let m2 = MappingRule::parse("/R[$x := @id]//T[A/L] => /R[$x := @id]//T[A/L]").unwrap();
        let links = document_state_provenance(
            &m2,
            &doc.view_at(d2),
            &doc.view_at(d3),
            JoinAlgorithm::Hash,
        );
        let mut pairs: Vec<(String, String)> = links
            .iter()
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("r4".to_string(), "r4".to_string()),
                ("r8".to_string(), "r4".to_string())
            ]
        );
    }

    #[test]
    fn example7_service_call_provenance_filters_to_out() {
        // joining M2(d2, d3) with out(c3) keeps only 8 → 4
        let (doc, trace, _) = setup();
        let m2 = MappingRule::parse("/R[$x := @id]//T[A/L] => /R[$x := @id]//T[A/L]").unwrap();
        let c3 = &trace.calls[2];
        let links = service_call_provenance(&m2, &doc, c3, JoinAlgorithm::Hash);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from_uri, "r8");
        assert_eq!(links[0].to_uri, "r4");
    }

    #[test]
    fn all_strategies_agree_on_paper_example() {
        let (doc, trace, rules) = setup();
        let mut results = Vec::new();
        for strategy in [
            Strategy::StateReplay { materialize: false },
            Strategy::StateReplay { materialize: true },
            Strategy::TemporalRewrite,
            Strategy::GroupedSinglePass,
        ] {
            let opts = EngineOptions {
                strategy,
                ..Default::default()
            };
            let g = infer_provenance(&doc, &trace, &rules, &opts);
            results.push(g.links);
        }
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
        assert!(!results[0].is_empty());
    }

    #[test]
    fn paper_example_provenance_table() {
        // Figure 2's Provenance table: dependencies of the running example.
        let (doc, trace, rules) = setup();
        let g = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let pairs: Vec<(String, String)> = g
            .links
            .iter()
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();
        // M1 (Normaliser): r4 ← r3 (NativeContent); M2 (LanguageExtractor):
        // r6 ← r5; M3 (Translator): r8 ← r4.
        assert!(pairs.contains(&("r4".to_string(), "r3".to_string())));
        assert!(pairs.contains(&("r6".to_string(), "r5".to_string())));
        assert!(pairs.contains(&("r8".to_string(), "r4".to_string())));
        assert!(g.is_acyclic());
    }

    #[test]
    fn inherited_modes_agree() {
        let (doc, trace, rules) = setup();
        let pattern = EngineOptions {
            strategy: Strategy::TemporalRewrite,
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        };
        let propagation = EngineOptions {
            inherit: InheritMode::GraphPropagation,
            ..pattern
        };
        let g1 = infer_provenance(&doc, &trace, &rules, &pattern);
        let g2 = infer_provenance(&doc, &trace, &rules, &propagation);
        assert_eq!(g1.links, g2.links);
        // inherited mode discovers the 8 → 6 link of the paper (r6 is a
        // descendant of r4 created before t3)
        assert!(g1
            .links
            .iter()
            .any(|l| l.from_uri == "r8" && l.to_uri == "r6"));
    }

    #[test]
    fn inherited_links_are_a_superset_of_explicit() {
        let (doc, trace, rules) = setup();
        let base = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
        let inh = infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        );
        for l in &base.links {
            assert!(inh.links.contains(l), "missing {l}");
        }
        assert!(inh.links.len() > base.links.len());
    }

    #[test]
    fn propagation_respects_temporal_admissibility() {
        // A resource nested under the *used* endpoint but created after the
        // generating call must not receive an inherited link.
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        let src = d.append_element(root, "Src").unwrap();
        d.register_resource(src, "rs", Some(CallLabel::new("A", 1)))
            .unwrap();
        let tgt = d.append_element(root, "Tgt").unwrap();
        d.register_resource(tgt, "rt", Some(CallLabel::new("B", 2)))
            .unwrap();
        // created later, nested inside the used resource
        let late = d.append_element(src, "Late").unwrap();
        d.register_resource(late, "rl", Some(CallLabel::new("C", 5)))
            .unwrap();
        let links = vec![ProvLink {
            from: tgt,
            from_uri: "rt".into(),
            to: src,
            to_uri: "rs".into(),
        }];
        let prop = propagate_inherited(&d.view(), &links);
        assert!(!prop.iter().any(|l| l.to_uri == "rl"));
    }

    #[test]
    fn incremental_inference_composes() {
        // links(0..n) == links(0..k) ∪ links(k..n), for every split point
        let (doc, trace, rules) = setup();
        let opts = EngineOptions::default();
        let full = infer_links_since(&doc, &trace, 0, &rules, &opts);
        for k in 0..=trace.len() {
            // note: the prefix must be computed against the *final*
            // document too (the posthoc model always sees d_n)
            let mut combined = infer_links_since(&doc, &trace, k, &rules, &opts);
            let prefix_trace = ExecutionTrace {
                calls: trace.calls[..k].to_vec(),
            };
            combined.extend(infer_links_since(&doc, &prefix_trace, 0, &rules, &opts));
            combined.sort();
            combined.dedup();
            assert_eq!(combined, full, "split at {k}");
        }
    }

    #[test]
    fn empty_ruleset_yields_source_table_only() {
        let (doc, trace, _) = setup();
        let g = infer_provenance(&doc, &trace, &RuleSet::new(), &EngineOptions::default());
        assert!(g.links.is_empty());
        assert_eq!(g.sources.len(), 5); // resources 3, 4, 5, 6(+7?), 8… see Source table
    }
}
