//! Relational algebra over binding tables — the semantics of Definition 8.
//!
//! `M(d, d') = π_{$in,$out}( ρ_{$r/$in} R_{ϕ_S}(d)  ⋈  ρ_{$r/$out} R_{ϕ_T}(d') )`
//!
//! The join condition equates the shared binding variables of the two
//! patterns. Skolem-constrained columns of the target (Section 5) are
//! joined against the *rendered* term built from the source row's bindings.
//!
//! The implementation hash-partitions the source table on the join key, so
//! a rule application costs `O(|R_S| + |R_T|)` plus output size, instead of
//! the nested-loop `O(|R_S| · |R_T|)`. A nested-loop variant is retained
//! for the ablation benchmark (X7 in DESIGN.md) and as the reference
//! implementation in property tests.

use std::collections::HashMap;

use weblab_xml::NodeId;
use weblab_xpath::{BindingRow, BindingTable, Value};

/// One directed provenance link: the `from` resource was *generated using*
/// the `to` resource (rows of the paper's `Provenance` table, e.g. `8 → 4`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvLink {
    /// Node of the generated (target) resource.
    pub from: NodeId,
    /// URI of the generated resource (`$out`).
    pub from_uri: String,
    /// Node of the used (source) resource.
    pub to: NodeId,
    /// URI of the used resource (`$in`).
    pub to_uri: String,
}

impl std::fmt::Display for ProvLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.from_uri, self.to_uri)
    }
}

/// Join strategy for [`join_tables`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgorithm {
    /// Hash join on the shared variables (default).
    #[default]
    Hash,
    /// Nested loops — reference implementation and ablation baseline.
    NestedLoop,
}

/// Compute `π_{$in,$out}(ρ R_S ⋈ ρ R_T)`: pair every source row with every
/// target row that agrees on the shared variables (and on the target's
/// Skolem constraints), and project to provenance links
/// `target.$r → source.$r`.
pub fn join_tables(
    source: &BindingTable,
    target: &BindingTable,
    algo: JoinAlgorithm,
) -> Vec<ProvLink> {
    join_tables_where(source, target, algo, |_| true, |_| true)
}

/// [`join_tables`] restricted to the rows each side's predicate keeps.
///
/// This is the temporal strategies' workhorse: the engine evaluates a rule's
/// *unconstrained* patterns once, then derives each call's join from the
/// shared tables by filtering rows — no per-call copies of either table.
pub fn join_tables_where(
    source: &BindingTable,
    target: &BindingTable,
    algo: JoinAlgorithm,
    s_keep: impl Fn(&BindingRow) -> bool,
    t_keep: impl Fn(&BindingRow) -> bool,
) -> Vec<ProvLink> {
    let s_rows: Vec<&BindingRow> = source.rows.iter().filter(|r| s_keep(r)).collect();
    let t_rows: Vec<&BindingRow> = target.rows.iter().filter(|r| t_keep(r)).collect();
    join_rows(source, &s_rows, target, &t_rows, algo)
}

/// Join explicit row selections of two tables (the schemas come from the
/// tables, the data from the borrowed row slices).
pub(crate) fn join_rows(
    source: &BindingTable,
    s_rows: &[&BindingRow],
    target: &BindingTable,
    t_rows: &[&BindingRow],
    algo: JoinAlgorithm,
) -> Vec<ProvLink> {
    let shared: Vec<(usize, usize)> = target
        .columns
        .iter()
        .enumerate()
        .filter(|(ti, _)| {
            // skolem columns are handled separately
            !target.skolem_columns.iter().any(|s| s.column == *ti)
        })
        .filter_map(|(ti, name)| source.column_index(name).map(|si| (si, ti)))
        .collect();

    let mut links = match algo {
        JoinAlgorithm::NestedLoop => nested_loop(source, s_rows, target, t_rows, &shared),
        JoinAlgorithm::Hash => hash_join(source, s_rows, target, t_rows, &shared),
    };
    links.sort();
    links.dedup();
    links
}

fn row_matches(
    source: &BindingTable,
    s: &BindingRow,
    target: &BindingTable,
    t: &BindingRow,
    shared: &[(usize, usize)],
) -> bool {
    for &(si, ti) in shared {
        if !s.values[si].sem_eq(&t.values[ti]) {
            return false;
        }
    }
    // Skolem constraints: the target's raw column value must equal the term
    // rendered from the source row's bindings.
    for sk in &target.skolem_columns {
        let args: Option<Vec<Value>> = sk
            .args
            .iter()
            .map(|a| source.column_index(a).map(|i| s.values[i].clone()))
            .collect();
        let Some(args) = args else {
            // argument not bound by the source: unconstrained
            continue;
        };
        let term = Value::skolem(sk.fun.clone(), args);
        if !term.sem_eq(&t.values[sk.column]) {
            return false;
        }
    }
    true
}

fn link(s: &BindingRow, t: &BindingRow) -> ProvLink {
    ProvLink {
        from: t.node,
        from_uri: t.uri.clone(),
        to: s.node,
        to_uri: s.uri.clone(),
    }
}

fn nested_loop(
    source: &BindingTable,
    s_rows: &[&BindingRow],
    target: &BindingTable,
    t_rows: &[&BindingRow],
    shared: &[(usize, usize)],
) -> Vec<ProvLink> {
    let mut out = Vec::new();
    for s in s_rows {
        for t in t_rows {
            if row_matches(source, s, target, t, shared) {
                out.push(link(s, t));
            }
        }
    }
    out
}

fn hash_join(
    source: &BindingTable,
    s_rows: &[&BindingRow],
    target: &BindingTable,
    t_rows: &[&BindingRow],
    shared: &[(usize, usize)],
) -> Vec<ProvLink> {
    if shared.is_empty() {
        // No equi-key: fall back to nested loops (Skolem constraints may
        // still filter inside row_matches).
        return nested_loop(source, s_rows, target, t_rows, shared);
    }
    // Build side: source rows keyed by canonical join key.
    let mut buckets: HashMap<Vec<String>, Vec<&BindingRow>> = HashMap::new();
    for s in s_rows {
        let key: Vec<String> = shared
            .iter()
            .map(|&(si, _)| s.values[si].canonical())
            .collect();
        buckets.entry(key).or_default().push(s);
    }
    let mut out = Vec::new();
    for t in t_rows {
        let key: Vec<String> = shared
            .iter()
            .map(|&(_, ti)| t.values[ti].canonical())
            .collect();
        if let Some(candidates) = buckets.get(&key) {
            for s in candidates {
                if row_matches(source, s, target, t, shared) {
                    out.push(link(s, t));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xpath::{BindingRow, SkolemColumn};

    fn table(columns: &[&str], rows: Vec<(usize, &str, Vec<Value>)>) -> BindingTable {
        let mut t = BindingTable::with_columns(columns.iter().map(|s| s.to_string()).collect());
        for (node, uri, values) in rows {
            t.rows.push(BindingRow {
                node: NodeId::from_index(node),
                uri: uri.into(),
                values,
            });
        }
        t
    }

    #[test]
    fn equi_join_on_shared_variable() {
        let src = table(
            &["x"],
            vec![(5, "r5", vec![Value::str("r4")]), (9, "r9", vec![Value::str("r8")])],
        );
        let tgt = table(&["x"], vec![(6, "r6", vec![Value::str("r4")])]);
        let links = join_tables(&src, &tgt, JoinAlgorithm::Hash);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from_uri, "r6");
        assert_eq!(links[0].to_uri, "r5");
    }

    #[test]
    fn cartesian_when_no_shared_variables() {
        let src = table(&[], vec![(1, "a", vec![]), (2, "b", vec![])]);
        let tgt = table(&[], vec![(3, "c", vec![])]);
        let links = join_tables(&src, &tgt, JoinAlgorithm::Hash);
        assert_eq!(links.len(), 2);
    }

    #[test]
    fn hash_and_nested_agree() {
        let src = table(
            &["x", "y"],
            vec![
                (1, "a", vec![Value::str("1"), Value::str("p")]),
                (2, "b", vec![Value::str("2"), Value::str("q")]),
                (3, "c", vec![Value::str("1"), Value::str("q")]),
            ],
        );
        let tgt = table(
            &["x"],
            vec![
                (4, "d", vec![Value::str("1")]),
                (5, "e", vec![Value::str("3")]),
            ],
        );
        let h = join_tables(&src, &tgt, JoinAlgorithm::Hash);
        let n = join_tables(&src, &tgt, JoinAlgorithm::NestedLoop);
        assert_eq!(h, n);
        assert_eq!(h.len(), 2); // d→a, d→c
    }

    #[test]
    fn semantic_equality_bridges_int_and_str_keys() {
        let src = table(&["x"], vec![(1, "a", vec![Value::int(5)])]);
        let tgt = table(&["x"], vec![(2, "b", vec![Value::str("5")])]);
        // hash join canonicalises, nested loop uses sem_eq: both must match
        assert_eq!(join_tables(&src, &tgt, JoinAlgorithm::Hash).len(), 1);
        assert_eq!(join_tables(&src, &tgt, JoinAlgorithm::NestedLoop).len(), 1);
    }

    #[test]
    fn skolem_constraint_filters_pairs() {
        let src = table(&["x"], vec![(1, "a1", vec![Value::str("k1")])]);
        let mut tgt = table(
            &["f($x)"],
            vec![
                (2, "c1", vec![Value::str("f(k1)")]),
                (3, "c2", vec![Value::str("f(k2)")]),
            ],
        );
        tgt.skolem_columns.push(SkolemColumn {
            column: 0,
            fun: "f".into(),
            args: vec!["x".into()],
        });
        let links = join_tables(&src, &tgt, JoinAlgorithm::Hash);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from_uri, "c1");
    }

    #[test]
    fn duplicate_links_are_deduplicated() {
        // two source rows with the same uri/node joining one target
        let src = table(
            &["x"],
            vec![
                (1, "a", vec![Value::str("1")]),
                (1, "a", vec![Value::str("1")]),
            ],
        );
        let tgt = table(&["x"], vec![(2, "b", vec![Value::str("1")])]);
        assert_eq!(join_tables(&src, &tgt, JoinAlgorithm::Hash).len(), 1);
    }
}
