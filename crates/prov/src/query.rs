//! Provenance queries over materialised graphs.
//!
//! The Request Manager's raw interface is SPARQL over the PROV-O export;
//! this module provides the structured equivalents that the provenance
//! literature names — *why-provenance* (the minimal justifying subgraph of
//! a resource), depth-limited lineage, impact analysis, and common-origin
//! discovery — operating directly on the [`ProvenanceGraph`].

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use weblab_xml::CallLabel;

use crate::algebra::ProvLink;
use crate::graph::ProvenanceGraph;

/// The *why-provenance* of a resource: every resource and edge reachable
/// from it along dependency links, i.e. the minimal subgraph justifying
/// its existence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyProvenance {
    /// The queried resource.
    pub root: String,
    /// All resources in the justification, including the root.
    pub resources: BTreeSet<String>,
    /// The edges of the justifying subgraph.
    pub links: Vec<ProvLink>,
    /// The service calls involved, deduplicated and sorted.
    pub calls: Vec<CallLabel>,
}

/// Compute the why-provenance of `uri`.
///
/// This walks the raw edge list per hop (a full-graph traversal, counted
/// under `prov.index.traversals`); long-lived services should build a
/// [`crate::index::ReachabilityIndex`] and use its
/// [`why`](crate::index::ReachabilityIndex::why) instead.
pub fn why(graph: &ProvenanceGraph, uri: &str) -> WhyProvenance {
    crate::index::record_traversal();
    let mut resources: BTreeSet<String> = BTreeSet::new();
    resources.insert(uri.to_string());
    let mut links = Vec::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(uri);
    let mut seen: HashSet<&str> = HashSet::new();
    seen.insert(uri);
    while let Some(u) = queue.pop_front() {
        for l in graph.links.iter().filter(|l| l.from_uri == u) {
            links.push(l.clone());
            resources.insert(l.to_uri.clone());
            if seen.insert(&l.to_uri) {
                queue.push_back(&l.to_uri);
            }
        }
    }
    links.sort();
    links.dedup();
    let mut calls: Vec<CallLabel> = resources
        .iter()
        .filter_map(|r| graph.label_of(r).cloned())
        .collect();
    calls.sort();
    calls.dedup();
    WhyProvenance {
        root: uri.to_string(),
        resources,
        links,
        calls,
    }
}

/// Upstream lineage of `uri` limited to `depth` hops, as (resource, hop
/// distance) pairs in breadth-first order. Depth 0 returns just the root.
pub fn lineage_to_depth(
    graph: &ProvenanceGraph,
    uri: &str,
    depth: usize,
) -> Vec<(String, usize)> {
    crate::index::record_traversal();
    let mut out = vec![(uri.to_string(), 0)];
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(uri.to_string());
    let mut frontier: Vec<String> = vec![uri.to_string()];
    for d in 1..=depth {
        let mut next = Vec::new();
        for u in &frontier {
            for l in graph.links.iter().filter(|l| &l.from_uri == u) {
                if seen.insert(l.to_uri.clone()) {
                    out.push((l.to_uri.clone(), d));
                    next.push(l.to_uri.clone());
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

/// Impact analysis: every resource that transitively depends on `uri`
/// (the blast radius of a corrupted input), in breadth-first order.
pub fn impacted_by(graph: &ProvenanceGraph, uri: &str) -> Vec<String> {
    crate::index::record_traversal();
    let mut radj: HashMap<&str, Vec<&str>> = HashMap::new();
    for l in &graph.links {
        radj.entry(l.to_uri.as_str())
            .or_default()
            .push(l.from_uri.as_str());
    }
    let mut out = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    seen.insert(uri);
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(uri);
    while let Some(u) = queue.pop_front() {
        if let Some(next) = radj.get(u) {
            for &v in next {
                if seen.insert(v) {
                    out.push(v.to_string());
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

/// Common origins of two resources: the resources that appear in both
/// why-provenances (shared evidence), sorted.
pub fn common_origins(graph: &ProvenanceGraph, a: &str, b: &str) -> Vec<String> {
    let wa = why(graph, a);
    let wb = why(graph, b);
    wa.resources
        .intersection(&wb.resources)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, EngineOptions, InheritMode};
    use crate::paper_example;

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        )
    }

    #[test]
    fn why_r8_reaches_the_source() {
        let g = graph();
        let w = why(&g, "r8");
        assert!(w.resources.contains("r4"));
        assert!(w.resources.contains("r3")); // via r4 → r3
        assert!(w.resources.contains("r6")); // inherited link 8 → 6
        // involved calls include the full chain back to acquisition
        let services: Vec<&str> = w.calls.iter().map(|c| c.service.as_str()).collect();
        assert!(services.contains(&"Normaliser"));
        assert!(services.contains(&"Source"));
        // every link endpoint is in the resource set
        for l in &w.links {
            assert!(w.resources.contains(&l.from_uri));
            assert!(w.resources.contains(&l.to_uri));
        }
    }

    #[test]
    fn depth_limited_lineage() {
        let g = graph();
        let d1 = lineage_to_depth(&g, "r8", 1);
        assert!(d1.iter().all(|(_, d)| *d <= 1));
        assert!(d1.iter().any(|(u, d)| u == "r4" && *d == 1));
        assert!(!d1.iter().any(|(u, _)| u == "r3")); // r3 is 2 hops away
        let d2 = lineage_to_depth(&g, "r8", 2);
        assert!(d2.iter().any(|(u, d)| u == "r3" && *d == 2));
        let d0 = lineage_to_depth(&g, "r8", 0);
        assert_eq!(d0, vec![("r8".to_string(), 0)]);
    }

    #[test]
    fn impact_of_the_source_covers_everything_downstream() {
        let g = graph();
        let impacted = impacted_by(&g, "r3");
        assert!(impacted.contains(&"r4".to_string()));
        assert!(impacted.contains(&"r8".to_string()));
        // a leaf has no impact
        assert!(impacted_by(&g, "r8").is_empty());
    }

    #[test]
    fn common_origins_of_translation_and_annotation() {
        let g = graph();
        // both r8 (translation) and r6 (annotation) trace back to r4/r3
        let shared = common_origins(&g, "r8", "r6");
        assert!(shared.contains(&"r4".to_string()) || shared.contains(&"r5".to_string()));
    }

    #[test]
    fn why_of_unknown_resource_is_trivial() {
        let g = graph();
        let w = why(&g, "nope");
        assert_eq!(w.resources.len(), 1);
        assert!(w.links.is_empty());
        assert!(w.calls.is_empty());
    }

    #[test]
    fn unknown_uris_are_empty_in_every_query() {
        let g = graph();
        assert_eq!(
            lineage_to_depth(&g, "nope", 5),
            vec![("nope".to_string(), 0)]
        );
        assert!(impacted_by(&g, "nope").is_empty());
        // an unknown root still appears in its own why-provenance, so the
        // self-join is the singleton
        assert_eq!(common_origins(&g, "nope", "nope"), vec!["nope".to_string()]);
        assert!(common_origins(&g, "nope", "r8").is_empty());
    }

    #[test]
    fn common_origins_self_join_is_the_full_why_set() {
        let g = graph();
        let w = why(&g, "r8");
        let self_join = common_origins(&g, "r8", "r8");
        let expected: Vec<String> = w.resources.iter().cloned().collect();
        assert_eq!(self_join, expected);
    }

    #[test]
    fn queries_terminate_on_cyclic_edge_sets() {
        // Definition 3 graphs are DAGs, but the query functions must stay
        // total if handed a corrupted edge set: seen-set guards make every
        // traversal visit each resource at most once.
        use crate::algebra::ProvLink;
        use weblab_xml::NodeId;
        let mut g = ProvenanceGraph::default();
        let link = |f: (usize, &str), t: (usize, &str)| ProvLink {
            from: NodeId::from_index(f.0),
            from_uri: f.1.into(),
            to: NodeId::from_index(t.0),
            to_uri: t.1.into(),
        };
        g.add_links([
            link((1, "a"), (2, "b")),
            link((2, "b"), (3, "c")),
            link((3, "c"), (1, "a")),
        ]);
        let w = why(&g, "a");
        assert_eq!(w.resources.len(), 3);
        assert_eq!(w.links.len(), 3);
        assert_eq!(impacted_by(&g, "a").len(), 2);
        let lin = lineage_to_depth(&g, "a", 10);
        assert_eq!(lin.len(), 3, "each resource reported once despite the cycle");
        assert_eq!(
            common_origins(&g, "a", "b"),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn depth_zero_lineage_never_traverses() {
        let g = graph();
        for s in &g.sources {
            assert_eq!(
                lineage_to_depth(&g, &s.uri, 0),
                vec![(s.uri.clone(), 0)],
                "depth 0 must return just the root for {}",
                s.uri
            );
        }
    }
}
