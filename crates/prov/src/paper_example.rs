//! The paper's running example as a reusable fixture.
//!
//! Builds the document of Figure 4 (states `d₀ ⊑ d₁ ⊑ d₂ ⊑ d₃`), the
//! execution trace of Figure 1 (calls `c₁ = (Normaliser, t₁)`,
//! `c₂ = (LanguageExtractor, t₂)`, `c₃ = (Translator, t₃)`) and the three
//! provenance mappings of Figure 3. Node labels use the figure's
//! single-letter abbreviations: `R`esource, `M`etaData, `N`ativeContent,
//! `T`extMediaUnit, text`C`ontent, `A`nnotation, `L`anguage.
//!
//! Resource URIs are `r<n>` with `n` the node number of Figure 1(b).
//! Nodes 7 and 11 (the `L` leaves) are plain nodes; nodes 9 and 10 are
//! identified resources without labels, exactly as the Source table of
//! Figure 2 lists only resources 3, 4, 5, 6 and 8. Node 2 (`M`) is the
//! *parent* of the native content node 3 — Section 2's propagation remark
//! ("node 4 depends on 2, which is an ancestor of 3") fixes the hierarchy
//! that Figure 4's flat rendering leaves ambiguous; being unidentified,
//! node 2 itself never enters the provenance graph (Definition 3 ranges
//! over labelled resources only).
//!
//! A note on rule M3: Figure 3 writes it `[…='fr'] ⇒ […='en']`, i.e. the
//! *source* (used) side is the French original and the *target* (generated)
//! side is its English translation. The generated dependency link therefore
//! runs `r8 → r4` (translation depends on original), matching the
//! Provenance table of Figure 2.

use weblab_xml::{CallLabel, Document, StateMark};

use crate::ruleset::RuleSet;
use crate::trace::ExecutionTrace;

/// Figure 3's mapping M1 (adapted to the single-letter tags):
/// every `NativeContent` feeds the first `TextMediaUnit`.
pub const M1: &str = "/R//N => //T[1]";
/// Figure 3's mapping M2: a language annotation depends on the text content
/// of the same `TextMediaUnit` (join on `@id`).
pub const M2: &str = "//T[$x := @id]/C => //T[$x := @id]/A[L]";
/// Figure 3's mapping M3: an English `TextMediaUnit` is generated from a
/// French one.
pub const M3: &str = "//T[A/L = 'fr'] => //T[A/L = 'en']";

/// The state marks `d₀ … d₃` of one run of the example.
#[derive(Debug, Clone)]
pub struct PaperStates {
    /// Marks of `d₀`, `d₁`, `d₂`, `d₃` in order.
    pub marks: Vec<StateMark>,
}

/// Build document, trace and rule set of the running example.
pub fn build() -> (Document, ExecutionTrace, RuleSet) {
    let (doc, trace, _) = build_with_states();
    let mut rules = RuleSet::new();
    rules.add_parsed("Normaliser", M1).unwrap();
    rules.add_parsed("LanguageExtractor", M2).unwrap();
    rules.add_parsed("Translator", M3).unwrap();
    (doc, trace, rules)
}

/// Like [`build`] but also returning the four state marks (for tests that
/// replay Example 5's per-state tables).
pub fn build_with_states() -> (Document, ExecutionTrace, PaperStates) {
    let mut d = Document::new("R");
    let r1 = d.root();
    d.register_resource(r1, "r1", None).unwrap();
    let m2 = d.append_element(r1, "M").unwrap();
    let n3 = d.append_element(m2, "N").unwrap();
    d.append_text(n3, "raw native bytes").unwrap();
    let d0 = d.mark();

    // c1 = (Normaliser, 1): promotes node 3 to resource r3 (credited to the
    // acquisition source at t0) and appends the normalised TextMediaUnit.
    d.register_resource(n3, "r3", Some(CallLabel::new("Source", 0)))
        .unwrap();
    let t4 = d.append_element(r1, "T").unwrap();
    d.register_resource(t4, "r4", Some(CallLabel::new("Normaliser", 1)))
        .unwrap();
    let c5 = d.append_element(t4, "C").unwrap();
    d.register_resource(c5, "r5", Some(CallLabel::new("Normaliser", 1)))
        .unwrap();
    d.append_text(c5, "texte normalise").unwrap();
    let d1 = d.mark();

    // c2 = (LanguageExtractor, 2): annotates r4 with its language.
    let a6 = d.append_element(t4, "A").unwrap();
    d.register_resource(a6, "r6", Some(CallLabel::new("LanguageExtractor", 2)))
        .unwrap();
    let l7 = d.append_element(a6, "L").unwrap();
    d.append_text(l7, "fr").unwrap();
    let d2 = d.mark();

    // c3 = (Translator, 3): appends the English translation r8 with its
    // content r9 and annotation r10 (identified but unlabelled, as in the
    // Source table of Figure 2).
    let t8 = d.append_element(r1, "T").unwrap();
    d.register_resource(t8, "r8", Some(CallLabel::new("Translator", 3)))
        .unwrap();
    let c9 = d.append_element(t8, "C").unwrap();
    d.register_resource(c9, "r9", None).unwrap();
    d.append_text(c9, "normalised text").unwrap();
    let a10 = d.append_element(t8, "A").unwrap();
    d.register_resource(a10, "r10", None).unwrap();
    let l11 = d.append_element(a10, "L").unwrap();
    d.append_text(l11, "en").unwrap();
    let d3 = d.mark();

    let mut trace = ExecutionTrace::default();
    trace.record_call(&d, "Normaliser", 1, d0, d1);
    trace.record_call(&d, "LanguageExtractor", 2, d1, d2);
    trace.record_call(&d, "Translator", 3, d2, d3);

    (
        d,
        trace,
        PaperStates {
            marks: vec![d0, d1, d2, d3],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_form_a_containment_chain() {
        let (d, _, states) = build_with_states();
        for w in states.marks.windows(2) {
            assert!(d.view_at(w[0]).is_contained_in(&d.view_at(w[1])));
        }
    }

    #[test]
    fn figure4_final_difference() {
        // d₃ \ d₀ is a set of two fragments rooted at r4 and r8 (plus the
        // promotion of node 3 → r3).
        let (d, _, states) = build_with_states();
        let frags = d.new_fragments_since(states.marks[0]);
        let names: Vec<_> = frags
            .iter()
            .filter_map(|&n| d.view().uri(n))
            .collect();
        assert_eq!(names, vec!["r4", "r8"]);
    }

    #[test]
    fn figure2_source_table() {
        let (d, trace, _) = build_with_states();
        let v = d.view();
        let expected = [
            ("r3", "Source", 0),
            ("r4", "Normaliser", 1),
            ("r5", "Normaliser", 1),
            ("r6", "LanguageExtractor", 2),
            ("r8", "Translator", 3),
        ];
        for (uri, service, time) in expected {
            let node = d.node_by_uri(uri).unwrap();
            let label = v.label(node).unwrap();
            assert_eq!(label.service, service);
            assert_eq!(label.time, time);
        }
        // and out(cᵢ) per call
        assert_eq!(trace.calls[0].produced.len(), 2); // r4, r5
        assert_eq!(trace.calls[1].produced.len(), 1); // r6
        assert_eq!(trace.calls[2].produced.len(), 1); // r8 (r9, r10 unlabelled)
    }
}
