//! Thread-safe pattern-evaluation cache.
//!
//! The temporal strategies re-evaluate near-identical patterns per call:
//! `TemporalRewrite` rewrites the *same* rule pattern with a different
//! timestamp for every call of a service, and both temporal constraints
//! only ever restrict the **last** step
//! (`weblab_xpath::add_source_constraints` /
//! [`weblab_xpath::add_target_constraints`]) using `effective_time` /
//! `effective_label`. The unconstrained table is therefore a superset of
//! every per-call table, and each per-call table is recoverable by a plain
//! row filter — so the engine evaluates the unconstrained pattern **once**,
//! caches it here keyed by `(pattern fingerprint, state mark)`, and filters
//! shared rows per call.
//!
//! The state-mark half of the key makes invalidation automatic in the
//! append-only document model: growing the document yields a new
//! [`StateMark`], which simply keys a fresh entry, while evaluations
//! against any earlier state keep hitting their own entries.
//!
//! Concurrency: a `Mutex<HashMap>` hands out per-key `Arc<OnceLock>` cells;
//! the map lock is held only to find the cell, never during pattern
//! evaluation, and `OnceLock::get_or_init` guarantees a pattern is
//! evaluated at most once even when several workers request it together.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use weblab_obs::Counter;
use weblab_xml::{DocView, StateMark};
use weblab_xpath::{
    eval_pattern_indexed, BindingTable, ElementIndex, Env, EvalOptions, Pattern,
};

type Cell = Arc<OnceLock<Arc<BindingTable>>>;

/// Cache hits across every [`PatternCache`] of the process. The `OnceLock`
/// protocol makes misses equal the number of *distinct* `(pattern, state)`
/// keys requested, independent of worker count or scheduling — which is
/// what lets the metrics test suite assert exact totals at any parallelism.
static CACHE_HITS: Counter = Counter::new("prov.cache.hits");
/// Cache misses (actual pattern evaluations) across every cache.
static CACHE_MISSES: Counter = Counter::new("prov.cache.misses");

/// Shared evaluation cache: `(pattern fingerprint, state mark) → table`.
#[derive(Debug, Default)]
pub struct PatternCache {
    entries: Mutex<HashMap<(u64, StateMark), Cell>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PatternCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate `pattern` against `view`, reusing a previous evaluation for
    /// the same pattern and document state when one exists.
    pub fn eval(
        &self,
        pattern: &Pattern,
        view: &DocView<'_>,
        index: Option<&ElementIndex>,
    ) -> Arc<BindingTable> {
        let key = (pattern.fingerprint(), view.mark());
        let cell: Cell = {
            let mut entries = self.entries.lock().expect("cache poisoned");
            Arc::clone(entries.entry(key).or_default())
        };
        let mut evaluated = false;
        let table = Arc::clone(cell.get_or_init(|| {
            evaluated = true;
            Arc::new(eval_pattern_indexed(
                pattern,
                view,
                &Env::new(),
                &EvalOptions::default(),
                index,
            ))
        }));
        if evaluated {
            self.misses.fetch_add(1, Ordering::Relaxed);
            CACHE_MISSES.inc();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.inc();
        }
        table
    }

    /// `(hits, misses)` so far — a miss is an actual pattern evaluation.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct `(pattern, state)` entries held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::Document;
    use weblab_xpath::parse_pattern;

    fn doc() -> Document {
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r0", None).unwrap();
        let a = d.append_element(root, "Item").unwrap();
        d.register_resource(a, "r1", None).unwrap();
        d
    }

    #[test]
    fn second_eval_hits() {
        let d = doc();
        let p = parse_pattern("//Item").unwrap();
        let cache = PatternCache::new();
        let t1 = cache.eval(&p, &d.view(), None);
        let t2 = cache.eval(&p, &d.view(), None);
        assert_eq!(cache.stats(), (1, 1));
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.rows.len(), 1);
    }

    #[test]
    fn growing_the_document_keys_a_fresh_entry() {
        let mut d = doc();
        let p = parse_pattern("//Item").unwrap();
        let cache = PatternCache::new();
        let before = cache.eval(&p, &d.view(), None);
        assert_eq!(before.rows.len(), 1);

        // Append another Item: the state mark changes, so the stale table
        // must not be served for the new state.
        let root = d.root();
        let b = d.append_element(root, "Item").unwrap();
        d.register_resource(b, "r2", None).unwrap();
        let after = cache.eval(&p, &d.view(), None);
        assert_eq!(after.rows.len(), 2, "cache served a stale table");
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);

        // The old state's entry is still valid and still hittable.
        let old_mark_table = cache.eval(&p, &d.view_at(before_mark(&d)), None);
        assert_eq!(old_mark_table.rows.len(), 1);
    }

    fn before_mark(d: &Document) -> StateMark {
        // the state with one fewer node and resource than final
        let m = d.view().mark();
        StateMark::from_counts(m.node_count() - 1, m.resource_count() - 1)
    }

    #[test]
    fn distinct_patterns_do_not_collide() {
        let d = doc();
        let cache = PatternCache::new();
        let p1 = parse_pattern("//Item").unwrap();
        let p2 = parse_pattern("/R").unwrap();
        let t1 = cache.eval(&p1, &d.view(), None);
        let t2 = cache.eval(&p2, &d.view(), None);
        assert_ne!(t1.rows, t2.rows);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn concurrent_requests_evaluate_once() {
        let d = doc();
        let p = parse_pattern("//Item").unwrap();
        let cache = PatternCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(cache.eval(&p, &d.view(), None).rows.len(), 1);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 8 * 50 - 1);
    }
}
