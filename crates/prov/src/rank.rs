//! Ranked provenance analytics: spreading activation over the
//! reachability index.
//!
//! The exact queries in [`crate::query`] and [`crate::index`] return whole
//! reachable sets — unreadable once a production graph holds millions of
//! artifacts. This module answers the same questions *ranked and bounded*:
//! activation is seeded at the queried resources, propagates along the
//! dependency (or dependent) adjacency with a per-hop decay and
//! per-service edge weights, and the expansion stops at an explicit node
//! budget, returning the top-k most causally relevant resources first.
//!
//! # Determinism
//!
//! Scores are a function of the published graph only — never of traversal
//! order, worker count, or the index's interning order:
//!
//! * All arithmetic is **fixed-point** over `u64` micro-units
//!   ([`SCALE`] = 1 000 000). No floats touch the scoring path, so there
//!   is no accumulation-order sensitivity.
//! * Propagation is **synchronous wave (breadth-first) activation**: a
//!   node's score is fixed the first wave it is reached, as the sum of the
//!   contributions of all its already-scored neighbours in the previous
//!   wave. Integer addition is commutative, so the sum is independent of
//!   the order neighbours are enumerated in.
//! * Every tie-break is on `(score, URI)` — never on interned ids, which
//!   differ between a live (incremental) and a batch (from-graph) index.
//!
//! The contribution of an edge `u → v` expanded at wave `h` is
//! `⌊⌊score(u)·decay/S⌋·w/S⌋` where `S` is [`SCALE`] and `w` the weight of
//! the service that produced the edge's *derived* endpoint (default `S`,
//! i.e. 1.0). With an unbounded budget the visited set is exactly the
//! reachable closure — the same URIs `impacted_by`/`lineage` return.
//!
//! # Aggregate views
//!
//! [`summary`] answers fleet-level questions from the index's precomputed
//! ancestor/descendant closure *sizes* without any traversal: per-service
//! influence totals, common-origin clusters (one per root resource), and
//! per-resource blast-radius estimates — each an O(1) set-size lookup.
//!
//! Pinned by the `prov.rank.{queries,frontier,visited}` counters and the
//! `prov.rank.score_ns` histogram.

use std::collections::{BTreeMap, HashMap, HashSet};

use weblab_obs::{Counter, Histogram, Span};

use crate::index::ReachabilityIndex;

/// Fixed-point scale: scores, decays and weights are micro-units.
pub const SCALE: u64 = 1_000_000;

/// Rank/summary invocations.
static RANK_QUERIES: Counter = Counter::new("prov.rank.queries");
/// Frontier nodes expanded across all waves.
static RANK_FRONTIER: Counter = Counter::new("prov.rank.frontier");
/// Nodes scored (admitted under the budget), seeds included.
static RANK_VISITED: Counter = Counter::new("prov.rank.visited");
/// Wall time of one rank scoring pass, nanoseconds.
static RANK_SCORE_NS: Histogram = Histogram::new("prov.rank.score_ns");

/// Which adjacency activation spreads along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankDirection {
    /// Along incoming edges — toward dependents (ranked impact analysis).
    Up,
    /// Along outgoing edges — toward dependencies (ranked lineage).
    Down,
}

impl RankDirection {
    /// Wire name of the direction.
    pub fn as_str(&self) -> &'static str {
        match self {
            RankDirection::Up => "up",
            RankDirection::Down => "down",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<RankDirection> {
        match s {
            "up" => Some(RankDirection::Up),
            "down" => Some(RankDirection::Down),
            _ => None,
        }
    }
}

/// The shared options envelope of the v2 query surface, consumed
/// identically by the CLI and serve paths. All fields use `0 = default`:
/// `limit`/`budget` zero mean unbounded, `decay_micro` zero means the
/// [`DEFAULT_DECAY_MICRO`] per-hop decay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOpts {
    /// Maximum entries in the returned ranking (0 = all scored nodes).
    pub limit: usize,
    /// Maximum nodes scored, seeds included (0 = unbounded — the exact
    /// reachable closure).
    pub budget: usize,
    /// Per-hop activation decay in micro-units (0 = default 0.5).
    pub decay_micro: u32,
}

/// Default per-hop decay: 0.5 in micro-units.
pub const DEFAULT_DECAY_MICRO: u32 = 500_000;

impl QueryOpts {
    /// The effective decay (resolving `0` to the default).
    pub fn decay(&self) -> u32 {
        if self.decay_micro == 0 {
            DEFAULT_DECAY_MICRO
        } else {
            self.decay_micro
        }
    }

    /// The effective budget (resolving `0` to unbounded).
    pub fn effective_budget(&self) -> usize {
        if self.budget == 0 {
            usize::MAX
        } else {
            self.budget
        }
    }
}

/// One scored resource in a ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedEntry {
    /// The resource URI.
    pub uri: String,
    /// Activation score in micro-units (seeds start at [`SCALE`]).
    pub score_micro: u64,
    /// Wave (hop distance from the nearest seed) the score was fixed at.
    pub hop: usize,
}

/// Convert a non-negative finite float to micro-units, or `None` if it is
/// not representable (negative, non-finite, or above `max`).
pub fn micro_from_f64(x: f64, max: f64) -> Option<u64> {
    if !x.is_finite() || x < 0.0 || x > max {
        return None;
    }
    Some((x * SCALE as f64).round() as u64)
}

/// Render micro-units as a fixed six-decimal string (`500000` → `"0.500000"`)
/// — the deterministic wire/CLI rendering of scores, decays and weights.
pub fn format_micro(micro: u64) -> String {
    format!("{}.{:06}", micro / SCALE, micro % SCALE)
}

fn scale_mul(score: u64, factor_micro: u64) -> u64 {
    let product = score as u128 * factor_micro as u128 / SCALE as u128;
    u64::try_from(product).unwrap_or(u64::MAX)
}

/// Spreading-activation ranking over the index's adjacency.
///
/// Seeds score [`SCALE`] at hop 0 (unknown URIs are kept, like the root
/// row of a lineage answer, but expand nowhere). Each wave scores the
/// still-unscored neighbours of the previous wave; when admitting a wave
/// would exceed `opts.budget`, only the top `(score desc, uri asc)`
/// remainder is admitted and the expansion stops. `weights` maps service
/// names to micro-unit edge weights (an edge weighs as the service that
/// produced its derived endpoint; unlisted services weigh 1.0).
///
/// Results are sorted `(score desc, hop asc, uri asc)` and truncated to
/// `opts.limit`.
pub fn rank(
    index: &ReachabilityIndex,
    seeds: &[String],
    direction: RankDirection,
    opts: &QueryOpts,
    weights: &[(String, u32)],
) -> Vec<RankedEntry> {
    RANK_QUERIES.inc();
    let _span = Span::start(&RANK_SCORE_NS);
    let weight_of: HashMap<&str, u64> = weights
        .iter()
        .map(|(s, w)| (s.as_str(), *w as u64))
        .collect();
    let service_weight = |uri: &str| -> u64 {
        index
            .label_of(uri)
            .and_then(|l| weight_of.get(l.service.as_str()).copied())
            .unwrap_or(SCALE)
    };
    let decay = opts.decay() as u64;
    let budget = opts.effective_budget();

    let mut results: Vec<RankedEntry> = Vec::new();
    let mut scores: HashMap<u32, u64> = HashMap::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut seen_seeds: HashSet<&str> = HashSet::new();
    for seed in seeds {
        if !seen_seeds.insert(seed.as_str()) {
            continue;
        }
        results.push(RankedEntry { uri: seed.clone(), score_micro: SCALE, hop: 0 });
        if let Some(id) = index.id_of(seed) {
            scores.insert(id, SCALE);
            frontier.push(id);
        }
    }
    let mut visited = scores.len();

    let mut hop = 0;
    while !frontier.is_empty() && visited < budget {
        hop += 1;
        RANK_FRONTIER.add(frontier.len() as u64);
        // Accumulate this wave's activation. The map is keyed by interned
        // id only for dedup — each sum is order-independent, and admission
        // below never consults id order.
        let mut wave: BTreeMap<u32, u64> = BTreeMap::new();
        for &u in &frontier {
            let from_score = scale_mul(scores[&u], decay);
            let neighbours = match direction {
                RankDirection::Up => index.rdeps_of_id(u),
                RankDirection::Down => index.deps_of_id(u),
            };
            for &v in neighbours {
                if scores.contains_key(&v) {
                    continue;
                }
                // The derived endpoint of the edge: `deps[u]` lists what
                // `u` was derived from; `rdeps[u]` lists what derives it.
                let derived = match direction {
                    RankDirection::Up => index.uri_of(v),
                    RankDirection::Down => index.uri_of(u),
                };
                let contribution = scale_mul(from_score, service_weight(derived));
                let entry = wave.entry(v).or_insert(0);
                *entry = entry.saturating_add(contribution);
            }
        }
        let mut admitted: Vec<(u32, u64)> = wave.into_iter().collect();
        if visited + admitted.len() > budget {
            admitted.sort_by(|a, b| {
                b.1.cmp(&a.1)
                    .then_with(|| index.uri_of(a.0).cmp(index.uri_of(b.0)))
            });
            admitted.truncate(budget - visited);
        }
        frontier.clear();
        for (v, s) in admitted {
            scores.insert(v, s);
            visited += 1;
            frontier.push(v);
            results.push(RankedEntry {
                uri: index.uri_of(v).to_string(),
                score_micro: s,
                hop,
            });
        }
    }
    RANK_VISITED.add(visited as u64);

    results.sort_by(|a, b| {
        b.score_micro
            .cmp(&a.score_micro)
            .then(a.hop.cmp(&b.hop))
            .then_with(|| a.uri.cmp(&b.uri))
    });
    if opts.limit > 0 {
        results.truncate(opts.limit);
    }
    results
}

/// Aggregate influence of one service across every resource it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInfluence {
    /// The service name.
    pub service: String,
    /// Labelled resources the service produced.
    pub resources: u64,
    /// Total blast-radius mass: Σ |upward closure| over those resources.
    pub influence: u64,
    /// Total evidence mass: Σ |downward closure| over those resources.
    pub origins: u64,
}

/// One common-origin cluster: a root resource (no dependencies) and the
/// number of resources sharing it as an origin (itself included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginCluster {
    /// The root (origin) resource URI.
    pub root: String,
    /// Resources whose evidence includes this root, the root included.
    pub size: u64,
}

/// Blast-radius estimate for one resource — closure sizes, not members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastRadius {
    /// The queried resource URI.
    pub uri: String,
    /// Resources transitively depending on it (|upward closure|).
    pub impacted: u64,
    /// Resources it transitively depends on (|downward closure|).
    pub origins: u64,
}

/// The aggregate analytics view of one graph — everything here is computed
/// from index statistics (closure sizes), with no graph traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSummary {
    /// Distinct resources in the graph.
    pub resources: u64,
    /// Distinct dependency edges.
    pub edges: u64,
    /// Per-service influence, sorted `(influence desc, service asc)`.
    pub services: Vec<ServiceInfluence>,
    /// Common-origin clusters, sorted `(size desc, root asc)`.
    pub clusters: Vec<OriginCluster>,
    /// Blast radius of the optionally queried resource.
    pub blast: Option<BlastRadius>,
}

/// Aggregate views from index statistics — per-service influence,
/// common-origin clustering and an optional blast-radius estimate — all
/// from the precomputed closure sizes, no traversal.
pub fn summary(index: &ReachabilityIndex, uri: Option<&str>) -> GraphSummary {
    RANK_QUERIES.inc();
    let _span = Span::start(&RANK_SCORE_NS);
    let mut per_service: BTreeMap<&str, ServiceInfluence> = BTreeMap::new();
    for (res, label) in index.label_table() {
        let entry = per_service
            .entry(label.service.as_str())
            .or_insert_with(|| ServiceInfluence {
                service: label.service.clone(),
                resources: 0,
                influence: 0,
                origins: 0,
            });
        entry.resources += 1;
        if let Some(id) = index.id_of(res) {
            entry.influence += index.up_size(id) as u64;
            entry.origins += index.down_size(id) as u64;
        }
    }
    let mut services: Vec<ServiceInfluence> = per_service.into_values().collect();
    services.sort_by(|a, b| {
        b.influence
            .cmp(&a.influence)
            .then_with(|| a.service.cmp(&b.service))
    });

    let mut clusters: Vec<OriginCluster> = (0..index.resource_count() as u32)
        .filter(|&id| index.deps_of_id(id).is_empty())
        .map(|id| OriginCluster {
            root: index.uri_of(id).to_string(),
            size: 1 + index.up_size(id) as u64,
        })
        .collect();
    clusters.sort_by(|a, b| b.size.cmp(&a.size).then_with(|| a.root.cmp(&b.root)));

    let blast = uri.map(|u| match index.id_of(u) {
        Some(id) => BlastRadius {
            uri: u.to_string(),
            impacted: index.up_size(id) as u64,
            origins: index.down_size(id) as u64,
        },
        None => BlastRadius { uri: u.to_string(), impacted: 0, origins: 0 },
    });

    GraphSummary {
        resources: index.resource_count() as u64,
        edges: index.edge_count() as u64,
        services,
        clusters,
        blast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, EngineOptions, InheritMode};
    use crate::graph::ProvenanceGraph;
    use crate::paper_example;

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        )
    }

    fn seeds(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    fn uris(ranked: &[RankedEntry]) -> Vec<&str> {
        ranked.iter().map(|e| e.uri.as_str()).collect()
    }

    #[test]
    fn unbounded_rank_covers_the_exact_closures() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let opts = QueryOpts::default();
        for uri in ["r1", "r3", "r8"] {
            let up = rank(&idx, &seeds(&[uri]), RankDirection::Up, &opts, &[]);
            let mut expect: Vec<String> = idx.impacted_by(uri);
            expect.push(uri.to_string());
            expect.sort();
            let mut got: Vec<String> = up.iter().map(|e| e.uri.clone()).collect();
            got.sort();
            assert_eq!(got, expect, "up closure of {uri}");

            let down = rank(&idx, &seeds(&[uri]), RankDirection::Down, &opts, &[]);
            let mut expect: Vec<String> = idx
                .lineage(uri, usize::MAX)
                .into_iter()
                .map(|(u, _)| u)
                .collect();
            expect.sort();
            let mut got: Vec<String> = down.iter().map(|e| e.uri.clone()).collect();
            got.sort();
            assert_eq!(got, expect, "down closure of {uri}");
        }
    }

    #[test]
    fn scores_halve_per_hop_at_default_decay() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let ranked = rank(
            &idx,
            &seeds(&["r8"]),
            RankDirection::Down,
            &QueryOpts::default(),
            &[],
        );
        for e in &ranked {
            if e.hop == 0 {
                assert_eq!(e.score_micro, SCALE);
            } else {
                // single-parent chains halve exactly; converging nodes sum
                assert!(e.score_micro >= SCALE / 2u64.pow(e.hop as u32) || e.score_micro > 0);
            }
        }
        let hop1: Vec<_> = ranked.iter().filter(|e| e.hop == 1).collect();
        assert!(hop1.iter().all(|e| e.score_micro == SCALE / 2));
    }

    #[test]
    fn results_are_sorted_and_limited() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let full = rank(&idx, &seeds(&["r8"]), RankDirection::Down, &QueryOpts::default(), &[]);
        let key = |e: &RankedEntry| (std::cmp::Reverse(e.score_micro), e.hop, e.uri.clone());
        for pair in full.windows(2) {
            assert!(
                key(&pair[0]) <= key(&pair[1]),
                "order violated between {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        let limited = rank(
            &idx,
            &seeds(&["r8"]),
            RankDirection::Down,
            &QueryOpts { limit: 2, ..Default::default() },
            &[],
        );
        assert_eq!(limited.as_slice(), &full[..2]);
    }

    #[test]
    fn budget_caps_visited_nodes_keeping_top_scores() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let full = rank(&idx, &seeds(&["r8"]), RankDirection::Down, &QueryOpts::default(), &[]);
        assert!(full.len() > 3, "paper example should rank > 3 nodes");
        let capped = rank(
            &idx,
            &seeds(&["r8"]),
            RankDirection::Down,
            &QueryOpts { budget: 3, ..Default::default() },
            &[],
        );
        assert_eq!(capped.len(), 3);
        // the capped ranking is a prefix-quality subset: every admitted
        // wave keeps its highest-scored members
        assert_eq!(capped[0].uri, "r8");
    }

    #[test]
    fn weights_scale_contributions_of_the_producing_service() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let base = rank(&idx, &seeds(&["r1"]), RankDirection::Up, &QueryOpts::default(), &[]);
        // suppress every service: all non-seed scores become 0, set unchanged
        let all_services: Vec<(String, u32)> = base
            .iter()
            .filter_map(|e| idx.label_of(&e.uri).map(|l| (l.service.clone(), 0u32)))
            .collect();
        let muted = rank(
            &idx,
            &seeds(&["r1"]),
            RankDirection::Up,
            &QueryOpts::default(),
            &all_services,
        );
        assert_eq!(
            {
                let mut u = uris(&muted);
                u.sort();
                u
            },
            {
                let mut u = uris(&base);
                u.sort();
                u
            },
            "weights must not change the reachable set"
        );
        for e in &muted {
            if e.hop > 0 && idx.label_of(&e.uri).is_some() {
                assert_eq!(e.score_micro, 0, "muted service score for {}", e.uri);
            }
        }
    }

    #[test]
    fn unknown_seed_ranks_alone_like_a_lineage_root() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let ranked = rank(
            &idx,
            &seeds(&["no-such-resource"]),
            RankDirection::Up,
            &QueryOpts::default(),
            &[],
        );
        assert_eq!(
            ranked,
            vec![RankedEntry {
                uri: "no-such-resource".into(),
                score_micro: SCALE,
                hop: 0
            }]
        );
    }

    #[test]
    fn rank_is_identical_on_live_and_batch_built_indexes() {
        let g = graph();
        let batch = ReachabilityIndex::from_graph(&g);
        // incremental build in reversed link order interns differently
        let mut live = ReachabilityIndex::new();
        let mut sources = g.sources.clone();
        sources.reverse();
        live.add_sources(&sources);
        let mut links = g.links.clone();
        links.reverse();
        for l in &links {
            live.add_link(l);
        }
        let opts = QueryOpts { budget: 4, limit: 3, decay_micro: 700_000 };
        for uri in ["r1", "r3", "r8"] {
            for dir in [RankDirection::Up, RankDirection::Down] {
                assert_eq!(
                    rank(&batch, &seeds(&[uri]), dir, &opts, &[]),
                    rank(&live, &seeds(&[uri]), dir, &opts, &[]),
                    "rank({uri}, {dir:?}) differs between build orders"
                );
            }
        }
        assert_eq!(summary(&batch, Some("r3")), summary(&live, Some("r3")));
    }

    #[test]
    fn summary_matches_closure_sizes() {
        let g = graph();
        let idx = ReachabilityIndex::from_graph(&g);
        let s = summary(&idx, Some("r3"));
        assert_eq!(s.resources, idx.resource_count() as u64);
        assert_eq!(s.edges, idx.edge_count() as u64);
        let blast = s.blast.as_ref().unwrap();
        assert_eq!(blast.impacted, idx.impacted_by("r3").len() as u64);
        // every cluster root has no dependencies and counts its dependents
        for c in &s.clusters {
            assert!(idx.dependencies_of(&c.root).is_empty());
            assert_eq!(c.size, 1 + idx.impacted_by(&c.root).len() as u64);
        }
        // service totals add up to the per-resource closure sums (one row
        // per distinct URI, first-registered label wins, like the table)
        for svc in &s.services {
            let mut influence = 0u64;
            let mut seen = std::collections::HashSet::new();
            for src in idx.sources() {
                if !seen.insert(src.uri.clone()) {
                    continue;
                }
                if idx.label_of(&src.uri).map(|l| l.service.as_str())
                    == Some(svc.service.as_str())
                {
                    influence += idx.impacted_by(&src.uri).len() as u64;
                }
            }
            assert_eq!(svc.influence, influence, "influence of {}", svc.service);
        }
        assert_eq!(
            summary(&idx, Some("nope")).blast,
            Some(BlastRadius { uri: "nope".into(), impacted: 0, origins: 0 })
        );
    }

    #[test]
    fn micro_conversions_round_trip() {
        assert_eq!(micro_from_f64(0.5, 1.0), Some(500_000));
        assert_eq!(micro_from_f64(1.0, 1.0), Some(SCALE));
        assert_eq!(micro_from_f64(1.5, 1.0), None);
        assert_eq!(micro_from_f64(-0.1, 1.0), None);
        assert_eq!(micro_from_f64(f64::NAN, 1.0), None);
        assert_eq!(format_micro(500_000), "0.500000");
        assert_eq!(format_micro(SCALE), "1.000000");
        assert_eq!(format_micro(2_030_000), "2.030000");
        assert_eq!(format_micro(0), "0.000000");
    }
}
