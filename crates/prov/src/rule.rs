//! Mapping rules `ϕ_S(x̄) ⇒ ϕ_T(x̄)` — Definition 5 of the paper.

use std::fmt;

use weblab_xpath::{parse_pattern, ParseError, Pattern};

/// A provenance mapping rule: the target data (right-hand side) *depends on*
/// the source data (left-hand side). Shared binding variables express the
/// join condition between the two patterns.
///
/// Definition 5 requires every variable referenced by the target to be bound
/// by the source (relaxable through Skolem functions, which
/// [`MappingRule::validate`] accounts for).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingRule {
    /// Optional rule name (M1, M2, … in the paper's figures).
    pub name: Option<String>,
    /// Source pattern `ϕ_S(x̄)` — the data that was *used*.
    pub source: Pattern,
    /// Target pattern `ϕ_T(x̄)` — the data that was *generated*.
    pub target: Pattern,
}

/// Error produced when parsing or validating a mapping rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// The textual form lacks the `=>` separator.
    MissingArrow,
    /// A pattern failed to parse.
    Pattern(ParseError),
    /// The target references variables the source does not bind
    /// (Definition 5's well-formedness condition).
    UnboundTargetVariables(Vec<String>),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::MissingArrow => write!(f, "mapping rule must contain '=>'"),
            RuleError::Pattern(e) => write!(f, "{e}"),
            RuleError::UnboundTargetVariables(vs) => {
                write!(f, "target references variables not bound by the source: ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "${v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuleError {}

impl From<ParseError> for RuleError {
    fn from(e: ParseError) -> Self {
        RuleError::Pattern(e)
    }
}

impl MappingRule {
    /// Construct and validate a rule from already-parsed patterns.
    ///
    /// Target predicates of the form `[@attr = $x]` where `$x` is bound by
    /// the *source* are normalised into binding assignments
    /// `[$x := @attr]`: the two are logically equivalent (equality against
    /// an injectively bound value), and the assignment form is what the
    /// algebraic join of Definition 8 consumes as a join column.
    pub fn new(source: Pattern, mut target: Pattern) -> Result<Self, RuleError> {
        normalise_target(&mut target, &source.variables());
        let rule = MappingRule {
            name: None,
            source,
            target,
        };
        rule.validate()?;
        Ok(rule)
    }

    /// Parse the textual form `ϕ_S => ϕ_T`, e.g.
    /// `//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]`.
    pub fn parse(input: &str) -> Result<Self, RuleError> {
        let (src, tgt) = input.split_once("=>").ok_or(RuleError::MissingArrow)?;
        let source = parse_pattern(src.trim())?;
        let target = parse_pattern(tgt.trim())?;
        MappingRule::new(source, target)
    }

    /// Attach a display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Variables shared between source and target — the join columns of
    /// the algebraic semantics (Definition 8).
    pub fn join_variables(&self) -> Vec<String> {
        let src = self.source.variables();
        self.target
            .variables()
            .into_iter()
            .filter(|v| src.contains(v))
            .collect()
    }

    /// Check Definition 5's well-formedness: every variable the target
    /// *references* (in predicates or Skolem arguments) must be bound by the
    /// source or by the target itself.
    pub fn validate(&self) -> Result<(), RuleError> {
        let src_vars = self.source.variables();
        let unbound: Vec<String> = self
            .target
            .free_variables()
            .into_iter()
            .filter(|v| !src_vars.contains(v))
            .collect();
        if unbound.is_empty() {
            Ok(())
        } else {
            Err(RuleError::UnboundTargetVariables(unbound))
        }
    }
}

/// Convert `[@attr = $x]` / `[$x = @attr]` predicates over source-bound
/// variables into `[$x := @attr]` assignments (first occurrence per
/// variable; later occurrences keep predicate form and are checked against
/// the bound value during evaluation).
fn normalise_target(target: &mut Pattern, source_vars: &[String]) {
    use weblab_xpath::{Assignment, AssignTarget, BindingSource, CmpOp, Predicate, ValueExpr};
    let mut bound: Vec<String> = target.variables();
    for step in &mut target.steps {
        let mut converted: Vec<Assignment> = Vec::new();
        step.predicates.retain(|p| {
            let (source, var) = match p {
                Predicate::Compare(ValueExpr::Attr(a), CmpOp::Eq, ValueExpr::Var(x))
                | Predicate::Compare(ValueExpr::Var(x), CmpOp::Eq, ValueExpr::Attr(a)) => {
                    (BindingSource::Attr(a.clone()), x.clone())
                }
                Predicate::Compare(ValueExpr::Position, CmpOp::Eq, ValueExpr::Var(x))
                | Predicate::Compare(ValueExpr::Var(x), CmpOp::Eq, ValueExpr::Position) => {
                    (BindingSource::Position, x.clone())
                }
                _ => return true,
            };
            if bound.contains(&var) || !source_vars.contains(&var) {
                return true;
            }
            bound.push(var.clone());
            converted.push(Assignment {
                target: AssignTarget::Var(var),
                source,
            });
            false
        });
        step.assignments.extend(converted);
    }
}

impl fmt::Display for MappingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        write!(f, "{} => {}", self.source, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_rules_parse() {
        let m1 = MappingRule::parse("/Resource//NativeContent => //TextMediaUnit[1]").unwrap();
        assert!(m1.join_variables().is_empty());
        let m2 = MappingRule::parse(
            "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]",
        )
        .unwrap();
        assert_eq!(m2.join_variables(), vec!["x".to_string()]);
        let m3 = MappingRule::parse(
            "//TextMediaUnit[Annotation/Language = 'fr'] => //TextMediaUnit[Annotation/Language = 'en']",
        )
        .unwrap();
        assert!(m3.join_variables().is_empty());
    }

    #[test]
    fn display_round_trips() {
        let text = "//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]";
        let rule = MappingRule::parse(text).unwrap();
        let printed = rule.to_string();
        let reparsed = MappingRule::parse(&printed).unwrap();
        assert_eq!(rule, reparsed);
    }

    #[test]
    fn named_rules_prefix_display() {
        let r = MappingRule::parse("//A => //B").unwrap().named("M1");
        assert_eq!(r.to_string(), "M1: //A => //B");
    }

    #[test]
    fn missing_arrow_is_an_error() {
        assert_eq!(
            MappingRule::parse("//A //B").unwrap_err(),
            RuleError::MissingArrow
        );
    }

    #[test]
    fn unbound_target_variable_rejected() {
        let e = MappingRule::parse("//A => //C[@id = $x]").unwrap_err();
        assert_eq!(
            e,
            RuleError::UnboundTargetVariables(vec!["x".to_string()])
        );
    }

    #[test]
    fn skolem_arguments_must_be_bound_by_source() {
        // f($x) in the target with $x bound by the source: fine
        MappingRule::parse("//A[$x := @a] => //C[f($x) := @b]").unwrap();
        // unbound: rejected
        let e = MappingRule::parse("//A => //C[f($x) := @b]").unwrap_err();
        assert!(matches!(e, RuleError::UnboundTargetVariables(_)));
    }

    #[test]
    fn attr_equality_to_source_var_becomes_assignment() {
        let r = MappingRule::parse("//Item[$x := @key] => //Item[@ref = $x]").unwrap();
        assert_eq!(r.join_variables(), vec!["x".to_string()]);
        // the normalised target prints in assignment form and round-trips
        assert_eq!(r.target.to_string(), "//Item[$x := @ref]");
        // equality against a *target*-bound variable is left as a predicate
        let r2 = MappingRule::parse("//A => //Item[$y := @key]/Sub[@ref = $y]").unwrap();
        assert!(r2.target.to_string().contains("@ref = $y"));
    }

    #[test]
    fn position_equality_to_source_var_becomes_assignment() {
        let r =
            MappingRule::parse("//A[$p := position()]/B => //C[$p = position()]").unwrap();
        assert_eq!(r.join_variables(), vec!["p".to_string()]);
        assert_eq!(r.target.to_string(), "//C[$p := position()]");
    }

    #[test]
    fn target_may_bind_its_own_variables() {
        // $y bound in the target itself is not a join variable but is legal
        let r = MappingRule::parse("//A[$x := @a] => //C[$y := @b]").unwrap();
        assert!(r.join_variables().is_empty());
    }
}
