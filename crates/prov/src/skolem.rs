//! Skolem-function aggregation mappings — Section 5 of the paper.
//!
//! Skolem functions replace existentially quantified variables in mapping
//! rules, expressing how generated resources *aggregate* their inputs
//! (following Cui & Widom's lineage classes). The four canonical shapes:
//!
//! | shape        | rule                                               |
//! |--------------|----------------------------------------------------|
//! | one-to-many  | `//A[$x := @a] ⇒ //C[f($x) := @b]` (many C per A)   |
//! | many-to-one  | `//A[$x := @a][f($x) := @g] ⇒ //C[$g := @g]` *      |
//! | one-to-one   | `//A[$x := @a] ⇒ //C[f($x) := @c]` (unique C per A) |
//! | many-to-many | `//A[$x := @a] ⇒ //C[f($x) := @b]` (groups × groups)|
//!
//! (*) in our concrete syntax many-to-one is most naturally written with
//! the Skolem term on the target and several A rows sharing the argument.
//!
//! Operationally (see `weblab-xpath`'s evaluator and the join in
//! `algebra`): a Skolem assignment `f($x) := @b` on the target binds the
//! raw `@b` value; at join time the engine renders the term `f(v)` from the
//! source row's binding of `$x` and keeps the pair iff the canonical forms
//! agree. Services that want Skolem-joinable output simply materialise the
//! term as text, e.g. `b="f(a1)"` — which [`skolem_attr`] produces.

use weblab_xpath::Value;

use crate::rule::{MappingRule, RuleError};

/// Render the canonical attribute value for a Skolem term `fun(args…)`, the
/// form a data-producing service writes so that Skolem joins succeed.
pub fn skolem_attr(fun: &str, args: &[&str]) -> String {
    Value::skolem(
        fun,
        args.iter().map(|a| Value::str(*a)).collect::<Vec<_>>(),
    )
    .canonical()
}

/// Build the one-to-many aggregation rule: every `target_tag` node whose
/// `target_attr` equals `fun(source @source_attr)` depends on that source.
pub fn one_to_many(
    source_tag: &str,
    source_attr: &str,
    fun: &str,
    target_tag: &str,
    target_attr: &str,
) -> Result<MappingRule, RuleError> {
    MappingRule::parse(&format!(
        "//{source_tag}[$x := @{source_attr}] => //{target_tag}[{fun}($x) := @{target_attr}]"
    ))
}

/// Build the many-to-one aggregation rule: a single `target_tag` node
/// depends on *all* `source_tag` nodes sharing the grouped attribute value.
/// Same rule shape as [`one_to_many`]; the cardinality lives in the data
/// (many sources with the same `@source_attr`).
pub fn many_to_one(
    source_tag: &str,
    source_attr: &str,
    fun: &str,
    target_tag: &str,
    target_attr: &str,
) -> Result<MappingRule, RuleError> {
    one_to_many(source_tag, source_attr, fun, target_tag, target_attr)
}

/// Build the one-to-one rule: each source generates exactly one target
/// (again the same join; uniqueness is a data property asserted by tests).
pub fn one_to_one(
    source_tag: &str,
    source_attr: &str,
    fun: &str,
    target_tag: &str,
    target_attr: &str,
) -> Result<MappingRule, RuleError> {
    one_to_many(source_tag, source_attr, fun, target_tag, target_attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join_tables, JoinAlgorithm};
    use crate::engine::document_state_provenance;
    use weblab_xml::Document;
    use weblab_xpath::eval_pattern;

    /// A document exercising the four aggregation shapes:
    /// sources A(a=a1), A(a=a1), A(a=a2); targets C(b=f(a1)) ×2, C(b=f(a2)).
    fn doc() -> Document {
        let mut d = Document::new("Root");
        let root = d.root();
        for (i, a) in ["a1", "a1", "a2"].iter().enumerate() {
            let n = d.append_element(root, "A").unwrap();
            d.set_attr(n, "a", *a).unwrap();
            d.register_resource(n, format!("A{i}"), None).unwrap();
        }
        for (i, b) in ["f(a1)", "f(a1)", "f(a2)"].iter().enumerate() {
            let n = d.append_element(root, "C").unwrap();
            d.set_attr(n, "b", *b).unwrap();
            d.register_resource(n, format!("C{i}"), None).unwrap();
        }
        d
    }

    #[test]
    fn skolem_attr_matches_canonical_form() {
        assert_eq!(skolem_attr("f", &["a1"]), "f(a1)");
        assert_eq!(skolem_attr("g", &["x", "y"]), "g(x,y)");
    }

    #[test]
    fn many_to_many_aggregation_links_groups() {
        let d = doc();
        let rule = one_to_many("A", "a", "f", "C", "b").unwrap();
        let links = document_state_provenance(&rule, &d.view(), &d.view(), JoinAlgorithm::Hash);
        // group a1: 2 sources × 2 targets = 4 links; group a2: 1×1
        assert_eq!(links.len(), 5);
        assert!(links
            .iter()
            .any(|l| l.from_uri == "C0" && l.to_uri == "A0"));
        assert!(links
            .iter()
            .any(|l| l.from_uri == "C2" && l.to_uri == "A2"));
        // no cross-group links
        assert!(!links
            .iter()
            .any(|l| l.from_uri == "C2" && l.to_uri == "A0"));
    }

    #[test]
    fn mismatched_skolem_terms_do_not_join() {
        let mut d = Document::new("Root");
        let root = d.root();
        let a = d.append_element(root, "A").unwrap();
        d.set_attr(a, "a", "a1").unwrap();
        d.register_resource(a, "A0", None).unwrap();
        let c = d.append_element(root, "C").unwrap();
        d.set_attr(c, "b", "g(a1)").unwrap(); // wrong function symbol
        d.register_resource(c, "C0", None).unwrap();
        let rule = one_to_many("A", "a", "f", "C", "b").unwrap();
        let links = document_state_provenance(&rule, &d.view(), &d.view(), JoinAlgorithm::Hash);
        assert!(links.is_empty());
    }

    #[test]
    fn skolem_join_agrees_between_algorithms() {
        let d = doc();
        let rule = one_to_many("A", "a", "f", "C", "b").unwrap();
        let s = eval_pattern(&rule.source, &d.view());
        let t = eval_pattern(&rule.target, &d.view());
        assert_eq!(
            join_tables(&s, &t, JoinAlgorithm::Hash),
            join_tables(&s, &t, JoinAlgorithm::NestedLoop)
        );
    }
}
