//! Live provenance maintenance — per-call incremental inference.
//!
//! The paper's Request Manager computes provenance *on demand* over the
//! final document. [`LiveProvenance`] turns that posthoc computation into a
//! streaming one: after every committed service call it derives just that
//! call's links ([`infer_links_since_cached`]) and merges them into a
//! mutable [`CompactGraph`], so "what does resource R depend on?" is
//! answerable *while the workflow is still running*. Soundness rests on the
//! append-only delta law pinned in the engine tests
//! (`links(0..n) = links(0..k) ∪ links(k..n)`): earlier calls' links are
//! never invalidated by later appends, so the union of the per-call deltas
//! is exactly the batch graph.
//!
//! Per-delta work is O(delta), not O(history):
//!
//! * the **channel map** (produced node → control-flow channel) is updated
//!   incrementally from the newly observed calls instead of being rebuilt
//!   from the whole trace — the rebuild is what made a naive
//!   `infer_links_since` loop O(n²) over a live run, and the
//!   `prov.trace.channel_map.builds` counter pins its absence;
//! * one [`PatternCache`] is carried across deltas, so evaluations keyed to
//!   unchanged document states are reused (the replay strategy's input
//!   state of call *k+1* is the output state of call *k*);
//! * the delta itself covers only the new calls — historical calls are
//!   never re-inferred — and [`CompactGraph::merge_link`] touches only the
//!   adjacency lists of the delta's endpoints.
//!
//! A prefix channel map is equivalent to the full one for the calls it
//! covers: a call's link targets (and their ancestors) always predate the
//! call, so their channel entries are already present, and
//! `channels_compatible` is total in the root channel.
//!
//! **Caveat** (shared with `Platform::provenance_graph`'s incremental
//! path): a delta is evaluated against the document state at observation
//! time. Resources *promoted* by later calls onto nodes nested under an
//! earlier link endpoint can extend the batch graph's inherited links in
//! ways a live maintainer has already missed; workloads that register
//! resources when their nodes are created (every service in this repo) are
//! unaffected. See DESIGN.md §9.

use std::collections::HashMap;

use weblab_obs::{Counter, Histogram, Span};
use weblab_xml::{CallLabel, Document, NodeId};

use crate::algebra::ProvLink;
use crate::cache::PatternCache;
use crate::engine::{infer_links_since_cached, EngineOptions};
use crate::graph::{ProvenanceGraph, SourceEntry};
use crate::ruleset::RuleSet;
use crate::storage::CompactGraph;
use crate::trace::ExecutionTrace;

/// Deltas observed (one per committed call, or one per catch-up batch).
static LIVE_DELTAS: Counter = Counter::new("live.deltas");
/// New links merged into the live graph across all deltas.
static LIVE_LINKS: Counter = Counter::new("live.links");
/// Wall time of one delta (inference + merge), in nanoseconds.
static LIVE_MERGE_NS: Histogram = Histogram::new("live.merge_ns");

/// The increment contributed by one observed delta: the links that were
/// actually new to the graph and the Source-table rows registered since
/// the previous delta (including promotions and initial acquisition
/// resources — everything `ProvenanceGraph::from_view` would list).
#[derive(Debug, Clone, Default)]
pub struct LiveDelta {
    /// Newly merged dependency links, sorted (already deduplicated against
    /// the accumulated graph).
    pub links: Vec<ProvLink>,
    /// Newly registered labelled resources, in registration order.
    pub sources: Vec<SourceEntry>,
}

impl LiveDelta {
    /// Whether the delta added nothing.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.sources.is_empty()
    }
}

/// Incrementally maintained provenance of one running execution.
#[derive(Debug)]
pub struct LiveProvenance {
    rules: RuleSet,
    opts: EngineOptions,
    /// Pattern cache carried across deltas.
    cache: PatternCache,
    /// Incrementally maintained produced-node → channel map (never rebuilt
    /// from the whole trace).
    channel_map: HashMap<NodeId, String>,
    /// The accumulated link store.
    graph: CompactGraph,
    /// The accumulated Source table, in registration order.
    sources: Vec<SourceEntry>,
    /// Calls of the *current trace segment* already folded in.
    calls_seen: usize,
    /// Calls folded in across every segment of the execution's lifetime.
    folded_total: usize,
    /// Length of the document's resource log already scanned for Source
    /// rows.
    resources_seen: usize,
}

impl LiveProvenance {
    /// A maintainer for an execution governed by `rules`, inferring deltas
    /// with `opts`.
    pub fn new(rules: RuleSet, opts: EngineOptions) -> Self {
        LiveProvenance {
            rules,
            opts,
            cache: PatternCache::new(),
            channel_map: HashMap::new(),
            graph: CompactGraph::default(),
            sources: Vec::new(),
            calls_seen: 0,
            folded_total: 0,
            resources_seen: 0,
        }
    }

    /// Fold in the committed call `trace.calls[call_idx]` (and any earlier
    /// calls not yet observed), given the document state at its completion.
    /// Idempotent: re-observing an already-folded index is a no-op.
    ///
    /// This is the orchestrator call-hook entry point: the hook fires only
    /// for *committed* calls — rolled-back and skipped attempts never reach
    /// the maintainer, so they leave zero residue in the link store.
    pub fn observe_call(
        &mut self,
        doc: &Document,
        trace: &ExecutionTrace,
        call_idx: usize,
    ) -> LiveDelta {
        let upto = (call_idx + 1).min(trace.calls.len());
        if upto <= self.calls_seen {
            return LiveDelta::default();
        }
        let span = (self.opts.metrics && weblab_obs::enabled())
            .then(|| Span::start(&LIVE_MERGE_NS));
        // O(delta) channel-map maintenance: only the new calls' produced
        // nodes are inserted.
        for call in &trace.calls[self.calls_seen..upto] {
            if call.channel.is_empty() {
                continue;
            }
            for &n in &call.produced {
                self.channel_map.insert(n, call.channel.clone());
            }
        }
        let derived = infer_links_since_cached(
            doc,
            trace,
            self.calls_seen,
            &self.rules,
            &self.opts,
            &self.channel_map,
            &self.cache,
        );
        let mut links = Vec::with_capacity(derived.len());
        for l in derived {
            if self.graph.merge_link(&l) {
                links.push(l);
            }
        }
        self.folded_total += upto - self.calls_seen;
        self.calls_seen = upto;
        let sources = self.absorb_sources(doc);
        if self.opts.metrics {
            LIVE_DELTAS.inc();
            LIVE_LINKS.add(links.len() as u64);
        }
        drop(span);
        LiveDelta { links, sources }
    }

    /// Fold in every not-yet-observed call of `trace` at once — used when a
    /// maintainer is attached to an execution that already made progress
    /// (e.g. a checkpointed run being resumed), and to pick up Source rows
    /// (initial acquisition resources) that exist before any call runs.
    pub fn catch_up(&mut self, doc: &Document, trace: &ExecutionTrace) -> LiveDelta {
        if trace.calls.len() > self.calls_seen {
            self.observe_call(doc, trace, trace.calls.len() - 1)
        } else {
            LiveDelta {
                links: Vec::new(),
                sources: self.absorb_sources(doc),
            }
        }
    }

    /// Fold in the calls of `trace` starting at segment index `first` — the
    /// multi-segment variant of [`LiveProvenance::catch_up`]. A platform
    /// that accumulates one growing trace across several runs of the same
    /// execution passes `calls_folded()` as `first` so only the calls no
    /// segment has reported yet are inferred.
    pub fn catch_up_from(
        &mut self,
        doc: &Document,
        trace: &ExecutionTrace,
        first: usize,
    ) -> LiveDelta {
        self.calls_seen = first.min(trace.calls.len());
        self.catch_up(doc, trace)
    }

    /// Start a new trace segment: subsequent [`LiveProvenance::observe_call`]
    /// indices count from 0 again while the accumulated graph, Source
    /// table, channel map and pattern cache are all retained. Used when one
    /// logical execution is recorded as several [`ExecutionTrace`]s (a
    /// resumed run's outcome trace restarts at index 0).
    pub fn new_segment(&mut self) {
        self.calls_seen = 0;
    }

    /// Scan the document's resource log past the last scanned position and
    /// append every labelled registration as a Source row — exactly the
    /// rows `ProvenanceGraph::from_view` lists, in the same order.
    fn absorb_sources(&mut self, doc: &Document) -> Vec<SourceEntry> {
        let nodes = doc.resource_nodes();
        let mut fresh = Vec::new();
        for &node in &nodes[self.resources_seen.min(nodes.len())..] {
            if let Some(meta) = doc.resource(node) {
                if let Some(label) = &meta.label {
                    fresh.push(SourceEntry {
                        node,
                        uri: meta.uri.clone(),
                        label: label.clone(),
                    });
                }
            }
        }
        self.resources_seen = nodes.len();
        self.sources.extend(fresh.iter().cloned());
        fresh
    }

    /// Direct dependencies of a resource, answerable mid-execution.
    pub fn dependencies_of(&self, uri: &str) -> Vec<&str> {
        self.graph.dependencies(uri)
    }

    /// Direct dependents of a resource, answerable mid-execution.
    pub fn dependents_of(&self, uri: &str) -> Vec<&str> {
        self.graph.dependents(uri)
    }

    /// Label of a resource, if it has been registered yet.
    pub fn label_of(&self, uri: &str) -> Option<&CallLabel> {
        self.sources.iter().find(|s| s.uri == uri).map(|s| &s.label)
    }

    /// The accumulated link store.
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }

    /// The accumulated Source table, in registration order.
    pub fn sources(&self) -> &[SourceEntry] {
        &self.sources
    }

    /// The accumulated links as a sorted edge list.
    pub fn links(&self) -> Vec<ProvLink> {
        self.graph.expand()
    }

    /// Number of links merged so far.
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Calls of the current segment folded in so far.
    pub fn calls_seen(&self) -> usize {
        self.calls_seen
    }

    /// Calls folded in across *all* segments since construction.
    pub fn calls_folded(&self) -> usize {
        self.folded_total
    }

    /// Materialise the equivalent batch-style [`ProvenanceGraph`]: same
    /// Source rows, same sorted link set as `infer_provenance` over the
    /// full trace.
    pub fn to_provenance_graph(&self) -> ProvenanceGraph {
        ProvenanceGraph {
            sources: self.sources.clone(),
            links: self.graph.expand(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, InheritMode, Strategy};
    use crate::paper_example;

    fn run_live(opts: EngineOptions) -> (LiveProvenance, ProvenanceGraph) {
        let (doc, trace, rules) = paper_example::build();
        let mut live = LiveProvenance::new(rules.clone(), opts);
        // posthoc replay of the call stream: the final document is a valid
        // observation state for every call (posthoc equivalence)
        live.catch_up(&doc, &ExecutionTrace::default());
        for k in 0..trace.calls.len() {
            live.observe_call(&doc, &trace, k);
        }
        let batch = infer_provenance(&doc, &trace, &rules, &opts);
        (live, batch)
    }

    #[test]
    fn live_union_equals_batch_on_paper_example() {
        for strategy in [
            Strategy::StateReplay { materialize: false },
            Strategy::TemporalRewrite,
            Strategy::GroupedSinglePass,
        ] {
            for inherit in [
                InheritMode::Off,
                InheritMode::PatternRewrite,
                InheritMode::GraphPropagation,
            ] {
                let opts = EngineOptions {
                    strategy,
                    inherit,
                    ..Default::default()
                };
                let (live, batch) = run_live(opts);
                assert_eq!(live.links(), batch.links, "{strategy:?}/{inherit:?}");
                assert_eq!(
                    live.to_provenance_graph().sources,
                    batch.sources,
                    "{strategy:?}/{inherit:?}"
                );
            }
        }
    }

    #[test]
    fn observe_is_idempotent() {
        let (doc, trace, rules) = paper_example::build();
        let mut live = LiveProvenance::new(rules, EngineOptions::default());
        let d1 = live.observe_call(&doc, &trace, 0);
        assert!(!d1.sources.is_empty());
        let d2 = live.observe_call(&doc, &trace, 0);
        assert!(d2.is_empty());
        assert_eq!(live.calls_seen(), 1);
    }

    #[test]
    fn mid_execution_queries_see_the_prefix_graph() {
        let (doc, trace, rules) = paper_example::build();
        let mut live = LiveProvenance::new(rules, EngineOptions::default());
        live.observe_call(&doc, &trace, 0);
        live.observe_call(&doc, &trace, 1);
        // after the LanguageExtractor call, r6 ← r5 is queryable while the
        // Translator has not run yet
        assert_eq!(live.dependencies_of("r6"), vec!["r5"]);
        assert!(live.dependents_of("r8").is_empty());
        live.observe_call(&doc, &trace, 2);
        assert!(live.dependencies_of("r8").contains(&"r4"));
        assert_eq!(live.label_of("r8").map(|l| l.service.as_str()), Some("Translator"));
    }

    #[test]
    fn catch_up_skips_straight_to_the_end() {
        let (doc, trace, rules) = paper_example::build();
        let opts = EngineOptions::default();
        let mut live = LiveProvenance::new(rules.clone(), opts);
        let delta = live.catch_up(&doc, &trace);
        let batch = infer_provenance(&doc, &trace, &rules, &opts);
        assert_eq!(delta.links, batch.links);
        assert_eq!(live.links(), batch.links);
        assert!(live.catch_up(&doc, &trace).is_empty());
    }
}
