//! Provenance views over composite modules.
//!
//! Related work \[7\] (Bao, Davidson, Milo) studies *workflow views* that
//! group services into composite modules — "for focusing on relevant or
//! hiding private provenance information" — while keeping fine-grained
//! dependencies queryable. The paper notes the approaches compose: "the
//! statically defined provenance mapping rules could also be used to
//! generate different provenance views over the same workflow execution."
//!
//! A [`ViewSpec`] maps service names to module names; [`apply_view`]
//! collapses a provenance graph accordingly: resources produced by services
//! of one module become that module's output group, and dependency edges
//! are lifted (and deduplicated) between groups. Resources produced by
//! unmapped services keep their own identity, so a view can expose one
//! sub-pipeline in full detail while abstracting the rest.

use std::collections::BTreeMap;

use weblab_xml::CallLabel;

use crate::graph::ProvenanceGraph;

/// Assignment of services to composite modules.
#[derive(Debug, Clone, Default)]
pub struct ViewSpec {
    modules: BTreeMap<String, String>,
}

impl ViewSpec {
    /// Empty view (identity — nothing is grouped).
    pub fn new() -> Self {
        ViewSpec::default()
    }

    /// Assign a service to a module.
    pub fn group(mut self, service: impl Into<String>, module: impl Into<String>) -> Self {
        self.modules.insert(service.into(), module.into());
        self
    }

    /// The module of a service, if grouped.
    pub fn module_of(&self, service: &str) -> Option<&str> {
        self.modules.get(service).map(String::as_str)
    }
}

/// A node of the view graph: either a composite module or an ungrouped
/// resource.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViewNode {
    /// All output of the services grouped under this module name.
    Module(String),
    /// An ungrouped resource, by URI.
    Resource(String),
}

impl std::fmt::Display for ViewNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewNode::Module(m) => write!(f, "[{m}]"),
            ViewNode::Resource(r) => write!(f, "{r}"),
        }
    }
}

/// The collapsed graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewGraph {
    /// Deduplicated, sorted edges `dependent → dependency`.
    pub edges: Vec<(ViewNode, ViewNode)>,
}

impl ViewGraph {
    /// Direct dependencies of a view node.
    pub fn dependencies_of(&self, node: &ViewNode) -> Vec<&ViewNode> {
        self.edges
            .iter()
            .filter(|(f, _)| f == node)
            .map(|(_, t)| t)
            .collect()
    }

    /// Reachability between view nodes (the \[7\] query class): does `from`
    /// transitively depend on `to`?
    pub fn depends_on(&self, from: &ViewNode, to: &ViewNode) -> bool {
        let mut stack = vec![from];
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            for d in self.dependencies_of(n) {
                stack.push(d);
            }
        }
        false
    }
}

fn view_node(spec: &ViewSpec, label: Option<&CallLabel>, uri: &str) -> ViewNode {
    match label.and_then(|l| spec.module_of(&l.service)) {
        Some(module) => ViewNode::Module(module.to_string()),
        None => ViewNode::Resource(uri.to_string()),
    }
}

/// Collapse a provenance graph along a view specification.
pub fn apply_view(graph: &ProvenanceGraph, spec: &ViewSpec) -> ViewGraph {
    let mut edges: Vec<(ViewNode, ViewNode)> = graph
        .links
        .iter()
        .map(|l| {
            (
                view_node(spec, graph.label_of(&l.from_uri), &l.from_uri),
                view_node(spec, graph.label_of(&l.to_uri), &l.to_uri),
            )
        })
        .filter(|(f, t)| f != t) // intra-module edges are hidden
        .collect();
    edges.sort();
    edges.dedup();
    ViewGraph { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infer_provenance, EngineOptions};
    use crate::paper_example;

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(&doc, &trace, &rules, &EngineOptions::default())
    }

    #[test]
    fn grouping_the_text_pipeline_hides_internal_edges() {
        let g = graph();
        // group Normaliser + LanguageExtractor into one "TextPrep" module
        let spec = ViewSpec::new()
            .group("Normaliser", "TextPrep")
            .group("LanguageExtractor", "TextPrep");
        let view = apply_view(&g, &spec);
        let prep = ViewNode::Module("TextPrep".into());
        // the internal edge 6 → 5 (both inside TextPrep) disappears
        assert!(!view.edges.iter().any(|(f, t)| f == &prep && t == &prep));
        // the Translator's output (ungrouped resource r8) depends on the module
        let r8 = ViewNode::Resource("r8".into());
        assert!(view.edges.contains(&(r8.clone(), prep.clone())));
        // and the module depends on the raw source r3
        assert!(view
            .edges
            .contains(&(prep.clone(), ViewNode::Resource("r3".into()))));
        // reachability through the module
        assert!(view.depends_on(&r8, &ViewNode::Resource("r3".into())));
    }

    #[test]
    fn identity_view_preserves_all_edges() {
        let g = graph();
        let view = apply_view(&g, &ViewSpec::new());
        assert_eq!(view.edges.len(), g.links.len());
        assert!(view
            .edges
            .iter()
            .all(|(f, t)| matches!(f, ViewNode::Resource(_)) && matches!(t, ViewNode::Resource(_))));
    }

    #[test]
    fn full_grouping_yields_module_level_lineage() {
        let g = graph();
        let spec = ViewSpec::new()
            .group("Source", "Acquisition")
            .group("Normaliser", "Processing")
            .group("LanguageExtractor", "Processing")
            .group("Translator", "Delivery");
        let view = apply_view(&g, &spec);
        let deliver = ViewNode::Module("Delivery".into());
        let acquire = ViewNode::Module("Acquisition".into());
        assert!(view.depends_on(&deliver, &acquire));
        // three modules, so at most module-to-module edges remain
        assert!(view.edges.len() <= 3);
    }

    #[test]
    fn display_renders_modules_bracketed() {
        assert_eq!(ViewNode::Module("M".into()).to_string(), "[M]");
        assert_eq!(ViewNode::Resource("r1".into()).to_string(), "r1");
    }
}
